//! Exclusive directly-mapped accelerator access (paper §5.2.2).
//!
//! "Venice provides an optimized communication path for donor accelerators
//! that are exclusively shared with one recipient. The accelerator access
//! interface (memory-mapped buffers and control registers) is exclusively
//! mapped to the recipient node similarly to how a memory region is
//! shared. The recipient directly manipulates the accelerator input and
//! output buffers, which improves efficiency on both nodes."
//!
//! In this mode the donor's kernel thread is out of the loop: the
//! recipient RDMAs data straight into the pinned buffers, rings the
//! doorbell with a CRMA store, and polls the completion flag with CRMA
//! reads.

use venice_fabric::NodeId;
use venice_sim::Time;
use venice_transport::{CrmaChannel, CrmaConfig, PathModel, RdmaConfig, RdmaEngine};

use crate::device::AcceleratorModel;

/// An exclusively-mapped remote accelerator.
#[derive(Debug)]
pub struct DirectAccelerator {
    client: NodeId,
    donor: NodeId,
    device: AcceleratorModel,
    path: PathModel,
    rdma: RdmaEngine,
    crma: CrmaChannel,
    /// Completion-flag polling period (CRMA read loop).
    pub poll_period: Time,
    tasks: u64,
}

impl DirectAccelerator {
    /// Maps `device` on `donor` exclusively into `client`'s address
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if the CRMA control window cannot be installed (fresh
    /// channel, so only on invalid internal constants).
    pub fn map(client: NodeId, donor: NodeId, device: AcceleratorModel, path: PathModel) -> Self {
        let mut crma = CrmaChannel::new(client, CrmaConfig::default());
        // Control registers + flags live in a small exclusive window.
        crma.map_window(1 << 40, 1 << 16, donor, 0xF000_0000)
            .expect("control window install");
        DirectAccelerator {
            client,
            donor,
            device,
            path,
            rdma: RdmaEngine::new(client, RdmaConfig::default()),
            crma,
            poll_period: Time::from_us(2),
            tasks: 0,
        }
    }

    /// Completed task count.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// End-to-end time for one task of `bytes`: RDMA input in, CRMA
    /// doorbell, device compute, one completion poll after compute, RDMA
    /// output back. No donor software anywhere.
    pub fn task_time(&mut self, bytes: u64) -> Time {
        let xfer_in = self.rdma.transfer_latency(&self.path, self.donor, bytes);
        let doorbell = self
            .crma
            .write_latency(&self.path, 1 << 40)
            .expect("doorbell mapped");
        let compute = self.device.compute(bytes);
        // The client polls the completion flag; on average one poll period
        // of slack plus one CRMA read round trip.
        let poll = self.poll_period
            + self
                .crma
                .read_latency(&self.path, (1 << 40) + 64)
                .expect("flag mapped");
        let xfer_out = self.rdma.transfer_latency(&self.path, self.donor, bytes);
        self.tasks += 1;
        xfer_in + doorbell + compute + poll + xfer_out
    }

    /// The donor node this accelerator lives on.
    pub fn donor(&self) -> NodeId {
        self.donor
    }

    /// The recipient holding the exclusive mapping.
    pub fn client(&self) -> NodeId {
        self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{AcceleratorHandle, Dispatcher};
    use crate::host::HostAgent;

    #[test]
    fn direct_mode_beats_mailbox_service_for_small_tasks() {
        let path = PathModel::direct_pair();
        let mut direct =
            DirectAccelerator::map(NodeId(0), NodeId(1), AcceleratorModel::xfft(), path.clone());
        let dispatcher = Dispatcher {
            client: NodeId(0),
            handles: vec![AcceleratorHandle {
                node: NodeId(1),
                model: AcceleratorModel::xfft(),
            }],
            path,
            rdma: Default::default(),
            agent: HostAgent::new(),
            local_copy_gbps: 40.0,
        };
        let bytes = 64 << 10; // small task: overheads visible
        let t_direct = direct.task_time(bytes);
        let t_mailbox = dispatcher.task_time(&dispatcher.handles[0], bytes);
        assert!(
            t_direct < t_mailbox,
            "direct {t_direct} vs mailbox {t_mailbox}"
        );
        assert_eq!(direct.tasks(), 1);
    }

    #[test]
    fn compute_still_dominates_large_tasks() {
        let mut direct = DirectAccelerator::map(
            NodeId(0),
            NodeId(1),
            AcceleratorModel::xfft(),
            PathModel::direct_pair(),
        );
        let bytes = 32 << 20;
        let t = direct.task_time(bytes);
        let compute = AcceleratorModel::xfft().compute(bytes);
        assert!(t.ratio(compute) < 1.3);
    }

    #[test]
    fn endpoints_exposed() {
        let d = DirectAccelerator::map(
            NodeId(3),
            NodeId(5),
            AcceleratorModel::crypto(),
            PathModel::prototype_mesh(),
        );
        assert_eq!(d.client(), NodeId(3));
        assert_eq!(d.donor(), NodeId(5));
    }
}
