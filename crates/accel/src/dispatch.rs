//! The client-side accelerator library (paper Fig 11).
//!
//! "When an application needs accelerators, it uses our API to invoke
//! library calls that request accelerator(s) from the resource management
//! middleware ... Accelerator details are abstracted away from the
//! application, which merely sends requests through the library. The
//! library handles all details, including dispatching tasks using the
//! right channel to send to each accelerator mailbox."
//!
//! [`Dispatcher::run_dataset`] reproduces Fig 16a's experiment: a dataset
//! is split into tasks and fanned out over one local plus N remote
//! accelerators; the makespan determines the speedup.

use venice_fabric::NodeId;
use venice_sim::Time;
use venice_transport::{PathModel, RdmaConfig, RdmaEngine};

use crate::device::AcceleratorModel;
use crate::host::HostAgent;

/// A granted accelerator, as returned by the management middleware:
/// node id + mailbox base address (we carry the device model instead of a
/// raw address).
#[derive(Debug, Clone)]
pub struct AcceleratorHandle {
    /// Node hosting the device.
    pub node: NodeId,
    /// Device timing model.
    pub model: AcceleratorModel,
}

/// The dispatch library: fans tasks out across granted accelerators.
///
/// # Example
///
/// ```
/// use venice_accel::{AcceleratorModel, Dispatcher};
///
/// // One local accelerator plus two remote ones.
/// let d = Dispatcher::fig16a(2);
/// let speedup = d.speedup(8 << 20, 1 << 20);
/// assert!(speedup > 2.0 && speedup <= 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct Dispatcher {
    /// Requesting node.
    pub client: NodeId,
    /// Granted accelerators (client-local ones have `node == client`).
    pub handles: Vec<AcceleratorHandle>,
    /// Fabric path model for remote transfers.
    pub path: PathModel,
    /// RDMA configuration used to move input/output buffers.
    pub rdma: RdmaConfig,
    /// Donor-side host agent parameters.
    pub agent: HostAgent,
    /// Local memcpy bandwidth for staging into a local mailbox (Gbps).
    pub local_copy_gbps: f64,
}

impl Dispatcher {
    /// The Fig 16a setup: client on node 0 with one local XFFT plus
    /// `remote` remote XFFTs on distinct mesh neighbors.
    pub fn fig16a(remote: u16) -> Self {
        let mut handles = vec![AcceleratorHandle {
            node: NodeId(0),
            model: AcceleratorModel::xfft(),
        }];
        for i in 0..remote {
            handles.push(AcceleratorHandle {
                node: NodeId(i + 1),
                model: AcceleratorModel::xfft(),
            });
        }
        Dispatcher {
            client: NodeId(0),
            handles,
            path: PathModel::prototype_mesh(),
            rdma: RdmaConfig::default(),
            agent: HostAgent::new(),
            local_copy_gbps: 40.0,
        }
    }

    /// Time for one task of `bytes` on `handle`, including staging the
    /// input, mailbox service, compute, and returning the output.
    pub fn task_time(&self, handle: &AcceleratorHandle, bytes: u64) -> Time {
        let compute = handle.model.compute(bytes);
        if handle.node == self.client {
            // Local: memcpy in/out of the pinned buffers, no fabric.
            let copy = Time::serialize_bytes(bytes, self.local_copy_gbps);
            copy + compute + copy
        } else {
            // Remote: RDMA the input over, host agent launches, RDMA the
            // output back.
            let mut engine = RdmaEngine::new(self.client, self.rdma.clone());
            let xfer_in = engine.transfer_latency(&self.path, handle.node, bytes);
            let xfer_out = engine.transfer_latency(&self.path, handle.node, bytes);
            let host = self.agent.poll_period + self.agent.task_overhead;
            xfer_in + host + compute + xfer_out
        }
    }

    /// Makespan of processing `total_bytes` split into `task_bytes` tasks
    /// dispatched round-robin across all granted accelerators (tasks on
    /// different accelerators proceed in parallel).
    ///
    /// # Panics
    ///
    /// Panics if `task_bytes` is zero or no accelerators are granted.
    pub fn run_dataset(&self, total_bytes: u64, task_bytes: u64) -> Time {
        assert!(task_bytes > 0, "task size must be positive");
        assert!(!self.handles.is_empty(), "no accelerators granted");
        let tasks = total_bytes.div_ceil(task_bytes);
        let mut busy_until = vec![Time::ZERO; self.handles.len()];
        for i in 0..tasks {
            let h = (i % self.handles.len() as u64) as usize;
            let bytes = task_bytes.min(total_bytes - i * task_bytes);
            busy_until[h] += self.task_time(&self.handles[h], bytes);
        }
        busy_until.into_iter().max().unwrap_or(Time::ZERO)
    }

    /// Speedup over using only the single local accelerator (the Fig 16a
    /// y-axis).
    pub fn speedup(&self, total_bytes: u64, task_bytes: u64) -> f64 {
        let local_only = Dispatcher {
            handles: vec![self.handles[0].clone()],
            ..self.clone()
        };
        let base = local_only.run_dataset(total_bytes, task_bytes);
        let with_remote = self.run_dataset(total_bytes, task_bytes);
        base.ratio(with_remote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_task_costs_more_than_local() {
        let d = Dispatcher::fig16a(1);
        let local = d.task_time(&d.handles[0], 1 << 20);
        let remote = d.task_time(&d.handles[1], 1 << 20);
        assert!(remote > local);
        // But compute dominates: the remote penalty is < 35%.
        assert!(
            remote.ratio(local) < 1.35,
            "ratio = {}",
            remote.ratio(local)
        );
    }

    #[test]
    fn fig16a_scaling_is_near_linear() {
        // Paper: "performance improves almost linearly with the number of
        // accelerators".
        for (remote, min_speedup) in [(1u16, 1.7), (2, 2.4), (3, 3.1)] {
            let d = Dispatcher::fig16a(remote);
            let s = d.speedup(512 << 20, 8 << 20);
            let ideal = (remote + 1) as f64;
            assert!(
                s >= min_speedup && s <= ideal + 1e-9,
                "{remote} remote: speedup {s:.2}"
            );
        }
    }

    #[test]
    fn small_dataset_scales_slightly_worse() {
        let d = Dispatcher::fig16a(3);
        let small = d.speedup(8 << 20, 1 << 20);
        let large = d.speedup(512 << 20, 8 << 20);
        assert!(
            small <= large + 1e-9,
            "small {small:.2} vs large {large:.2}"
        );
        assert!(small > 2.0);
    }

    #[test]
    fn uneven_tail_task_is_handled() {
        let d = Dispatcher::fig16a(1);
        // 3 tasks of 1 MB + a 512 KB tail.
        let t = d.run_dataset((3 << 20) + (512 << 10), 1 << 20);
        assert!(t > Time::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_task_size_rejected() {
        Dispatcher::fig16a(1).run_dataset(1 << 20, 0);
    }
}
