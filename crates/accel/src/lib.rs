#![warn(missing_docs)]

//! Remote accelerator sharing (paper §5.2.2, Figs 11 and 16a).
//!
//! "Venice abstracts accelerators as message-passing mailboxes
//! (implemented as buffers pinned in memory)." A mailbox holds a request
//! buffer (the executable), input and return data buffers, and start/
//! completion flags. A kernel thread on the donor node launches tasks on
//! behalf of recipients; for exclusively-shared accelerators, the access
//! interface can instead be mapped straight into the recipient
//! ([`direct`]).
//!
//! * [`mailbox`] — the five-field mailbox state machine;
//! * [`device`] — accelerator timing models (XFFT, crypto);
//! * [`host`] — the donor-side kernel thread;
//! * [`dispatch`] — the client library of Fig 11: applications ask the
//!   middleware for accelerators and dispatch through handles, never
//!   seeing locations.

pub mod device;
pub mod direct;
pub mod dispatch;
pub mod host;
pub mod mailbox;

pub use device::{AcceleratorKind, AcceleratorModel};
pub use dispatch::{AcceleratorHandle, Dispatcher};
pub use host::HostAgent;
pub use mailbox::{Mailbox, MailboxError, MailboxState};
