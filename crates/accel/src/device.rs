//! Accelerator timing models.
//!
//! The paper's accelerator study implements SPLASH2 FFT on the Xilinx
//! boards ("XFFT") and also mentions crypto accelerators in the Fig 11
//! example. We model both: a streaming FFT core whose time grows as
//! `n log n`, and a fixed-rate crypto engine.

use venice_sim::Time;

/// The accelerator types that appear in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// Xilinx XFFT streaming FFT core.
    Fft,
    /// Symmetric crypto engine.
    Crypto,
}

impl std::fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AcceleratorKind::Fft => "FFT",
            AcceleratorKind::Crypto => "crypto",
        })
    }
}

/// Timing model of one accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorModel {
    /// Device type.
    pub kind: AcceleratorKind,
    /// Core clock in MHz.
    pub mhz: f64,
    /// Fixed per-task launch latency (configuration, DMA kickoff).
    pub launch_latency: Time,
}

impl AcceleratorModel {
    /// The prototype's XFFT core in programmable logic (~150 MHz).
    pub fn xfft() -> Self {
        AcceleratorModel {
            kind: AcceleratorKind::Fft,
            mhz: 150.0,
            launch_latency: Time::from_us(20),
        }
    }

    /// A crypto block at the same clock.
    pub fn crypto() -> Self {
        AcceleratorModel {
            kind: AcceleratorKind::Crypto,
            mhz: 150.0,
            launch_latency: Time::from_us(10),
        }
    }

    /// Execution time for a task over `input_bytes` of data.
    ///
    /// FFT: complex single-precision points (8 bytes each), a pipelined
    /// core streaming one point per cycle per `log2 n` passes. Crypto:
    /// one 16-byte block per cycle.
    pub fn compute(&self, input_bytes: u64) -> Time {
        match self.kind {
            AcceleratorKind::Fft => {
                let points = (input_bytes / 8).max(2);
                let passes = 64 - (points - 1).leading_zeros() as u64; // ceil(log2)
                Time::from_cycles(points * passes, self.mhz) + self.launch_latency
            }
            AcceleratorKind::Crypto => {
                let blocks = input_bytes.div_ceil(16).max(1);
                Time::from_cycles(blocks, self.mhz) + self.launch_latency
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_scales_n_log_n() {
        let m = AcceleratorModel::xfft();
        let t1 = m.compute(1 << 20) - m.launch_latency;
        let t2 = m.compute(1 << 21) - m.launch_latency;
        // Doubling n: time grows by 2 * (log+1)/log ≈ 2.06 at these sizes.
        let ratio = t2.ratio(t1);
        assert!((2.0..2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn launch_latency_dominates_tiny_tasks() {
        let m = AcceleratorModel::xfft();
        let t = m.compute(64);
        assert!(t < m.launch_latency + Time::from_us(1));
    }

    #[test]
    fn fig16a_dataset_compute_times() {
        // The 512 MB dataset should take seconds of FFT time — large
        // against its ~0.9 s transfer at 5 Gbps, which is why Fig 16a
        // scales nearly linearly.
        let m = AcceleratorModel::xfft();
        let t512 = m.compute(512 << 20);
        assert!(t512.as_secs_f64() > 5.0, "t512 = {t512}");
        let t8 = m.compute(8 << 20);
        assert!(t8.as_ms_f64() > 100.0);
    }

    #[test]
    fn crypto_linear_in_bytes() {
        let m = AcceleratorModel::crypto();
        let t1 = m.compute(1 << 20) - m.launch_latency;
        let t2 = m.compute(2 << 20) - m.launch_latency;
        // Cycle times round to picoseconds, so allow 1 ps of slack.
        assert!(t2.as_ps().abs_diff(t1.as_ps() * 2) <= 2);
    }
}
