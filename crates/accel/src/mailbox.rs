//! The accelerator mailbox (paper Fig 11).
//!
//! "A mailbox contains: (1) a request buffer for storing executables to
//! run on the accelerator, (2) an input data buffer, (3) a return data
//! buffer, (4) a task start flag, and (5) a completion flag."
//!
//! The state machine enforces the handshake: the client stages the request
//! and input, raises *start*; the host (or the directly-mapped recipient)
//! runs the task, fills the return buffer, raises *completion*; the client
//! drains the output and the mailbox resets.

/// Lifecycle of one mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxState {
    /// Empty, ready for a new task.
    Idle,
    /// Request/input staged but start flag not yet raised.
    Staged,
    /// Start flag raised; awaiting the host/device.
    Started,
    /// Device finished; completion flag raised, output pending.
    Complete,
}

/// Errors from mailbox operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxError {
    /// Operation not allowed in the current state.
    BadState(
        /// The state the mailbox was in.
        MailboxState,
    ),
    /// Data exceeds the pinned buffer size.
    BufferOverflow {
        /// Bytes requested.
        requested: u64,
        /// Buffer capacity.
        capacity: u64,
    },
}

impl std::fmt::Display for MailboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MailboxError::BadState(s) => write!(f, "operation invalid in state {s:?}"),
            MailboxError::BufferOverflow {
                requested,
                capacity,
            } => {
                write!(
                    f,
                    "{requested} bytes exceed the {capacity}-byte pinned buffer"
                )
            }
        }
    }
}

impl std::error::Error for MailboxError {}

/// A pinned-memory mailbox for one accelerator.
///
/// # Example
///
/// ```
/// use venice_accel::{Mailbox, MailboxState};
///
/// let mut mb = Mailbox::new(1 << 20, 8 << 20, 8 << 20);
/// mb.stage(4096, 1 << 20).unwrap();
/// mb.start().unwrap();
/// let task = mb.take_task().unwrap();
/// assert_eq!(task.input_bytes, 1 << 20);
/// mb.complete(1 << 20).unwrap();
/// assert_eq!(mb.drain().unwrap(), 1 << 20);
/// assert_eq!(mb.state(), MailboxState::Idle);
/// ```
#[derive(Debug, Clone)]
pub struct Mailbox {
    state: MailboxState,
    request_capacity: u64,
    input_capacity: u64,
    output_capacity: u64,
    request_bytes: u64,
    input_bytes: u64,
    output_bytes: u64,
    tasks_completed: u64,
}

/// A task the host pulled from a started mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedTask {
    /// Executable size.
    pub request_bytes: u64,
    /// Input payload size.
    pub input_bytes: u64,
}

impl Mailbox {
    /// Creates a mailbox with the given pinned-buffer capacities.
    pub fn new(request_capacity: u64, input_capacity: u64, output_capacity: u64) -> Self {
        Mailbox {
            state: MailboxState::Idle,
            request_capacity,
            input_capacity,
            output_capacity,
            request_bytes: 0,
            input_bytes: 0,
            output_bytes: 0,
            tasks_completed: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> MailboxState {
        self.state
    }

    /// Completed task count.
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_completed
    }

    /// Stages a task: writes the executable and input data.
    ///
    /// # Errors
    ///
    /// [`MailboxError::BadState`] unless idle; [`MailboxError::BufferOverflow`]
    /// if either payload exceeds its pinned buffer.
    pub fn stage(&mut self, request_bytes: u64, input_bytes: u64) -> Result<(), MailboxError> {
        if self.state != MailboxState::Idle {
            return Err(MailboxError::BadState(self.state));
        }
        if request_bytes > self.request_capacity {
            return Err(MailboxError::BufferOverflow {
                requested: request_bytes,
                capacity: self.request_capacity,
            });
        }
        if input_bytes > self.input_capacity {
            return Err(MailboxError::BufferOverflow {
                requested: input_bytes,
                capacity: self.input_capacity,
            });
        }
        self.request_bytes = request_bytes;
        self.input_bytes = input_bytes;
        self.state = MailboxState::Staged;
        Ok(())
    }

    /// Raises the start flag.
    ///
    /// # Errors
    ///
    /// [`MailboxError::BadState`] unless staged.
    pub fn start(&mut self) -> Result<(), MailboxError> {
        if self.state != MailboxState::Staged {
            return Err(MailboxError::BadState(self.state));
        }
        self.state = MailboxState::Started;
        Ok(())
    }

    /// Host side: claims the started task for execution.
    ///
    /// # Errors
    ///
    /// [`MailboxError::BadState`] unless started.
    pub fn take_task(&mut self) -> Result<StagedTask, MailboxError> {
        if self.state != MailboxState::Started {
            return Err(MailboxError::BadState(self.state));
        }
        Ok(StagedTask {
            request_bytes: self.request_bytes,
            input_bytes: self.input_bytes,
        })
    }

    /// Host side: deposits `output_bytes` and raises the completion flag.
    ///
    /// # Errors
    ///
    /// [`MailboxError::BadState`] unless started;
    /// [`MailboxError::BufferOverflow`] if the output exceeds the return
    /// buffer.
    pub fn complete(&mut self, output_bytes: u64) -> Result<(), MailboxError> {
        if self.state != MailboxState::Started {
            return Err(MailboxError::BadState(self.state));
        }
        if output_bytes > self.output_capacity {
            return Err(MailboxError::BufferOverflow {
                requested: output_bytes,
                capacity: self.output_capacity,
            });
        }
        self.output_bytes = output_bytes;
        self.state = MailboxState::Complete;
        Ok(())
    }

    /// Client side: drains the return buffer, resetting the mailbox.
    ///
    /// # Errors
    ///
    /// [`MailboxError::BadState`] unless complete.
    pub fn drain(&mut self) -> Result<u64, MailboxError> {
        if self.state != MailboxState::Complete {
            return Err(MailboxError::BadState(self.state));
        }
        let out = self.output_bytes;
        self.request_bytes = 0;
        self.input_bytes = 0;
        self.output_bytes = 0;
        self.tasks_completed += 1;
        self.state = MailboxState::Idle;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lifecycle() {
        let mut mb = Mailbox::new(1024, 4096, 4096);
        mb.stage(100, 2048).unwrap();
        assert_eq!(mb.state(), MailboxState::Staged);
        mb.start().unwrap();
        let t = mb.take_task().unwrap();
        assert_eq!(
            t,
            StagedTask {
                request_bytes: 100,
                input_bytes: 2048
            }
        );
        mb.complete(512).unwrap();
        assert_eq!(mb.drain().unwrap(), 512);
        assert_eq!(mb.tasks_completed(), 1);
    }

    #[test]
    fn out_of_order_operations_rejected() {
        let mut mb = Mailbox::new(1024, 4096, 4096);
        assert!(matches!(
            mb.start(),
            Err(MailboxError::BadState(MailboxState::Idle))
        ));
        assert!(matches!(mb.take_task(), Err(MailboxError::BadState(_))));
        mb.stage(1, 1).unwrap();
        assert!(matches!(mb.stage(1, 1), Err(MailboxError::BadState(_))));
        assert!(matches!(mb.drain(), Err(MailboxError::BadState(_))));
        mb.start().unwrap();
        assert!(matches!(mb.start(), Err(MailboxError::BadState(_))));
    }

    #[test]
    fn buffer_bounds_enforced() {
        let mut mb = Mailbox::new(16, 32, 8);
        assert!(matches!(
            mb.stage(17, 0),
            Err(MailboxError::BufferOverflow {
                requested: 17,
                capacity: 16
            })
        ));
        assert!(matches!(
            mb.stage(16, 33),
            Err(MailboxError::BufferOverflow { .. })
        ));
        mb.stage(16, 32).unwrap();
        mb.start().unwrap();
        assert!(matches!(
            mb.complete(9),
            Err(MailboxError::BufferOverflow { .. })
        ));
        mb.complete(8).unwrap();
    }

    #[test]
    fn mailbox_is_reusable() {
        let mut mb = Mailbox::new(1024, 4096, 4096);
        for i in 0..5 {
            mb.stage(10, 20).unwrap();
            mb.start().unwrap();
            mb.take_task().unwrap();
            mb.complete(30).unwrap();
            mb.drain().unwrap();
            assert_eq!(mb.tasks_completed(), i + 1);
        }
    }
}
