//! The donor-side host agent (paper §5.2.2).
//!
//! "A kernel thread running on the donor node processes the mailbox and
//! launches tasks on remote accelerators on behalf of recipient nodes."
//! The agent polls mailboxes, claims started tasks, runs them on the
//! device, and raises completion. Its polling period and per-task software
//! overhead are the knobs that distinguish mailbox service from the
//! directly-mapped exclusive mode.

use venice_sim::Time;

use crate::device::AcceleratorModel;
use crate::mailbox::{Mailbox, MailboxError};

/// The kernel thread that services mailboxes on a donor node.
#[derive(Debug, Clone)]
pub struct HostAgent {
    /// Mailbox polling period (the thread sleeps between scans).
    pub poll_period: Time,
    /// Software cost to claim a task and program the device.
    pub task_overhead: Time,
    tasks_serviced: u64,
}

impl HostAgent {
    /// An agent with the prototype's parameters: 10 µs polling, ~15 µs of
    /// kernel-thread work per task.
    pub fn new() -> Self {
        HostAgent {
            poll_period: Time::from_us(10),
            task_overhead: Time::from_us(15),
            tasks_serviced: 0,
        }
    }

    /// Tasks serviced so far.
    pub fn tasks_serviced(&self) -> u64 {
        self.tasks_serviced
    }

    /// Services one started mailbox on `device`, driving it to complete.
    /// Returns the donor-side service time: expected polling delay (half a
    /// period on average, we charge the full period for determinism) +
    /// claim overhead + device execution.
    ///
    /// # Errors
    ///
    /// Propagates mailbox state errors if the mailbox was not started.
    pub fn service(
        &mut self,
        mailbox: &mut Mailbox,
        device: &AcceleratorModel,
    ) -> Result<Time, MailboxError> {
        let task = mailbox.take_task()?;
        let exec = device.compute(task.input_bytes);
        // Output size: FFT is in-place (same size); crypto too.
        mailbox.complete(task.input_bytes)?;
        self.tasks_serviced += 1;
        Ok(self.poll_period + self.task_overhead + exec)
    }
}

impl Default for HostAgent {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::MailboxState;

    #[test]
    fn service_drives_mailbox_to_complete() {
        let mut agent = HostAgent::new();
        let mut mb = Mailbox::new(1 << 10, 16 << 20, 16 << 20);
        mb.stage(512, 1 << 20).unwrap();
        mb.start().unwrap();
        let dev = AcceleratorModel::xfft();
        let t = agent.service(&mut mb, &dev).unwrap();
        assert_eq!(mb.state(), MailboxState::Complete);
        assert!(t > dev.compute(1 << 20));
        assert_eq!(agent.tasks_serviced(), 1);
    }

    #[test]
    fn service_requires_started_mailbox() {
        let mut agent = HostAgent::new();
        let mut mb = Mailbox::new(1024, 4096, 4096);
        let dev = AcceleratorModel::xfft();
        assert!(agent.service(&mut mb, &dev).is_err());
    }

    #[test]
    fn overheads_are_visible_for_small_tasks() {
        let mut agent = HostAgent::new();
        let mut mb = Mailbox::new(1024, 4096, 4096);
        mb.stage(16, 64).unwrap();
        mb.start().unwrap();
        let dev = AcceleratorModel::xfft();
        let t = agent.service(&mut mb, &dev).unwrap();
        // Poll + overhead (25 us) dominate a 64-byte FFT.
        assert!(t > Time::from_us(25));
    }
}
