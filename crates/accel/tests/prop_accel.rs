//! Property tests for accelerator sharing: the mailbox state machine
//! never corrupts under arbitrary operation sequences, and dispatch
//! timing is monotone.

use proptest::prelude::*;
use venice_accel::{AcceleratorModel, Dispatcher, Mailbox, MailboxState};

/// Random mailbox operations.
#[derive(Debug, Clone, Copy)]
enum MbOp {
    Stage(u64, u64),
    Start,
    Take,
    Complete(u64),
    Drain,
}

fn mb_ops() -> impl Strategy<Value = Vec<MbOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..2048, 0u64..8192).prop_map(|(r, i)| MbOp::Stage(r, i)),
            Just(MbOp::Start),
            Just(MbOp::Take),
            (0u64..8192).prop_map(MbOp::Complete),
            Just(MbOp::Drain),
        ],
        0..100,
    )
}

proptest! {
    /// The mailbox is a proper state machine: operations either succeed
    /// and advance the expected state, or fail and leave the state
    /// untouched; completed-task count only grows on drains.
    #[test]
    fn mailbox_state_machine_is_sound(ops in mb_ops()) {
        let mut mb = Mailbox::new(1024, 4096, 4096);
        let mut expected = MailboxState::Idle;
        let mut drains = 0u64;
        for op in ops {
            let before = mb.state();
            prop_assert_eq!(before, expected);
            match op {
                MbOp::Stage(r, i) => {
                    let ok = mb.stage(r, i).is_ok();
                    let legal = before == MailboxState::Idle && r <= 1024 && i <= 4096;
                    prop_assert_eq!(ok, legal);
                    if ok {
                        expected = MailboxState::Staged;
                    }
                }
                MbOp::Start => {
                    let ok = mb.start().is_ok();
                    prop_assert_eq!(ok, before == MailboxState::Staged);
                    if ok {
                        expected = MailboxState::Started;
                    }
                }
                MbOp::Take => {
                    let ok = mb.take_task().is_ok();
                    prop_assert_eq!(ok, before == MailboxState::Started);
                    // take_task does not change state.
                }
                MbOp::Complete(out) => {
                    let ok = mb.complete(out).is_ok();
                    let legal = before == MailboxState::Started && out <= 4096;
                    prop_assert_eq!(ok, legal);
                    if ok {
                        expected = MailboxState::Complete;
                    }
                }
                MbOp::Drain => {
                    let ok = mb.drain().is_ok();
                    prop_assert_eq!(ok, before == MailboxState::Complete);
                    if ok {
                        drains += 1;
                        expected = MailboxState::Idle;
                    }
                }
            }
            prop_assert_eq!(mb.tasks_completed(), drains);
        }
    }

    /// Dispatch makespan is monotone in dataset size and never beats the
    /// single-device lower bound (total compute / device count).
    #[test]
    fn dispatch_makespan_bounds(
        remote in 1u16..4,
        tasks in 2u64..32,
        task_mb in 1u64..8,
    ) {
        let d = Dispatcher::fig16a(remote);
        let task_bytes = task_mb << 20;
        let total = tasks * task_bytes;
        let t1 = d.run_dataset(total, task_bytes);
        let t2 = d.run_dataset(total * 2, task_bytes);
        prop_assert!(t2 >= t1);
        // Lower bound: all devices perfectly busy on pure compute.
        let compute_total = AcceleratorModel::xfft().compute(task_bytes).scale(tasks as f64);
        let bound = compute_total.scale(1.0 / (remote as f64 + 1.0));
        prop_assert!(t1 >= bound.scale(0.99), "t1 {t1} < bound {bound}");
        // Speedup is bounded by device count.
        let s = d.speedup(total, task_bytes);
        prop_assert!(s <= remote as f64 + 1.0 + 1e-9);
        prop_assert!(s >= 1.0 - 1e-9);
    }
}
