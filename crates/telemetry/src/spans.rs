//! Sim-time span tracing for lease lifecycles.
//!
//! A lease lives through phases — the grow decision, the Fig. 2
//! establish handshake, active service, and (for revokes) teardown —
//! and the existing [`venice_lease`] timeline records only the
//! *instants* where ledgers change. Spans recover the *durations*: a
//! [`SpanLog`] pairs open/close edges keyed by `(kind, node,
//! generation)` and records each completed span onto a
//! [`venice_sim::Timeline`], so span histories replay-compare with
//! plain `==` exactly like every other audit trail in the workspace.

use venice_sim::{Time, Timeline};

/// The lifecycle phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Grow decision → lease usable on the recipient (the Fig. 2
    /// establish handshake: donor RPC + mapping install).
    Establish,
    /// Lease usable → released (shrink, revoke, or run end).
    Active,
    /// Revoke demand → donor memory actually reclaimed.
    Teardown,
    /// Node crash → recovery: the whole outage window of one injected
    /// fault (`node` is the crashed node; `generation` is the fault
    /// plan's crash sequence number, not a lease id).
    Fault,
    /// Donor death → replacement lease established on a surviving
    /// donor: the window a recipient ran degraded (`generation` is the
    /// *lost* lease's id, correlating the span with the purge).
    Failover,
}

impl SpanKind {
    /// Stable lower-case label used by the artifact and profile report.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Establish => "establish",
            SpanKind::Active => "active",
            SpanKind::Teardown => "teardown",
            SpanKind::Fault => "fault",
            SpanKind::Failover => "failover",
        }
    }
}

/// A completed (or still-open) lease-lifecycle span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which phase this span covers.
    pub kind: SpanKind,
    /// The recipient node the lease lives on.
    pub node: u16,
    /// The lease generation (monotonic grant id) the span belongs to.
    pub generation: u64,
    /// When the phase began.
    pub start: Time,
    /// When the phase ended; `None` while still open.
    pub end: Option<Time>,
}

impl Span {
    /// The span's duration, if it has closed.
    pub fn duration(&self) -> Option<Time> {
        self.end.map(|e| e.saturating_sub(self.start))
    }
}

/// Pairs span open/close edges and keeps the completed record.
///
/// Opens go into a small scan list (lease concurrency is bounded by
/// cluster chunk capacity, so linear scans stay cheap); closes move the
/// span onto a [`Timeline`] stamped at the close instant. Because the
/// engine emits edges in fire order, closes arrive time-ordered and the
/// timeline's monotonicity invariant holds for free.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    open: Vec<Span>,
    closed: Timeline<Span>,
}

impl SpanLog {
    /// Creates an empty span log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Opens a `(kind, node, generation)` span starting at `at`.
    ///
    /// Re-opening a key that is already open is a recording bug and
    /// panics: lease phases do not nest on one generation.
    pub fn open(&mut self, kind: SpanKind, node: u16, generation: u64, at: Time) {
        assert!(
            !self.is_open(kind, node, generation),
            "span {}:{node}:{generation} opened twice",
            kind.label()
        );
        self.open.push(Span {
            kind,
            node,
            generation,
            start: at,
            end: None,
        });
    }

    /// Closes the matching open span at `at`, recording it onto the
    /// completed timeline. Closing a span that was never opened is
    /// ignored (bootstrap leases predate the probe's first edge).
    pub fn close(&mut self, kind: SpanKind, node: u16, generation: u64, at: Time) {
        if let Some(pos) = self
            .open
            .iter()
            .position(|s| s.kind == kind && s.node == node && s.generation == generation)
        {
            let mut span = self.open.swap_remove(pos);
            span.end = Some(at);
            self.closed.record(at, span);
        }
    }

    /// Whether a `(kind, node, generation)` span is currently open.
    pub fn is_open(&self, kind: SpanKind, node: u16, generation: u64) -> bool {
        self.open
            .iter()
            .any(|s| s.kind == kind && s.node == node && s.generation == generation)
    }

    /// Completed spans, ordered by close time.
    pub fn closed(&self) -> &Timeline<Span> {
        &self.closed
    }

    /// Spans still open (sorted by key for deterministic export —
    /// insertion order depends on `swap_remove` history).
    pub fn open_spans(&self) -> Vec<Span> {
        let mut v = self.open.clone();
        v.sort_by_key(|s| (s.kind, s.node, s.generation, s.start));
        v
    }

    /// Number of spans still open.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_pairs_produce_durations() {
        let mut log = SpanLog::new();
        log.open(SpanKind::Establish, 1, 7, Time::from_us(10));
        log.open(SpanKind::Establish, 2, 8, Time::from_us(11));
        log.close(SpanKind::Establish, 1, 7, Time::from_us(25));
        log.close(SpanKind::Establish, 2, 8, Time::from_us(30));
        assert_eq!(log.open_len(), 0);
        let spans: Vec<Span> = log.closed().iter().map(|&(_, s)| s).collect();
        assert_eq!(spans[0].duration(), Some(Time::from_us(15)));
        assert_eq!(spans[1].duration(), Some(Time::from_us(19)));
    }

    #[test]
    fn unmatched_close_is_ignored_and_open_spans_sort() {
        let mut log = SpanLog::new();
        log.close(SpanKind::Active, 0, 1, Time::from_us(5)); // bootstrap lease
        log.open(SpanKind::Active, 3, 9, Time::from_us(6));
        log.open(SpanKind::Active, 1, 4, Time::from_us(7));
        assert!(log.closed().is_empty());
        let open = log.open_spans();
        assert_eq!(open.len(), 2);
        assert_eq!((open[0].node, open[1].node), (1, 3));
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn double_open_panics() {
        let mut log = SpanLog::new();
        log.open(SpanKind::Teardown, 0, 1, Time::from_us(1));
        log.open(SpanKind::Teardown, 0, 1, Time::from_us(2));
    }
}
