//! Per-request latency attribution: the flight-recorder fold.
//!
//! The engine stamps each completed request's lifecycle as a
//! [`StageBreakdown`] — a telescoping decomposition of its end-to-end
//! latency into disjoint stages whose picosecond sums are **exactly**
//! the recorded latency, by construction (each stage is a difference of
//! two event timestamps the engine actually scheduled, so no picosecond
//! is counted twice or dropped). [`AttribFold`] folds those breakdowns
//! into per-tenant × per-node cells and per-tenant tail tables (binned
//! by the same [`LogHistogram`] buckets the report's quantiles use),
//! asserting the exact-sum invariant on every record. The critical-path
//! summarizer ([`AttribFold::tenant_summaries`]) then ranks which stage
//! dominates each tenant's p99 — the "why is the tail what it is"
//! answer the aggregate report cannot give.
//!
//! Everything here is integer arithmetic over picosecond counts; folds
//! of the same request stream are identical byte-for-byte no matter the
//! thread count, exactly like the rest of the probe.

use venice_sim::{LogHistogram, Time};

/// Number of lifecycle stages in a [`StageBreakdown`].
pub const STAGES: usize = 7;

/// Stable stage labels, indexed by the `STAGE_*` constants; the
/// `venice-attrib-v1` artifact and the explain report both use these.
pub const STAGE_LABELS: [&str; STAGES] = [
    "queue_wait",
    "establish_stall",
    "transport",
    "detour",
    "slot_wait",
    "service_local",
    "service_remote",
];

/// Admission-to-dispatch wait in the node's credit backlog (no lease
/// establishment was pending on the node when the request parked).
pub const STAGE_QUEUE_WAIT: usize = 0;
/// The same backlog wait, classified separately when a lease-establish
/// flow was in flight on the serving node while the request parked —
/// latency the tenant paid for elastic memory not being ready yet.
pub const STAGE_ESTABLISH_STALL: usize = 1;
/// Gateway→node QPair message flight time, served on the home node.
pub const STAGE_TRANSPORT: usize = 2;
/// The same message flight time when the request was routed off its
/// home node (locality routing followed a lease; sublease-market and
/// neighbor detours land here).
pub const STAGE_DETOUR: usize = 3;
/// Delivered-to-service wait for a free service slot on the node.
pub const STAGE_SLOT_WAIT: usize = 4;
/// Service time minus the remote-CRMA share: CPU plus local-tier
/// misses (and, for KV, backend-miss queries).
pub const STAGE_SERVICE_LOCAL: usize = 5;
/// The remote-CRMA share of service time: the integer per-mille of the
/// sampled service the compiled model attributes to remote-tier
/// accesses (`CompiledAttrib` in `venice-loadgen`).
pub const STAGE_SERVICE_REMOTE: usize = 6;

/// Admission-shed reason slots for [`AttribFold::on_shed`].
pub const SHED_REASONS: usize = 4;

/// Labels for the shed-reason slots (rate limit, overload,
/// backpressure, node crash — mirroring the engine's `ShedReason`).
pub const SHED_LABELS: [&str; SHED_REASONS] = ["rate", "overload", "backpressure", "crash"];

/// One completed request's latency, decomposed into stages.
///
/// The engine constructs this from event timestamps such that
/// `stage_ps` sums telescope to `total_ps` exactly; [`AttribFold`]
/// asserts that on every record, so a stamping bug fails the run
/// instead of skewing a figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Picoseconds attributed to each stage, indexed by the `STAGE_*`
    /// constants.
    pub stage_ps: [u64; STAGES],
    /// The request's end-to-end latency (completion − arrival), in
    /// picoseconds.
    pub total_ps: u64,
}

impl StageBreakdown {
    /// Sum of the per-stage picoseconds.
    pub fn sum_ps(&self) -> u64 {
        self.stage_ps.iter().sum()
    }

    /// Whether the stages sum exactly to the end-to-end latency.
    pub fn is_exact(&self) -> bool {
        self.sum_ps() == self.total_ps
    }
}

/// Accumulated breakdowns of one (tenant, node) pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttribCell {
    /// Completed requests folded into this cell.
    pub count: u64,
    /// Per-stage picosecond totals.
    pub stage_ps: [u64; STAGES],
    /// Total end-to-end latency picoseconds (equals the stage sum).
    pub total_ps: u64,
}

/// Per-tenant tail table: the tenant's end-to-end histogram plus a
/// per-bucket stage matrix aligned with the histogram's own binning
/// ([`LogHistogram::bucket_of`]), so "the stage composition of requests
/// at or beyond the p99 bucket" is one suffix fold.
#[derive(Debug, Clone)]
struct TenantFold {
    hist: LogHistogram,
    count_by_bucket: Vec<u64>,
    stages_by_bucket: Vec<[u64; STAGES]>,
}

impl TenantFold {
    fn new() -> Self {
        let hist = LogHistogram::new();
        let buckets = hist.bucket_len();
        TenantFold {
            hist,
            count_by_bucket: vec![0; buckets],
            stages_by_bucket: vec![[0; STAGES]; buckets],
        }
    }

    fn record(&mut self, b: &StageBreakdown) {
        let total = Time::from_ps(b.total_ps);
        let idx = self.hist.bucket_of(total);
        self.hist.record(total);
        self.count_by_bucket[idx] += 1;
        for (acc, &ps) in self.stages_by_bucket[idx].iter_mut().zip(&b.stage_ps) {
            *acc += ps;
        }
    }
}

/// Critical-path summary of one tenant: where its p99 comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSummary {
    /// Tenant (mix class) index.
    pub tenant: u16,
    /// Completed requests.
    pub count: u64,
    /// Median end-to-end latency.
    pub p50: Time,
    /// 99th-percentile end-to-end latency.
    pub p99: Time,
    /// Per-stage picosecond totals over all completions.
    pub stage_ps: [u64; STAGES],
    /// Total end-to-end picoseconds over all completions.
    pub total_ps: u64,
    /// Requests in the tail (latency bucket ≥ the p99 bucket).
    pub tail_count: u64,
    /// Per-stage picosecond totals over the tail requests only.
    pub tail_stage_ps: [u64; STAGES],
    /// Sheds by reason (rate, overload, backpressure).
    pub sheds: [u64; SHED_REASONS],
    /// The stage contributing the most time to the tail (index into
    /// [`STAGE_LABELS`]; ties break to the lowest index).
    pub dominant_tail_stage: usize,
}

impl TenantSummary {
    /// Per-mille share of the tail spent in the dominant stage.
    pub fn dominant_share_pm(&self) -> u64 {
        let total: u64 = self.tail_stage_ps.iter().sum();
        if total == 0 {
            return 0;
        }
        self.tail_stage_ps[self.dominant_tail_stage] * 1000 / total
    }
}

/// Folds [`StageBreakdown`]s into per-tenant × per-node cells, per-
/// tenant tail tables, and per-tenant shed counters, asserting the
/// exact-sum invariant on every record.
#[derive(Debug, Clone, Default)]
pub struct AttribFold {
    /// `cells[tenant][node]`, grown on demand.
    cells: Vec<Vec<AttribCell>>,
    tenants: Vec<TenantFold>,
    sheds: Vec<[u64; SHED_REASONS]>,
    requests: u64,
}

impl AttribFold {
    /// Creates an empty fold.
    pub fn new() -> Self {
        AttribFold::default()
    }

    /// Folds one completed request's breakdown into the `(tenant,
    /// node)` cell and the tenant's tail table.
    ///
    /// # Panics
    ///
    /// Panics if the stages do not sum exactly to `total_ps` — the
    /// exact-sum invariant is the module's contract with the engine's
    /// stage stamps, enforced unconditionally (release builds too).
    pub fn record(&mut self, tenant: u16, node: u16, b: StageBreakdown) {
        assert!(
            b.is_exact(),
            "stage attribution must sum exactly to end-to-end latency: \
             tenant {tenant} node {node} stages {} ps != total {} ps",
            b.sum_ps(),
            b.total_ps
        );
        let t = tenant as usize;
        if self.cells.len() <= t {
            self.cells.resize_with(t + 1, Vec::new);
        }
        let row = &mut self.cells[t];
        if row.len() <= node as usize {
            row.resize_with(node as usize + 1, AttribCell::default);
        }
        let cell = &mut row[node as usize];
        cell.count += 1;
        cell.total_ps += b.total_ps;
        for (acc, &ps) in cell.stage_ps.iter_mut().zip(&b.stage_ps) {
            *acc += ps;
        }
        if self.tenants.len() <= t {
            self.tenants.resize_with(t + 1, TenantFold::new);
        }
        self.tenants[t].record(&b);
        self.requests += 1;
    }

    /// Counts one shed request (`reason` < [`SHED_REASONS`], saturated
    /// into the last slot otherwise).
    pub fn on_shed(&mut self, tenant: u16, reason: u8) {
        let t = tenant as usize;
        if self.sheds.len() <= t {
            self.sheds.resize(t + 1, [0; SHED_REASONS]);
        }
        self.sheds[t][(reason as usize).min(SHED_REASONS - 1)] += 1;
    }

    /// Completed requests folded.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Tenant indices with at least one folded request or shed.
    pub fn tenant_len(&self) -> usize {
        self.cells.len().max(self.sheds.len())
    }

    /// Non-empty cells as `(tenant, node, cell)`, tenant-major.
    pub fn cells(&self) -> impl Iterator<Item = (u16, u16, &AttribCell)> + '_ {
        self.cells.iter().enumerate().flat_map(|(t, row)| {
            row.iter()
                .enumerate()
                .filter(|(_, c)| c.count > 0)
                .map(move |(n, c)| (t as u16, n as u16, c))
        })
    }

    /// Shed counts of `tenant`, by reason.
    pub fn sheds(&self, tenant: u16) -> [u64; SHED_REASONS] {
        self.sheds
            .get(tenant as usize)
            .copied()
            .unwrap_or([0; SHED_REASONS])
    }

    /// The critical-path summary of `tenant`, or `None` when the tenant
    /// completed no requests.
    ///
    /// The tail is every latency bucket at or beyond the bucket holding
    /// the tenant's p99 — at the histogram's resolution, "the slowest
    /// ≈1% of requests" — and the dominant stage is the one with the
    /// largest picosecond total over that tail.
    pub fn tenant_summary(&self, tenant: u16) -> Option<TenantSummary> {
        let fold = self.tenants.get(tenant as usize)?;
        let p99 = fold.hist.quantile(0.99)?;
        let p50 = fold.hist.quantile(0.50).expect("non-empty histogram");
        let tail_from = fold.hist.bucket_of(p99);
        let mut tail_count = 0u64;
        let mut tail_stage_ps = [0u64; STAGES];
        for idx in tail_from..fold.count_by_bucket.len() {
            tail_count += fold.count_by_bucket[idx];
            for (acc, &ps) in tail_stage_ps.iter_mut().zip(&fold.stages_by_bucket[idx]) {
                *acc += ps;
            }
        }
        let mut stage_ps = [0u64; STAGES];
        let mut total_ps = 0u64;
        let mut count = 0u64;
        if let Some(row) = self.cells.get(tenant as usize) {
            for cell in row {
                count += cell.count;
                total_ps += cell.total_ps;
                for (acc, &ps) in stage_ps.iter_mut().zip(&cell.stage_ps) {
                    *acc += ps;
                }
            }
        }
        let dominant_tail_stage = tail_stage_ps
            .iter()
            .enumerate()
            .max_by_key(|&(i, &ps)| (ps, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("STAGES > 0");
        Some(TenantSummary {
            tenant,
            count,
            p50,
            p99,
            stage_ps,
            total_ps,
            tail_count,
            tail_stage_ps,
            sheds: self.sheds(tenant),
            dominant_tail_stage,
        })
    }

    /// Summaries of every tenant that completed at least one request,
    /// in tenant order.
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        (0..self.tenants.len() as u16)
            .filter_map(|t| self.tenant_summary(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(stages: [u64; STAGES]) -> StageBreakdown {
        StageBreakdown {
            stage_ps: stages,
            total_ps: stages.iter().sum(),
        }
    }

    #[test]
    fn exact_sum_violations_panic() {
        let mut fold = AttribFold::new();
        let bad = StageBreakdown {
            stage_ps: [1, 0, 0, 0, 0, 0, 0],
            total_ps: 2,
        };
        assert!(!bad.is_exact());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fold.record(0, 0, bad);
        }));
        assert!(r.is_err(), "inexact breakdown must be rejected");
    }

    #[test]
    fn cells_accumulate_per_tenant_and_node() {
        let mut fold = AttribFold::new();
        fold.record(0, 2, breakdown([10, 0, 5, 0, 0, 85, 0]));
        fold.record(0, 2, breakdown([0, 20, 0, 5, 10, 50, 15]));
        fold.record(1, 0, breakdown([0, 0, 1, 0, 0, 1, 0]));
        fold.on_shed(1, 2);
        assert_eq!(fold.requests(), 3);
        let cells: Vec<_> = fold.cells().collect();
        assert_eq!(cells.len(), 2);
        let (t, n, c) = cells[0];
        assert_eq!((t, n, c.count), (0, 2, 2));
        assert_eq!(c.stage_ps[STAGE_QUEUE_WAIT], 10);
        assert_eq!(c.stage_ps[STAGE_ESTABLISH_STALL], 20);
        assert_eq!(c.total_ps, 200);
        assert_eq!(c.stage_ps.iter().sum::<u64>(), c.total_ps);
        assert_eq!(fold.sheds(1), [0, 0, 1, 0]);
        assert_eq!(fold.sheds(7), [0, 0, 0, 0]);
    }

    #[test]
    fn tail_summary_ranks_the_dominant_stage() {
        let mut fold = AttribFold::new();
        // One fast transport-dominated request, 99 slow remote-dominated
        // ones: the p99 bucket sits in the slow cohort, so the tail fold
        // sees only remote-heavy requests.
        fold.record(0, 0, breakdown([0, 0, 800, 0, 0, 200, 0]));
        for _ in 0..99 {
            fold.record(0, 0, breakdown([0, 0, 0, 0, 0, 200, 1_000_000]));
        }
        let s = fold.tenant_summary(0).expect("tenant 0 completed");
        assert_eq!(s.count, 100);
        assert_eq!(s.tail_count, 99, "tail starts at the p99 bucket");
        assert_eq!(s.dominant_tail_stage, STAGE_SERVICE_REMOTE);
        assert!(s.dominant_share_pm() > 990, "tail is ~100% remote");
        assert_eq!(s.total_ps, 1_000 + 99 * 1_000_200);
        // Aggregate stage totals keep both cohorts' signal.
        assert_eq!(s.stage_ps[STAGE_TRANSPORT], 800);
        assert_eq!(s.stage_ps[STAGE_SERVICE_REMOTE], 99 * 1_000_000);
        assert!(s.p50 >= Time::from_ps(1_000_000));
        assert!(s.p99 >= s.p50);
        assert_eq!(fold.tenant_summaries().len(), 1);
    }

    #[test]
    fn summary_is_none_without_completions() {
        let mut fold = AttribFold::new();
        fold.on_shed(0, 0);
        assert!(fold.tenant_summary(0).is_none());
        assert!(fold.tenant_summaries().is_empty());
    }
}
