//! The [`Probe`] trait: hook points the engine is generic over.
//!
//! The loadgen engine takes a `P: Probe` type parameter and guards
//! every hook site with `if P::ENABLED`. For [`NoopProbe`] that guard
//! is a compile-time `false`, so the entire observability layer
//! monomorphizes away — the disabled engine is instruction-for-
//! instruction the pre-telemetry engine, which is what keeps the
//! typed==legacy bit-identity gate and the determinism artifact green.
//!
//! [`RecordingProbe`] is the batteries-included implementation: event
//! counters with sim-time attribution, a ring-buffered series recorder,
//! and a lease-span log. It never schedules events or consumes
//! randomness, so enabling it cannot change what a run computes — only
//! what the run *reports* about itself.

use venice_sim::{QueueStats, Time};

use crate::attrib::{AttribFold, StageBreakdown};
use crate::series::{SampleRow, SeriesRecorder};
use crate::spans::{SpanKind, SpanLog};

/// Number of event-kind slots a probe tracks. Engines map their event
/// enum onto `0..EVENT_KIND_SLOTS`; unused slots stay zero and are
/// skipped at export.
pub const EVENT_KIND_SLOTS: usize = 16;

/// Observation hooks threaded through a simulation engine.
///
/// Every method has an empty default body and every call site is
/// guarded by [`Probe::ENABLED`], so implementors override only what
/// they record and disabled probes cost nothing. Hooks observe; they
/// must never mutate the simulation (the engine hands them no way to).
pub trait Probe {
    /// Whether the engine's hook sites should be compiled in. Hot-path
    /// guards read this associated constant, so a `false` probe's hooks
    /// are dead code, not cheap code.
    const ENABLED: bool;

    /// Whether the engine's per-request attribution stamping (side-slab
    /// lifecycle timestamps, stage telescoping, the
    /// [`on_request`](Self::on_request)/[`on_shed`](Self::on_shed)
    /// hooks) is compiled in. A second monomorphized gate on top of
    /// [`ENABLED`](Self::ENABLED): attribution touches every
    /// completion, which is heavier than the sampling probe's wall-
    /// clock budget allows, so probes that only sample leave it `false`
    /// and the stamping is dead code for them too. `true` requires
    /// `ENABLED` (the engine only checks `ATTRIB` inside enabled
    /// paths or on sites that imply it).
    const ATTRIB: bool = false;

    /// An event of `kind` (the engine's own enum discriminant, `<`
    /// [`EVENT_KIND_SLOTS`]) fired at `now`.
    fn on_event(&mut self, _kind: u8, _now: Time) {}

    /// An arrival was absorbed by lookahead fusion at `now` instead of
    /// round-tripping through the queue (it does *not* also reach
    /// [`on_event`](Self::on_event)).
    fn on_fused_arrival(&mut self, _now: Time) {}

    /// Asks whether a sample tick boundary has been crossed by `now`;
    /// returns the boundary timestamp to stamp the sample with. The
    /// engine calls this once per fired event and, on `Some`, builds a
    /// [`SampleRow`] and hands it to [`on_sample`](Self::on_sample).
    fn sample_due(&mut self, _now: Time) -> Option<Time> {
        None
    }

    /// Receives the cross-section sampled for tick boundary `at`.
    fn on_sample(&mut self, _at: Time, _row: SampleRow) {}

    /// A lease-lifecycle phase began.
    fn span_open(&mut self, _kind: SpanKind, _node: u16, _generation: u64, _at: Time) {}

    /// A lease-lifecycle phase ended.
    fn span_close(&mut self, _kind: SpanKind, _node: u16, _generation: u64, _at: Time) {}

    /// End-of-run kernel queue counters: cumulative traffic stats,
    /// `(live, capacity)` slab occupancy, and peak pending depth.
    fn on_queue_stats(&mut self, _stats: QueueStats, _slab: (usize, usize), _peak_depth: usize) {}

    /// A request completed: its per-stage latency breakdown, which must
    /// sum exactly to the end-to-end latency (see
    /// [`StageBreakdown::is_exact`]). `tenant` is the mix-class index,
    /// `node` the server that executed the request.
    fn on_request(&mut self, _tenant: u16, _node: u16, _stages: StageBreakdown) {}

    /// A request was shed before service. `reason` indexes
    /// [`crate::attrib::SHED_LABELS`].
    fn on_shed(&mut self, _tenant: u16, _node: u16, _reason: u8, _now: Time) {}
}

/// The zero-cost disabled probe: `ENABLED = false`, all hooks inert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// A probe that records everything: per-kind event counters with
/// sim-time attribution, fused-arrival counts, a ring-buffered sample
/// series, lease spans, and the kernel's queue statistics.
///
/// The `ATTRIB` const parameter arms per-request latency attribution
/// (see [`Probe::ATTRIB`]). The default `RecordingProbe` leaves it off
/// — that is the probe the 5% overhead gate times. [`AttribProbe`]
/// turns it on; its contract is byte-identical reports, not wall
/// clock.
#[derive(Debug, Clone)]
pub struct RecordingProbe<const ATTRIB: bool = false> {
    events_by_kind: [u64; EVENT_KIND_SLOTS],
    /// Simulated time attributed to each kind: the gap between an event
    /// and its predecessor is charged to the event that ends the gap
    /// ("how long did the run sit waiting for this kind of work").
    time_by_kind_ps: [u64; EVENT_KIND_SLOTS],
    last_event_at: Time,
    fused: u64,
    next_due: Time,
    series: SeriesRecorder,
    spans: SpanLog,
    queue_stats: QueueStats,
    slab: (usize, usize),
    peak_depth: usize,
    attrib: AttribFold,
}

/// [`RecordingProbe`] with per-request latency attribution armed: the
/// engine stamps every request's lifecycle and the probe folds each
/// completion into its [`AttribFold`].
pub type AttribProbe = RecordingProbe<true>;

impl<const ATTRIB: bool> RecordingProbe<ATTRIB> {
    /// Creates a probe sampling every `tick`, retaining `cap` rows.
    pub fn new(tick: Time, cap: usize) -> Self {
        RecordingProbe {
            events_by_kind: [0; EVENT_KIND_SLOTS],
            time_by_kind_ps: [0; EVENT_KIND_SLOTS],
            last_event_at: Time::ZERO,
            fused: 0,
            next_due: tick,
            series: SeriesRecorder::new(tick, cap),
            spans: SpanLog::new(),
            queue_stats: QueueStats::default(),
            slab: (0, 0),
            peak_depth: 0,
            attrib: AttribFold::new(),
        }
    }

    /// Events fired, by kind slot.
    pub fn events_by_kind(&self) -> &[u64; EVENT_KIND_SLOTS] {
        &self.events_by_kind
    }

    /// Simulated picoseconds attributed to each kind slot.
    pub fn time_by_kind_ps(&self) -> &[u64; EVENT_KIND_SLOTS] {
        &self.time_by_kind_ps
    }

    /// Total events observed across all kinds.
    pub fn total_events(&self) -> u64 {
        self.events_by_kind.iter().sum()
    }

    /// Arrivals absorbed by lookahead fusion.
    pub fn fused(&self) -> u64 {
        self.fused
    }

    /// The recorded sample series.
    pub fn series(&self) -> &SeriesRecorder {
        &self.series
    }

    /// The recorded lease spans.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// End-of-run queue traffic counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue_stats
    }

    /// End-of-run `(live, capacity)` heap-slab occupancy.
    pub fn slab(&self) -> (usize, usize) {
        self.slab
    }

    /// Peak pending event-queue depth.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The per-tenant × per-node latency attribution fold.
    pub fn attrib(&self) -> &AttribFold {
        &self.attrib
    }
}

impl<const ATTRIB: bool> Probe for RecordingProbe<ATTRIB> {
    const ENABLED: bool = true;
    const ATTRIB: bool = ATTRIB;

    fn on_event(&mut self, kind: u8, now: Time) {
        let slot = (kind as usize).min(EVENT_KIND_SLOTS - 1);
        self.events_by_kind[slot] += 1;
        let gap = now.saturating_sub(self.last_event_at);
        self.time_by_kind_ps[slot] += gap.as_ps();
        self.last_event_at = now;
    }

    fn on_fused_arrival(&mut self, _now: Time) {
        self.fused += 1;
    }

    fn sample_due(&mut self, now: Time) -> Option<Time> {
        if now < self.next_due {
            return None;
        }
        // Stamp at the *last* boundary `now` crossed: if events are
        // sparse enough to skip whole ticks, the series records one row
        // at the most recent boundary rather than a backlog of stale
        // rows — sample times stay a deterministic function of the
        // event stream alone.
        let tick_ps = self.series.tick().as_ps();
        let boundary = Time::from_ps((now.as_ps() / tick_ps) * tick_ps);
        self.next_due = boundary
            .checked_add(self.series.tick())
            .expect("tick overflow");
        Some(boundary)
    }

    fn on_sample(&mut self, at: Time, row: SampleRow) {
        self.series.push(at, row);
    }

    fn span_open(&mut self, kind: SpanKind, node: u16, generation: u64, at: Time) {
        self.spans.open(kind, node, generation, at);
    }

    fn span_close(&mut self, kind: SpanKind, node: u16, generation: u64, at: Time) {
        self.spans.close(kind, node, generation, at);
    }

    fn on_queue_stats(&mut self, stats: QueueStats, slab: (usize, usize), peak_depth: usize) {
        self.queue_stats = stats;
        self.slab = slab;
        self.peak_depth = peak_depth;
    }

    fn on_request(&mut self, tenant: u16, node: u16, stages: StageBreakdown) {
        self.attrib.record(tenant, node, stages);
    }

    fn on_shed(&mut self, tenant: u16, _node: u16, reason: u8, _now: Time) {
        self.attrib.on_shed(tenant, reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled() {
        const { assert!(!NoopProbe::ENABLED) }
    }

    #[test]
    fn event_time_is_attributed_to_the_gap_ender() {
        let mut p: RecordingProbe = RecordingProbe::new(Time::from_ms(1), 8);
        p.on_event(0, Time::from_us(10));
        p.on_event(1, Time::from_us(25));
        p.on_event(0, Time::from_us(25)); // zero-gap tie
        assert_eq!(p.events_by_kind()[0], 2);
        assert_eq!(p.events_by_kind()[1], 1);
        assert_eq!(p.time_by_kind_ps()[0], Time::from_us(10).as_ps());
        assert_eq!(p.time_by_kind_ps()[1], Time::from_us(15).as_ps());
        assert_eq!(p.total_events(), 3);
    }

    #[test]
    fn sample_due_fires_once_per_crossed_boundary() {
        let mut p: RecordingProbe = RecordingProbe::new(Time::from_us(10), 8);
        assert_eq!(p.sample_due(Time::from_us(3)), None);
        // Crossing the 10 µs boundary fires exactly once...
        assert_eq!(p.sample_due(Time::from_us(12)), Some(Time::from_us(10)));
        assert_eq!(p.sample_due(Time::from_us(13)), None);
        // ...and skipping several boundaries stamps only the last one.
        assert_eq!(p.sample_due(Time::from_us(57)), Some(Time::from_us(50)));
        assert_eq!(p.sample_due(Time::from_us(59)), None);
        assert_eq!(p.sample_due(Time::from_us(60)), Some(Time::from_us(60)));
    }
}
