//! Text profile reports: a run rendered for humans.
//!
//! [`render_profile`] turns a [`RecordingProbe`] into the report the
//! `venice-bench` `profile` bin prints: top event kinds by count and
//! attributed sim time, kernel-queue traffic, a per-node utilization
//! table folded over the sample series, and a per-(kind, node)
//! span-duration percentile table from the span log. All arithmetic is
//! integer (fixed-point tenths for percentages), so the report is as
//! deterministic as the artifact.

use std::fmt::Write as _;

use crate::probe::RecordingProbe;
use crate::spans::SpanKind;

/// Integer per-mille helper: `part * 1000 / whole` with a zero guard.
fn permille(part: u64, whole: u64) -> u64 {
    (part * 1000).checked_div(whole).unwrap_or(0)
}

/// Writes `x` per-mille as a `dd.d%` fixed-point percentage.
fn pct(x: u64) -> String {
    format!("{}.{}%", x / 10, x % 10)
}

/// Renders `probe` as a multi-section text report. `labels` names the
/// engine's event-kind slots, as for [`crate::export_jsonl`].
pub fn render_profile(scenario: &str, probe: &RecordingProbe, labels: &[&str]) -> String {
    let mut out = String::new();
    writeln!(out, "== profile: {scenario} ==").unwrap();

    // Top event kinds by count, with attributed sim time.
    let total_events = probe.total_events();
    let total_time: u64 = probe.time_by_kind_ps().iter().sum();
    let mut kinds: Vec<(usize, u64, u64)> = probe
        .events_by_kind()
        .iter()
        .zip(probe.time_by_kind_ps())
        .enumerate()
        .filter(|&(_, (&c, _))| c > 0)
        .map(|(slot, (&c, &t))| (slot, c, t))
        .collect();
    kinds.sort_by_key(|&(slot, c, _)| (std::cmp::Reverse(c), slot));
    writeln!(
        out,
        "events: {} fired + {} fused arrivals",
        total_events,
        probe.fused()
    )
    .unwrap();
    writeln!(
        out,
        "  {:<18} {:>12} {:>7} {:>14} {:>7}",
        "kind", "count", "cnt%", "sim-time(us)", "time%"
    )
    .unwrap();
    for (slot, count, time_ps) in &kinds {
        let label = labels.get(*slot).copied().unwrap_or("other");
        writeln!(
            out,
            "  {:<18} {:>12} {:>7} {:>14} {:>7}",
            label,
            count,
            pct(permille(*count, total_events)),
            time_ps / 1_000_000,
            pct(permille(*time_ps, total_time)),
        )
        .unwrap();
    }

    // Kernel queue traffic.
    let q = probe.queue_stats();
    let (slab_live, slab_cap) = probe.slab();
    writeln!(
        out,
        "queue: {} near-hits ({} of pushes), {} sifts ({} spills, {} heap pushes, {} heap pops), peak depth {}, slab {}/{} live",
        q.near_hits,
        pct(permille(q.near_hits, q.near_hits + q.heap_pushes)),
        q.sifts(),
        q.near_spills,
        q.heap_pushes,
        q.heap_pops,
        probe.peak_depth(),
        slab_live,
        slab_cap
    )
    .unwrap();

    // Per-node utilization folded over the sample series.
    let series = probe.series();
    let n_nodes = series.rows().next().map_or(0, |(_, r)| r.nodes.len());
    writeln!(
        out,
        "samples: {} kept ({} dropped), tick {} us",
        series.len(),
        series.dropped(),
        series.tick().as_ps() / 1_000_000
    )
    .unwrap();
    if n_nodes > 0 {
        writeln!(
            out,
            "  {:<5} {:>9} {:>9} {:>10} {:>14} {:>14} {:>14}",
            "node",
            "avg-depth",
            "max-depth",
            "avg-infl",
            "borrowed(MiB)",
            "lent(MiB)",
            "sublsd(MiB)"
        )
        .unwrap();
        let rows = series.len() as u64;
        for node in 0..n_nodes {
            let (mut depth_sum, mut depth_max, mut infl_sum) = (0u64, 0u32, 0u64);
            let (mut borrowed, mut lent, mut subleased) = (0u64, 0u64, 0u64);
            for (_, row) in series.rows() {
                let g = &row.nodes[node];
                depth_sum += u64::from(g.depth);
                depth_max = depth_max.max(g.depth);
                infl_sum += u64::from(g.inflight);
                // Last row wins: report the final byte position.
                borrowed = g.borrowed;
                lent = g.lent;
                subleased = g.subleased;
            }
            writeln!(
                out,
                "  {:<5} {:>9} {:>9} {:>10} {:>14} {:>14} {:>14}",
                node,
                depth_sum / rows,
                depth_max,
                infl_sum / rows,
                borrowed >> 20,
                lent >> 20,
                subleased >> 20
            )
            .unwrap();
        }
    }

    // Span-duration breakdown: per (lifecycle kind, node) percentiles
    // over closed spans, so lease-establish stalls on one hot node are
    // visible instead of averaged away across the cluster.
    let spans = probe.spans();
    writeln!(
        out,
        "lease spans: {} closed, {} still open",
        spans.closed().len(),
        spans.open_len()
    )
    .unwrap();
    const KINDS: [SpanKind; 5] = [
        SpanKind::Establish,
        SpanKind::Active,
        SpanKind::Teardown,
        SpanKind::Fault,
        SpanKind::Failover,
    ];
    let mut durations: std::collections::BTreeMap<(usize, u16), Vec<u64>> =
        std::collections::BTreeMap::new();
    for (_, span) in spans.closed().iter() {
        let kind_idx = KINDS.iter().position(|&k| k == span.kind).unwrap();
        durations
            .entry((kind_idx, span.node))
            .or_default()
            .push(span.duration().map_or(0, |d| d.as_ps()));
    }
    if !durations.is_empty() {
        writeln!(
            out,
            "  {:<10} {:>5} {:>8} {:>10} {:>10} {:>10}",
            "kind", "node", "closed", "p50(us)", "p90(us)", "max(us)"
        )
        .unwrap();
        // Integer nearest-rank percentile over the sorted durations.
        let rank = |sorted: &[u64], q: u64| {
            let idx = (sorted.len() as u64 * q).div_ceil(100).max(1) as usize - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        for ((kind_idx, node), mut ds) in durations {
            ds.sort_unstable();
            writeln!(
                out,
                "  {:<10} {:>5} {:>8} {:>10} {:>10} {:>10}",
                KINDS[kind_idx].label(),
                node,
                ds.len(),
                rank(&ds, 50) / 1_000_000,
                rank(&ds, 90) / 1_000_000,
                ds.last().unwrap() / 1_000_000
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use venice_sim::Time;

    use super::*;
    use crate::probe::Probe;
    use crate::series::{NodeGauges, SampleRow};

    #[test]
    fn report_renders_all_sections() {
        let mut p = RecordingProbe::new(Time::from_us(10), 4);
        p.on_event(0, Time::from_us(4));
        p.on_event(0, Time::from_us(8));
        p.on_event(2, Time::from_us(12));
        if let Some(at) = p.sample_due(Time::from_us(12)) {
            p.on_sample(
                at,
                SampleRow {
                    nodes: vec![
                        NodeGauges::default(),
                        NodeGauges {
                            depth: 4,
                            ..Default::default()
                        },
                    ],
                    tenants: Vec::new(),
                    slab_live: 0,
                    pending_events: 1,
                    links: Vec::new(),
                },
            );
        }
        p.span_open(SpanKind::Establish, 1, 3, Time::from_us(2));
        p.span_close(SpanKind::Establish, 1, 3, Time::from_us(10));
        p.span_open(SpanKind::Establish, 1, 4, Time::from_us(10));
        p.span_close(SpanKind::Establish, 1, 4, Time::from_us(30));
        p.span_open(SpanKind::Establish, 2, 5, Time::from_us(0));
        p.span_close(SpanKind::Establish, 2, 5, Time::from_us(100));
        let report = render_profile("unit", &p, &["arrival", "next", "finish"]);
        assert!(report.contains("== profile: unit =="));
        assert!(report.contains("arrival"));
        assert!(report.contains("finish"));
        assert!(!report.contains("other"), "unused slots stay unnamed");
        assert!(report.contains("66.6%"), "2 of 3 events are arrivals");
        assert!(report.contains("3 closed"));
        // Per-(kind, node) percentiles: node 1 has {8, 20} us establish
        // spans (p50 = 8, p90 = max = 20); node 2 a lone 100 us span.
        let establish_row = |node: &str| {
            report
                .lines()
                .find(|l| {
                    let mut f = l.split_whitespace();
                    f.next() == Some("establish") && f.next() == Some(node)
                })
                .unwrap_or_else(|| panic!("node-{node} establish row"))
                .split_whitespace()
                .collect::<Vec<_>>()
        };
        // Columns: kind node closed p50 p90 max.
        assert_eq!(establish_row("1")[2..], ["2", "8", "20", "20"]);
        assert_eq!(establish_row("2")[2..], ["1", "100", "100", "100"]);
        // Deterministic: same probe, same bytes.
        assert_eq!(
            report,
            render_profile("unit", &p, &["arrival", "next", "finish"])
        );
    }
}
