//! The `venice-telemetry-v2` JSONL artifact.
//!
//! One JSON object per line, hand-formatted with fixed key order and
//! integer-only values so the artifact is byte-identical whenever the
//! probe's contents are — the determinism gates `cmp` these files
//! across rayon widths. Line kinds, in emission order:
//!
//! 1. `header` — schema id, scenario, seed, tick, ring shape.
//! 2. `counters` — per-kind event counts and attributed sim time,
//!    fused arrivals, queue traffic stats, slab occupancy, peak depth.
//! 3. `sample`* — the retained time-series rows, oldest first.
//! 4. `span`* — closed lease spans in close order, then still-open
//!    spans (null `end_ps`) in key order.
//! 5. `end` — retention summary (rows kept/dropped, span counts).

use std::fmt::Write as _;

use crate::probe::RecordingProbe;

/// Renders `probe` into the `venice-telemetry-v2` JSONL artifact.
///
/// `labels` names the engine's event-kind slots; slots at or past
/// `labels.len()` with zero counts are omitted.
///
/// # Panics
///
/// Panics if `scenario` needs JSON escaping — artifact names are plain
/// identifiers by construction.
pub fn export_jsonl(scenario: &str, seed: u64, probe: &RecordingProbe, labels: &[&str]) -> String {
    assert!(
        scenario
            .chars()
            .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'),
        "scenario name must not need JSON escaping: {scenario:?}"
    );
    let mut out = String::new();
    let series = probe.series();
    writeln!(
        out,
        "{{\"kind\":\"header\",\"schema\":\"venice-telemetry-v2\",\"scenario\":\"{}\",\"seed\":{},\"tick_ps\":{},\"ring_cap\":{}}}",
        scenario,
        seed,
        series.tick().as_ps(),
        series.cap()
    )
    .unwrap();

    let mut events = String::new();
    for (slot, (&count, &time_ps)) in probe
        .events_by_kind()
        .iter()
        .zip(probe.time_by_kind_ps())
        .enumerate()
    {
        let label = labels.get(slot).copied();
        if count == 0 && label.is_none() {
            continue;
        }
        if !events.is_empty() {
            events.push(',');
        }
        let label = label.unwrap_or("other");
        write!(
            events,
            "{{\"label\":\"{label}\",\"count\":{count},\"time_ps\":{time_ps}}}"
        )
        .unwrap();
    }
    let q = probe.queue_stats();
    let (slab_live, slab_cap) = probe.slab();
    writeln!(
        out,
        "{{\"kind\":\"counters\",\"events\":[{}],\"fused\":{},\"queue\":{{\"near_hits\":{},\"heap_pushes\":{},\"near_spills\":{},\"near_pops\":{},\"heap_pops\":{},\"sifts\":{}}},\"slab_live\":{},\"slab_cap\":{},\"peak_depth\":{}}}",
        events,
        probe.fused(),
        q.near_hits,
        q.heap_pushes,
        q.near_spills,
        q.near_pops,
        q.heap_pops,
        q.sifts(),
        slab_live,
        slab_cap,
        probe.peak_depth()
    )
    .unwrap();

    for (at, row) in series.rows() {
        let mut nodes = String::new();
        for g in &row.nodes {
            if !nodes.is_empty() {
                nodes.push(',');
            }
            write!(
                nodes,
                "{{\"depth\":{},\"inflight\":{},\"borrowed\":{},\"lent\":{},\"subleased\":{}}}",
                g.depth, g.inflight, g.borrowed, g.lent, g.subleased
            )
            .unwrap();
        }
        let mut tenants = String::new();
        for t in &row.tenants {
            if !tenants.is_empty() {
                tenants.push(',');
            }
            write!(
                tenants,
                "{{\"admitted\":{},\"shed\":{},\"denied\":{},\"quota_bytes\":{}}}",
                t.admitted, t.shed, t.denied, t.quota_bytes
            )
            .unwrap();
        }
        // The links section exists only on congested-fabric runs:
        // scalar-model samples carry no link gauges, and omitting the
        // key entirely keeps their artifacts byte-identical to the
        // pre-congestion format.
        let mut links = String::new();
        for l in &row.links {
            if links.is_empty() {
                links.push_str(",\"links\":[");
            } else {
                links.push(',');
            }
            write!(
                links,
                "{{\"src\":{},\"dst\":{},\"bytes\":{}}}",
                l.src, l.dst, l.bytes
            )
            .unwrap();
        }
        if !links.is_empty() {
            links.push(']');
        }
        writeln!(
            out,
            "{{\"kind\":\"sample\",\"t_ps\":{},\"pending\":{},\"slab_live\":{},\"nodes\":[{}],\"tenants\":[{}]{}}}",
            at.as_ps(),
            row.pending_events,
            row.slab_live,
            nodes,
            tenants,
            links
        )
        .unwrap();
    }

    let spans = probe.spans();
    for (_, span) in spans.closed().iter() {
        writeln!(
            out,
            "{{\"kind\":\"span\",\"span\":\"{}\",\"node\":{},\"gen\":{},\"start_ps\":{},\"end_ps\":{}}}",
            span.kind.label(),
            span.node,
            span.generation,
            span.start.as_ps(),
            span.end.expect("closed span has an end").as_ps()
        )
        .unwrap();
    }
    for span in spans.open_spans() {
        writeln!(
            out,
            "{{\"kind\":\"span\",\"span\":\"{}\",\"node\":{},\"gen\":{},\"start_ps\":{},\"end_ps\":null}}",
            span.kind.label(),
            span.node,
            span.generation,
            span.start.as_ps()
        )
        .unwrap();
    }

    writeln!(
        out,
        "{{\"kind\":\"end\",\"samples\":{},\"dropped\":{},\"spans_closed\":{},\"spans_open\":{}}}",
        series.len(),
        series.dropped(),
        spans.closed().len(),
        spans.open_len()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use venice_sim::Time;

    use super::*;
    use crate::probe::Probe;
    use crate::series::{NodeGauges, SampleRow};
    use crate::spans::SpanKind;

    fn tiny_probe() -> RecordingProbe {
        let mut p = RecordingProbe::new(Time::from_us(10), 4);
        p.on_event(0, Time::from_us(3));
        p.on_event(1, Time::from_us(14));
        p.on_fused_arrival(Time::from_us(14));
        if let Some(at) = p.sample_due(Time::from_us(14)) {
            let row = SampleRow {
                nodes: vec![NodeGauges {
                    depth: 2,
                    inflight: 1,
                    borrowed: 64,
                    lent: 0,
                    subleased: 0,
                }],
                tenants: Vec::new(),
                links: Vec::new(),
                slab_live: 1,
                pending_events: 3,
            };
            p.on_sample(at, row);
        }
        p.span_open(SpanKind::Establish, 0, 1, Time::from_us(5));
        p.span_close(SpanKind::Establish, 0, 1, Time::from_us(12));
        p.span_open(SpanKind::Active, 0, 1, Time::from_us(12));
        p
    }

    #[test]
    fn artifact_shape_is_stable() {
        let probe = tiny_probe();
        let jsonl = export_jsonl("unit", 7, &probe, &["arrival", "finish"]);
        let lines: Vec<&str> = jsonl.lines().collect();
        // header, counters, 1 sample, 1 closed span, 1 open span, end.
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"schema\":\"venice-telemetry-v2\""));
        assert!(lines[1].contains("\"label\":\"arrival\",\"count\":1"));
        assert!(lines[2].contains("\"t_ps\":10000000"));
        assert!(lines[3].contains("\"span\":\"establish\""));
        assert!(lines[4].contains("\"span\":\"active\"") && lines[4].contains("\"end_ps\":null"));
        assert!(lines[5].contains("\"kind\":\"end\",\"samples\":1,\"dropped\":0"));
        // Byte-identical on re-export: pure function of probe contents.
        assert_eq!(
            jsonl,
            export_jsonl("unit", 7, &probe, &["arrival", "finish"])
        );
        // Scalar-model samples carry no link gauges and must not grow
        // a links key — pre-congestion artifacts stay byte-stable.
        assert!(!lines[2].contains("\"links\""));
    }

    #[test]
    fn link_gauges_render_only_when_present() {
        use crate::series::LinkGauge;
        let mut p = RecordingProbe::new(Time::from_us(10), 4);
        if let Some(at) = p.sample_due(Time::from_us(14)) {
            let row = SampleRow {
                links: vec![LinkGauge {
                    src: 0,
                    dst: 1,
                    bytes: 4096,
                }],
                ..SampleRow::default()
            };
            p.on_sample(at, row);
        }
        let jsonl = export_jsonl("unit", 7, &p, &["arrival"]);
        let sample = jsonl
            .lines()
            .find(|l| l.contains("\"kind\":\"sample\""))
            .expect("one sample row");
        assert!(sample.contains("\"links\":[{\"src\":0,\"dst\":1,\"bytes\":4096}]"));
    }
}
