//! The `venice-attrib-v1` JSONL artifact and the differential explain
//! report.
//!
//! Like `venice-telemetry-v2` ([`crate::export_jsonl`]), the artifact
//! is hand-formatted with fixed key order and integer-only values, so
//! identical folds render byte-identically at any thread count. Line
//! kinds, in emission order:
//!
//! 1. `header` — schema id, scenario, seed, the stage-label vector,
//!    and the run labels in emission order.
//! 2. Per run: `cell`* (tenant × node stage totals), `tenant`* (tail
//!    summary + dominant stage), `shed`* (per-reason shed counts).
//! 3. `diff`* — when exactly two runs are given, the per-tenant p99
//!    delta attributed to stages (tail-mean deltas, base → cand).
//! 4. `end` — run/cell/tenant line counts.
//!
//! [`render_explain`] renders the same diff as a text report naming,
//! per tenant, the stage that accounts for the majority of the p99
//! movement.

use std::fmt::Write as _;

use crate::attrib::{AttribFold, TenantSummary, SHED_LABELS, STAGES, STAGE_LABELS};

/// Schema identifier of the attribution artifact.
pub const ATTRIB_SCHEMA: &str = "venice-attrib-v1";

/// Integer per-mille helper with a zero guard.
fn permille(part: u64, whole: u64) -> u64 {
    part.saturating_mul(1000).checked_div(whole).unwrap_or(0)
}

/// `x` per-mille as a `dd.d%` fixed-point percentage.
fn pct(x: u64) -> String {
    format!("{}.{}%", x / 10, x % 10)
}

/// Per-tenant differential attribution between two folds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantDiff {
    /// Tenant (mix class) index, present in both runs.
    pub tenant: u16,
    /// The base run's p99, picoseconds.
    pub base_p99_ps: u64,
    /// The candidate run's p99, picoseconds.
    pub cand_p99_ps: u64,
    /// `cand − base` per-stage **tail means** (mean picoseconds per
    /// tail request), signed: where the tail got slower or faster.
    pub tail_mean_delta_ps: [i64; STAGES],
    /// The stage moving the most in the p99's direction (largest
    /// same-sign tail-mean delta; ties to the lowest index).
    pub dominant_stage: usize,
    /// Per-mille share of the dominant stage among all same-sign
    /// stage deltas (how much of the movement one stage explains).
    pub dominant_share_pm: u64,
}

impl TenantDiff {
    /// Signed p99 delta (`cand − base`), picoseconds.
    pub fn p99_delta_ps(&self) -> i64 {
        self.cand_p99_ps as i64 - self.base_p99_ps as i64
    }
}

/// Mean per-stage tail picoseconds of a summary (zero when the tail is
/// empty).
fn tail_means(s: &TenantSummary) -> [u64; STAGES] {
    let mut out = [0u64; STAGES];
    if s.tail_count == 0 {
        return out;
    }
    for (m, &ps) in out.iter_mut().zip(&s.tail_stage_ps) {
        *m = ps / s.tail_count;
    }
    out
}

/// Computes per-tenant diffs for tenants present (with completions) in
/// both folds, in tenant order.
pub fn diff_tenants(base: &AttribFold, cand: &AttribFold) -> Vec<TenantDiff> {
    let tenants = base.tenant_len().max(cand.tenant_len());
    let mut out = Vec::new();
    for t in 0..tenants as u16 {
        let (Some(b), Some(c)) = (base.tenant_summary(t), cand.tenant_summary(t)) else {
            continue;
        };
        let bm = tail_means(&b);
        let cm = tail_means(&c);
        let mut delta = [0i64; STAGES];
        for i in 0..STAGES {
            delta[i] = cm[i] as i64 - bm[i] as i64;
        }
        // Attribute the p99 movement to the stages moving the same way:
        // if the candidate's p99 improved, the explanation is the
        // stages whose tail mean shrank, ranked by how much.
        let p99_delta = c.p99.as_ps() as i64 - b.p99.as_ps() as i64;
        let sign: i64 = if p99_delta != 0 {
            p99_delta.signum()
        } else if delta.iter().sum::<i64>() >= 0 {
            1
        } else {
            -1
        };
        let signed = |d: i64| (d * sign).max(0) as u64;
        let same_sign_total: u64 = delta.iter().map(|&d| signed(d)).sum();
        let dominant_stage = delta
            .iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (signed(d), std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("STAGES > 0");
        let dominant_share_pm = permille(signed(delta[dominant_stage]), same_sign_total);
        out.push(TenantDiff {
            tenant: t,
            base_p99_ps: b.p99.as_ps(),
            cand_p99_ps: c.p99.as_ps(),
            tail_mean_delta_ps: delta,
            dominant_stage,
            dominant_share_pm,
        });
    }
    out
}

/// Label for tenant `t`: the mix class name when provided, else the
/// index.
fn tenant_label(labels: &[&str], t: u16) -> String {
    labels
        .get(t as usize)
        .map(|s| s.to_string())
        .unwrap_or_else(|| t.to_string())
}

/// Asserts `s` needs no JSON escaping (artifact labels are plain
/// identifiers by construction).
fn assert_plain(s: &str) {
    assert!(
        s.chars()
            .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'),
        "label must not need JSON escaping: {s:?}"
    );
}

/// Renders one or more labeled folds (plus, for exactly two, their
/// differential) into the `venice-attrib-v1` JSONL artifact.
///
/// `tenant_labels` names the mix classes; indices past its end render
/// as bare numbers.
///
/// # Panics
///
/// Panics if `scenario`, a run label, or a tenant label needs JSON
/// escaping, or if `runs` is empty.
pub fn export_attrib_jsonl(
    scenario: &str,
    seed: u64,
    runs: &[(&str, &AttribFold)],
    tenant_labels: &[&str],
) -> String {
    assert!(!runs.is_empty(), "need at least one run");
    assert_plain(scenario);
    for (label, _) in runs {
        assert_plain(label);
    }
    for label in tenant_labels {
        assert_plain(label);
    }
    let mut out = String::new();
    let stages = STAGE_LABELS
        .iter()
        .map(|l| format!("\"{l}\""))
        .collect::<Vec<_>>()
        .join(",");
    let run_names = runs
        .iter()
        .map(|(l, _)| format!("\"{l}\""))
        .collect::<Vec<_>>()
        .join(",");
    writeln!(
        out,
        "{{\"kind\":\"header\",\"schema\":\"{ATTRIB_SCHEMA}\",\"scenario\":\"{scenario}\",\"seed\":{seed},\"stages\":[{stages}],\"runs\":[{run_names}]}}"
    )
    .unwrap();

    let fmt_u64s = |xs: &[u64]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut cell_lines = 0usize;
    let mut tenant_lines = 0usize;
    for (label, fold) in runs {
        for (t, node, cell) in fold.cells() {
            writeln!(
                out,
                "{{\"kind\":\"cell\",\"run\":\"{label}\",\"tenant\":\"{}\",\"node\":{node},\"count\":{},\"stage_ps\":[{}],\"total_ps\":{}}}",
                tenant_label(tenant_labels, t),
                cell.count,
                fmt_u64s(&cell.stage_ps),
                cell.total_ps
            )
            .unwrap();
            cell_lines += 1;
        }
        for s in fold.tenant_summaries() {
            writeln!(
                out,
                "{{\"kind\":\"tenant\",\"run\":\"{label}\",\"tenant\":\"{}\",\"count\":{},\"p50_ps\":{},\"p99_ps\":{},\"tail_count\":{},\"tail_stage_ps\":[{}],\"dominant\":\"{}\",\"dominant_share_pm\":{}}}",
                tenant_label(tenant_labels, s.tenant),
                s.count,
                s.p50.as_ps(),
                s.p99.as_ps(),
                s.tail_count,
                fmt_u64s(&s.tail_stage_ps),
                STAGE_LABELS[s.dominant_tail_stage],
                s.dominant_share_pm()
            )
            .unwrap();
            tenant_lines += 1;
        }
        for t in 0..fold.tenant_len() as u16 {
            let sheds = fold.sheds(t);
            if sheds.iter().all(|&s| s == 0) {
                continue;
            }
            let mut reasons = String::new();
            for (label, count) in SHED_LABELS.iter().zip(sheds) {
                write!(reasons, ",\"{label}\":{count}").unwrap();
            }
            writeln!(
                out,
                "{{\"kind\":\"shed\",\"run\":\"{label}\",\"tenant\":\"{}\"{}}}",
                tenant_label(tenant_labels, t),
                reasons
            )
            .unwrap();
        }
    }

    if let [(base_label, base), (cand_label, cand)] = runs {
        for d in diff_tenants(base, cand) {
            let deltas = d
                .tail_mean_delta_ps
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",");
            writeln!(
                out,
                "{{\"kind\":\"diff\",\"base\":\"{base_label}\",\"cand\":\"{cand_label}\",\"tenant\":\"{}\",\"base_p99_ps\":{},\"cand_p99_ps\":{},\"p99_delta_ps\":{},\"tail_mean_delta_ps\":[{}],\"dominant\":\"{}\",\"dominant_share_pm\":{}}}",
                tenant_label(tenant_labels, d.tenant),
                d.base_p99_ps,
                d.cand_p99_ps,
                d.p99_delta_ps(),
                deltas,
                STAGE_LABELS[d.dominant_stage],
                d.dominant_share_pm
            )
            .unwrap();
        }
    }

    writeln!(
        out,
        "{{\"kind\":\"end\",\"runs\":{},\"cells\":{cell_lines},\"tenants\":{tenant_lines}}}",
        runs.len()
    )
    .unwrap();
    out
}

/// Renders the differential attribution of `cand` against `base` as a
/// text report: per tenant, the p99 movement, the per-stage tail-mean
/// deltas, and the stage that explains the majority of the movement.
pub fn render_explain(
    scenario: &str,
    base_label: &str,
    cand_label: &str,
    base: &AttribFold,
    cand: &AttribFold,
    tenant_labels: &[&str],
) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== explain: {scenario} ({base_label} -> {cand_label}) =="
    )
    .unwrap();
    let diffs = diff_tenants(base, cand);
    if diffs.is_empty() {
        writeln!(out, "no tenant completed requests in both runs").unwrap();
        return out;
    }
    for d in &diffs {
        let label = tenant_label(tenant_labels, d.tenant);
        let delta = d.p99_delta_ps();
        let direction = if delta < 0 {
            "improvement"
        } else {
            "regression"
        };
        writeln!(
            out,
            "tenant {label}: p99 {} us -> {} us ({direction} {} us)",
            d.base_p99_ps / 1_000_000,
            d.cand_p99_ps / 1_000_000,
            delta.unsigned_abs() / 1_000_000
        )
        .unwrap();
        writeln!(
            out,
            "  {:<16} {:>16} {:>7}",
            "stage", "tail-mean \u{0394}(us)", "share"
        )
        .unwrap();
        let sign: i64 = if delta < 0 { -1 } else { 1 };
        let mut rows: Vec<(usize, i64)> = d
            .tail_mean_delta_ps
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, v)| v != 0)
            .collect();
        rows.sort_by_key(|&(i, v)| (std::cmp::Reverse(v * sign), i));
        let same_sign_total: u64 = rows.iter().map(|&(_, v)| (v * sign).max(0) as u64).sum();
        for (i, v) in &rows {
            let share = permille((v * sign).max(0) as u64, same_sign_total);
            writeln!(
                out,
                "  {:<16} {:>16} {:>7}",
                STAGE_LABELS[*i],
                v / 1_000_000,
                if v * sign > 0 {
                    pct(share)
                } else {
                    "-".to_string()
                }
            )
            .unwrap();
        }
        let majority = if d.dominant_share_pm > 500 {
            "the majority"
        } else {
            "the largest share"
        };
        writeln!(
            out,
            "  -> {} accounts for {majority} of the p99 {direction} ({})",
            STAGE_LABELS[d.dominant_stage],
            pct(d.dominant_share_pm)
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::{StageBreakdown, STAGE_SERVICE_REMOTE, STAGE_TRANSPORT};

    fn fold_with(stage: usize, ps: u64, n: u64) -> AttribFold {
        let mut fold = AttribFold::new();
        for _ in 0..n {
            let mut stages = [0u64; STAGES];
            stages[stage] = ps;
            stages[STAGE_TRANSPORT] += 500;
            fold.record(
                0,
                1,
                StageBreakdown {
                    stage_ps: stages,
                    total_ps: stages.iter().sum(),
                },
            );
        }
        fold
    }

    #[test]
    fn diff_names_the_stage_that_moved() {
        // Base: remote service dominates the tail. Candidate: the same
        // tail with the remote share collapsed — the improvement is
        // (almost) entirely service_remote.
        let base = fold_with(STAGE_SERVICE_REMOTE, 2_000_000, 50);
        let cand = fold_with(STAGE_SERVICE_REMOTE, 10_000, 50);
        let diffs = diff_tenants(&base, &cand);
        assert_eq!(diffs.len(), 1);
        let d = &diffs[0];
        assert!(d.p99_delta_ps() < 0, "candidate improved");
        assert_eq!(d.dominant_stage, STAGE_SERVICE_REMOTE);
        assert_eq!(d.dominant_share_pm, 1000, "one stage moved");
        let text = render_explain("unit", "base", "cand", &base, &cand, &["kv"]);
        assert!(text.contains("tenant kv"));
        assert!(text.contains("improvement"));
        assert!(text.contains("service_remote accounts for the majority"));
        // Deterministic render.
        assert_eq!(
            text,
            render_explain("unit", "base", "cand", &base, &cand, &["kv"])
        );
    }

    #[test]
    fn artifact_shape_is_stable() {
        let base = fold_with(STAGE_SERVICE_REMOTE, 1_000_000, 10);
        let mut cand = fold_with(STAGE_TRANSPORT, 900_000, 10);
        cand.on_shed(0, 1);
        let jsonl = export_attrib_jsonl("unit", 7, &[("base", &base), ("cand", &cand)], &["kv"]);
        let lines: Vec<&str> = jsonl.lines().collect();
        // header, 2×(cell + tenant), 1 shed, 1 diff, end.
        assert_eq!(lines.len(), 8);
        assert!(lines[0].contains("\"schema\":\"venice-attrib-v1\""));
        assert!(lines[0].contains("\"runs\":[\"base\",\"cand\"]"));
        assert!(lines[1].starts_with("{\"kind\":\"cell\",\"run\":\"base\""));
        assert!(lines[2].starts_with("{\"kind\":\"tenant\",\"run\":\"base\""));
        assert!(lines[5].starts_with("{\"kind\":\"shed\",\"run\":\"cand\""));
        assert!(lines[6].starts_with("{\"kind\":\"diff\""));
        assert!(lines[7].starts_with("{\"kind\":\"end\",\"runs\":2,\"cells\":2,\"tenants\":2"));
        // Byte-identical on re-export: pure function of the folds.
        assert_eq!(
            jsonl,
            export_attrib_jsonl("unit", 7, &[("base", &base), ("cand", &cand)], &["kv"])
        );
    }

    #[test]
    fn single_run_artifact_has_no_diff() {
        let fold = fold_with(STAGE_TRANSPORT, 1_000, 3);
        let jsonl = export_attrib_jsonl("unit", 1, &[("only", &fold)], &[]);
        assert!(!jsonl.contains("\"kind\":\"diff\""));
        // Unlabeled tenants render as indices.
        assert!(jsonl.contains("\"tenant\":\"0\""));
    }
}
