//! Ring-buffered time series of per-node gauges and per-tenant counters.
//!
//! A [`SeriesRecorder`] holds the sampled trajectory of a run: one
//! [`SampleRow`] per crossed tick boundary, capped at a fixed ring
//! capacity so a long run records its *tail* at full resolution instead
//! of growing without bound. Every field is an integer — the artifact
//! the rows export into is diffed byte-for-byte across thread counts,
//! so nothing here may round differently between machines.

use std::collections::VecDeque;

use venice_sim::Time;

/// Instantaneous per-node gauges at a sample tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeGauges {
    /// Requests waiting in the node's admission backlog.
    pub depth: u32,
    /// Requests currently occupying a server slot.
    pub inflight: u32,
    /// Remote bytes this node is borrowing from donors.
    pub borrowed: u64,
    /// Local bytes this node has lent out to recipients.
    pub lent: u64,
    /// Borrowed bytes charged to another tenant's quota headroom via
    /// the sublease market.
    pub subleased: u64,
}

/// Instantaneous per-directed-link utilization at a sample tick, from
/// the engine's congested-fabric model. Empty (and absent from the
/// exported artifact) on runs priced by the scalar CRMA model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkGauge {
    /// Node the directed link leaves.
    pub src: u16,
    /// Node the directed link enters.
    pub dst: u16,
    /// Bytes charged to the link's current utilization window.
    pub bytes: u64,
}

/// Cumulative per-tenant counters at a sample tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Requests admitted into service so far.
    pub admitted: u64,
    /// Requests shed at admission so far.
    pub shed: u64,
    /// Lease grows refused (cluster capacity or quota) so far.
    pub denied: u64,
    /// Bytes currently charged against the tenant's quota ledger.
    pub quota_bytes: u64,
}

/// One sampled cross-section of the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleRow {
    /// Gauges for every node, indexed by node id.
    pub nodes: Vec<NodeGauges>,
    /// Counters for every tenant, indexed by tenant id.
    pub tenants: Vec<TenantCounters>,
    /// Per-directed-link window utilization when the run models fabric
    /// congestion; empty under the scalar CRMA model, which keeps the
    /// exported artifact byte-identical to pre-congestion runs.
    pub links: Vec<LinkGauge>,
    /// Live entries in the kernel's heap slab at the sample.
    pub slab_live: u32,
    /// Events pending in the kernel queue at the sample.
    pub pending_events: u32,
}

/// A bounded, tick-aligned record of [`SampleRow`]s.
///
/// Rows arrive already tick-stamped (the probe decides *when* to
/// sample; the recorder only stores). When the ring is full the oldest
/// row is dropped and counted, so an exported artifact always states
/// how much head it lost.
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    tick: Time,
    cap: usize,
    rows: VecDeque<(Time, SampleRow)>,
    dropped: u64,
}

impl SeriesRecorder {
    /// Creates a recorder sampling every `tick` of simulated time,
    /// keeping at most `cap` rows.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or `cap` is zero — a recorder that can
    /// hold nothing or fires continuously is a configuration bug.
    pub fn new(tick: Time, cap: usize) -> Self {
        assert!(tick > Time::ZERO, "sample tick must be positive");
        assert!(cap > 0, "ring capacity must be positive");
        SeriesRecorder {
            tick,
            cap,
            rows: VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }

    /// The configured sample tick.
    pub fn tick(&self) -> Time {
        self.tick
    }

    /// The ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Appends a row stamped at tick boundary `at`, evicting the
    /// oldest row when full.
    pub fn push(&mut self, at: Time, row: SampleRow) {
        if self.rows.len() == self.cap {
            self.rows.pop_front();
            self.dropped += 1;
        }
        self.rows.push_back((at, row));
    }

    /// The retained rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &(Time, SampleRow)> {
        self.rows.iter()
    }

    /// Number of retained rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows evicted from the head of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = SeriesRecorder::new(Time::from_us(10), 3);
        for i in 0..5u64 {
            r.push(Time::from_us(10 * (i + 1)), SampleRow::default());
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.rows().next().unwrap().0;
        assert_eq!(first, Time::from_us(30), "head rows evicted first");
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_is_rejected() {
        SeriesRecorder::new(Time::ZERO, 8);
    }
}
