#![deny(missing_docs)]

//! Deterministic observability for Venice runs.
//!
//! Everything the workspace measures — kernel throughput, lease-economy
//! fairness, admission behavior — happens *inside* a simulated run, and
//! until this crate the only way to see it was the final report: totals
//! with no trajectory. `venice-telemetry` threads a [`Probe`] through
//! the loadgen engine so a run can be observed while it happens,
//! without perturbing it:
//!
//! * **Zero overhead when disabled.** [`Probe`] is a trait the engine
//!   is generic over; [`NoopProbe`] has `ENABLED = false` and empty
//!   hook bodies, so every hook site guarded by `if P::ENABLED`
//!   monomorphizes to nothing. The default engine entry points run the
//!   no-op probe and stay byte-identical to their pre-telemetry output.
//! * **Deterministic when enabled.** A [`RecordingProbe`] never
//!   schedules events, reads clocks, or allocates identity — it only
//!   observes the event stream the kernel was going to execute anyway.
//!   Samples are timestamped at simulated-tick boundaries, so the same
//!   seed yields the same artifact byte-for-byte at any thread count.
//! * **Three signal shapes.** Per-event counters (fired/fused by kind,
//!   plus [`venice_sim::QueueStats`] from the event queue), a
//!   ring-buffered time series of per-node gauges and per-tenant
//!   counters ([`series`]), and sim-time spans over lease lifecycles
//!   ([`spans`]), recorded onto a [`venice_sim::Timeline`].
//!
//! The [`export`] module renders a probe into the `venice-telemetry-v2`
//! JSONL artifact; [`profile`] renders the same data as a human text
//! report (the `venice-bench` `profile` bin drives both).
//!
//! On top of the event/series/span signals, [`attrib`] adds per-request
//! latency attribution: the engine stamps each request's lifecycle
//! stages ([`attrib::StageBreakdown`], which must sum *exactly* to the
//! end-to-end latency) through [`Probe::on_request`], and
//! [`attrib::AttribFold`] folds them into per-tenant × per-node stage
//! totals plus per-tenant tail (≥ p99 bucket) critical-path summaries.
//! [`report`] renders one or two folds into the `venice-attrib-v1`
//! JSONL artifact and the differential *explain* text report that names
//! the stage responsible for a p99 shift between two runs (the
//! `venice-bench` `explain` bin drives both).

pub mod attrib;
pub mod export;
pub mod probe;
pub mod profile;
pub mod report;
pub mod series;
pub mod spans;

pub use attrib::{AttribFold, StageBreakdown, TenantSummary, STAGES, STAGE_LABELS};
pub use export::export_jsonl;
pub use probe::{AttribProbe, NoopProbe, Probe, RecordingProbe};
pub use profile::render_profile;
pub use report::{diff_tenants, export_attrib_jsonl, render_explain, TenantDiff, ATTRIB_SCHEMA};
pub use series::{LinkGauge, NodeGauges, SampleRow, SeriesRecorder, TenantCounters};
pub use spans::{Span, SpanKind, SpanLog};
