//! Property tests for the simulation kernel's invariants.

use proptest::prelude::*;
use venice_sim::{EventQueue, Kernel, Time, TokenBucket};

proptest! {
    /// The event queue pops in nondecreasing time order, and equal
    /// timestamps pop in insertion order.
    #[test]
    fn event_queue_is_stable_and_sorted(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    /// Running a kernel executes every scheduled event exactly once and
    /// the clock ends at the latest event time.
    #[test]
    fn kernel_executes_everything(delays in prop::collection::vec(1u64..10_000, 1..100)) {
        let mut k = Kernel::new(Vec::<u64>::new());
        let max = *delays.iter().max().unwrap();
        for &d in &delays {
            k.schedule(Time::from_ns(d), move |v: &mut Vec<u64>, _| v.push(d));
        }
        let end = k.run();
        prop_assert_eq!(k.state().len(), delays.len());
        prop_assert_eq!(end, Time::from_ns(max));
        prop_assert_eq!(k.pending(), 0);
    }

    /// A token bucket never admits traffic faster than its configured
    /// rate over any window starting from a drained state.
    #[test]
    fn token_bucket_enforces_rate(
        rate in 1.0f64..40.0,
        burst in 64u64..4096,
        sizes in prop::collection::vec(1u64..2048, 1..100),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = Time::ZERO;
        let mut sent = 0u64;
        for &s in &sizes {
            now = tb.reserve(now, s);
            sent += s;
        }
        if now > Time::ZERO {
            // Bytes admitted beyond the initial burst must fit the rate.
            let max_bytes = burst as f64 + rate * 0.125e9 * now.as_secs_f64() + 1.0;
            prop_assert!(
                (sent as f64) <= max_bytes + sizes.last().copied().unwrap() as f64,
                "sent {sent} in {now}, cap {max_bytes}"
            );
        }
    }

    /// Time arithmetic round-trips through unit conversions.
    #[test]
    fn time_conversions_consistent(ns in 0u64..u64::MAX / 2_000) {
        let t = Time::from_ns(ns);
        prop_assert_eq!(t.as_ns(), ns);
        prop_assert_eq!(Time::from_ps(t.as_ps()), t);
        prop_assert!(t.as_secs_f64() >= 0.0);
    }

    /// Saturating subtraction never underflows and ordinary addition is
    /// monotone.
    #[test]
    fn time_ordering(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let ta = Time::from_ns(a);
        let tb = Time::from_ns(b);
        prop_assert!(ta + tb >= ta);
        prop_assert!(ta.saturating_sub(tb) <= ta);
        if a >= b {
            prop_assert_eq!(ta.saturating_sub(tb) + tb, ta);
        }
    }
}
