//! The event loop: closure events over user state.
//!
//! Every Venice experiment is a `Kernel<S>` where `S` holds the modeled
//! world (nodes, channels, tables). Events are boxed `FnOnce(&mut S,
//! &mut Scheduler<S>)` closures: they mutate the world and may schedule
//! follow-up events. The split between [`Kernel`] (owns state, runs the
//! loop) and [`Scheduler`] (owns the queue and clock) is what lets an event
//! borrow the state mutably while still enqueueing new events.

use crate::queue::EventQueue;
use crate::time::Time;

/// A scheduled closure event.
pub type Event<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

/// Clock plus pending-event queue; handed to every event so it can
/// schedule follow-ups.
pub struct Scheduler<S> {
    now: Time,
    queue: EventQueue<Event<S>>,
    executed: u64,
    /// Hard cap on executed events; guards against runaway models.
    event_limit: u64,
    /// Stop the run loop once the clock passes this point.
    horizon: Time,
}

impl<S> Scheduler<S> {
    fn new() -> Self {
        Scheduler {
            now: Time::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            event_limit: u64::MAX,
            horizon: Time::MAX,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulated time overflow");
        self.queue.push(at, Box::new(f));
    }

    /// Schedules `f` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events may not run
    /// in the past).
    pub fn schedule_at<F>(&mut self, at: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, Box::new(f));
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<S> std::fmt::Debug for Scheduler<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

/// A discrete-event simulation: user state plus the event loop.
///
/// # Example
///
/// ```
/// use venice_sim::{Kernel, Time};
/// let mut k = Kernel::new(0u32);
/// k.schedule(Time::from_ns(1), |n: &mut u32, _| *n += 1);
/// k.run();
/// assert_eq!(*k.state(), 1);
/// ```
pub struct Kernel<S> {
    state: S,
    sched: Scheduler<S>,
}

impl<S> Kernel<S> {
    /// Creates a kernel at time zero over `state`.
    pub fn new(state: S) -> Self {
        Kernel {
            state,
            sched: Scheduler::new(),
        }
    }

    /// Caps the number of events a `run` may execute. Exceeding the cap
    /// panics, which turns accidental event storms into loud failures.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.sched.event_limit = limit;
        self
    }

    /// Stops the run loop once the clock would pass `horizon`; pending
    /// later events are left in the queue.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.sched.horizon = horizon;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the kernel, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        self.sched.schedule_in(delay, f);
    }

    /// Runs until the queue is empty (or the horizon/event limit is hit).
    /// Returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.sched.now
    }

    /// Executes a single event. Returns `false` when the queue is empty or
    /// the next event lies beyond the horizon.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.peek_time() {
            None => false,
            Some(at) if at > self.sched.horizon => false,
            Some(_) => {
                let (at, event) = self.sched.queue.pop().expect("peeked entry vanished");
                self.sched.now = at;
                self.sched.executed += 1;
                assert!(
                    self.sched.executed <= self.sched.event_limit,
                    "event limit exceeded at {at}: runaway simulation?"
                );
                event(&mut self.state, &mut self.sched);
                true
            }
        }
    }

    /// Runs until the clock reaches at least `until` (executing every event
    /// timestamped `<= until`), then returns the current time.
    pub fn run_until(&mut self, until: Time) -> Time {
        loop {
            match self.sched.queue.peek_time() {
                Some(at) if at <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.sched.now < until {
            self.sched.now = until;
        }
        self.sched.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.sched.executed()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Kernel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.sched.now)
            .field("pending", &self.sched.pending())
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut k = Kernel::new(Vec::new());
        k.schedule(Time::from_ns(30), |v: &mut Vec<u32>, _| v.push(3));
        k.schedule(Time::from_ns(10), |v: &mut Vec<u32>, _| v.push(1));
        k.schedule(Time::from_ns(20), |v: &mut Vec<u32>, _| v.push(2));
        let end = k.run();
        assert_eq!(k.state(), &vec![1, 2, 3]);
        assert_eq!(end, Time::from_ns(30));
    }

    #[test]
    fn events_can_chain() {
        let mut k = Kernel::new(0u64);
        fn tick(n: &mut u64, s: &mut Scheduler<u64>) {
            *n += 1;
            if *n < 5 {
                s.schedule_in(Time::from_ns(10), tick);
            }
        }
        k.schedule(Time::ZERO, tick);
        k.run();
        assert_eq!(*k.state(), 5);
        assert_eq!(k.now(), Time::from_ns(40));
        assert_eq!(k.executed(), 5);
    }

    #[test]
    fn horizon_stops_the_loop() {
        let mut k = Kernel::new(0u32).with_horizon(Time::from_ns(25));
        for i in 1..=5 {
            k.schedule(Time::from_ns(i * 10), |n: &mut u32, _| *n += 1);
        }
        k.run();
        assert_eq!(*k.state(), 2); // events at 10 and 20 only
        assert_eq!(k.pending(), 3);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut k = Kernel::new(());
        let t = k.run_until(Time::from_us(7));
        assert_eq!(t, Time::from_us(7));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaways() {
        let mut k = Kernel::new(()).with_event_limit(100);
        fn forever(_: &mut (), s: &mut Scheduler<()>) {
            s.schedule_in(Time::from_ns(1), forever);
        }
        k.schedule(Time::ZERO, forever);
        k.run();
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut k = Kernel::new(());
        k.schedule(Time::from_ns(10), |_, s| {
            s.schedule_at(Time::from_ns(5), |_, _| {});
        });
        k.run();
    }
}
