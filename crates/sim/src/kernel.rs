//! The event loop: typed events over user state, with a boxed-closure
//! compatibility layer.
//!
//! Every Venice experiment is a `Kernel<S, E>` where `S` holds the
//! modeled world (nodes, channels, tables) and `E` is the event type.
//! Two flavors share one loop:
//!
//! * **Typed events** (the fast path): `E` is a plain enum implementing
//!   [`SimEvent`]. Events are scheduled *by value* — no heap allocation,
//!   no virtual dispatch — and fired through a monomorphic `match`. This
//!   is what the loadgen engine runs on; see `BENCH_perf.json` for the
//!   measured gap versus the boxed path.
//! * **Boxed closures** (the compatibility layer): the original
//!   `FnOnce(&mut S, &mut Scheduler<S>)` API, wrapped in
//!   [`ClosureEvent`] — which itself just implements [`SimEvent`]. All
//!   pre-existing callers (`Kernel<S>` with closure `schedule`) compile
//!   unchanged because `E` defaults to `ClosureEvent<S>`.
//!
//! The split between [`Kernel`] (owns state, runs the loop) and
//! [`Scheduler`] (owns the queue and clock) is what lets an event borrow
//! the state mutably while still enqueueing new events.

use std::marker::PhantomData;

use crate::queue::{EventQueue, QueueStats};
use crate::time::Time;

/// A typed simulation event over world state `S`.
///
/// Implementations are plain data — typically one enum per simulation —
/// consumed by value when they fire. The kernel moves the event out of
/// the queue and into [`fire`](Self::fire), so a steady-state simulation
/// performs **zero heap allocations per event**: no `Box`, no vtable,
/// and the `match` inside `fire` monomorphizes into direct calls.
///
/// # Example
///
/// ```
/// use venice_sim::{Kernel, Scheduler, SimEvent, Time};
///
/// struct World { pings: u32, pongs: u32 }
///
/// enum Ev { Ping, Pong }
///
/// impl SimEvent<World> for Ev {
///     fn fire(self, w: &mut World, s: &mut Scheduler<World, Ev>) {
///         match self {
///             Ev::Ping => {
///                 w.pings += 1;
///                 // Follow-ups are scheduled by value, no Box.
///                 s.schedule_event_in(Time::from_us(1), Ev::Pong);
///             }
///             Ev::Pong => w.pongs += 1,
///         }
///     }
/// }
///
/// let mut k: Kernel<World, Ev> = Kernel::new(World { pings: 0, pongs: 0 });
/// k.schedule_event(Time::ZERO, Ev::Ping);
/// k.run();
/// assert_eq!((k.state().pings, k.state().pongs), (1, 1));
/// ```
pub trait SimEvent<S>: Sized {
    /// Applies the event to the world; may schedule follow-up events.
    fn fire(self, state: &mut S, sched: &mut Scheduler<S, Self>);
}

/// A boxed-closure event: the compatibility layer over [`SimEvent`].
///
/// This is the original event representation — one heap allocation and
/// one indirect call per event (except for zero-sized closures, which
/// `Box` stores without allocating). New simulations should define a
/// typed event enum instead; this wrapper exists so the large body of
/// closure-based models and tests keeps working unchanged.
pub struct ClosureEvent<S>(BoxedHandler<S>);

/// The boxed closure a [`ClosureEvent`] wraps.
type BoxedHandler<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

impl<S> SimEvent<S> for ClosureEvent<S> {
    fn fire(self, state: &mut S, sched: &mut Scheduler<S, Self>) {
        (self.0)(state, sched)
    }
}

/// Clock plus pending-event queue; handed to every event so it can
/// schedule follow-ups.
pub struct Scheduler<S, E = ClosureEvent<S>> {
    now: Time,
    queue: EventQueue<E>,
    executed: u64,
    /// Hard cap on executed events; guards against runaway models.
    event_limit: u64,
    /// Stop the run loop once the clock passes this point.
    horizon: Time,
    _state: PhantomData<fn(&mut S)>,
}

impl<S, E> Scheduler<S, E> {
    fn new() -> Self {
        Scheduler {
            now: Time::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            event_limit: u64::MAX,
            horizon: Time::MAX,
            _state: PhantomData,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules typed event `event` to fire `delay` after the current
    /// time.
    #[inline]
    pub fn schedule_event_in(&mut self, delay: Time, event: E) {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulated time overflow");
        self.queue.push(at, event);
    }

    /// Schedules typed event `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events may not run
    /// in the past).
    #[inline]
    pub fn schedule_event_at(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Peak number of simultaneously pending events so far.
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// Cumulative event-queue traffic counters (near-buffer hits, heap
    /// sifts, pops); see [`QueueStats`].
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// `(live, capacity)` of the heap's event slab: entries currently
    /// holding a pending heap event versus slots ever allocated.
    pub fn slab_occupancy(&self) -> (usize, usize) {
        self.queue.slab_occupancy()
    }

    /// `(earliest, latest)` fire times among pending events — how far
    /// into the simulated future the run has committed work. `None`
    /// when the queue is empty.
    pub fn pending_time_span(&self) -> Option<(Time, Time)> {
        self.queue.pending_time_span()
    }

    /// Timestamp of the next pending event, if any.
    ///
    /// Together with [`advance_to`](Self::advance_to) this enables
    /// **lookahead fusion**: a handler that knows its own follow-up time
    /// `t` may process the follow-up immediately — skipping the queue
    /// round-trip — when `t` lies *strictly* before every pending event
    /// (a later-scheduled event never outranks pending ties, so strict
    /// inequality preserves the exact pop order).
    #[inline]
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Advances the clock to `at` without executing an event, for
    /// lookahead fusion (see [`next_event_time`](Self::next_event_time)).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, beyond a pending event, or beyond
    /// the run horizon — any of which would break event ordering.
    #[inline]
    pub fn advance_to(&mut self, at: Time) {
        assert!(at >= self.now, "cannot advance into the past");
        assert!(
            self.queue
                .peek_time()
                .map(|next| at <= next)
                .unwrap_or(true),
            "cannot advance past a pending event"
        );
        assert!(at <= self.horizon, "cannot advance past the horizon");
        self.now = at;
    }
}

impl<S> Scheduler<S> {
    /// Schedules closure `f` to run `delay` after the current time
    /// (compatibility path; allocates unless `f` is zero-sized).
    pub fn schedule_in<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        self.schedule_event_in(delay, ClosureEvent(Box::new(f)));
    }

    /// Schedules closure `f` at absolute time `at` (compatibility path).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events may not run
    /// in the past).
    pub fn schedule_at<F>(&mut self, at: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        self.schedule_event_at(at, ClosureEvent(Box::new(f)));
    }
}

impl<S, E> std::fmt::Debug for Scheduler<S, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

/// A discrete-event simulation: user state plus the event loop.
///
/// `Kernel<S>` is the closure-compatible flavor; `Kernel<S, E>` with a
/// typed `E: SimEvent<S>` is the zero-allocation fast path.
///
/// # Example: closures (compat flavor)
///
/// ```
/// use venice_sim::{Kernel, Time};
/// let mut k = Kernel::new(0u32);
/// k.schedule(Time::from_ns(1), |n: &mut u32, _| *n += 1);
/// k.run();
/// assert_eq!(*k.state(), 1);
/// ```
///
/// # Example: a minimal typed-event simulation
///
/// A tiny server: arrivals every 10 µs, a fixed 25 µs service time, one
/// slot — a request either starts service immediately or queues behind
/// the busy slot. The whole simulation is one enum and one `match`, and
/// every event is scheduled by value (no `Box`, no vtable):
///
/// ```
/// use venice_sim::{Kernel, Scheduler, SimEvent, Time};
///
/// struct Server { queued: u32, busy_until: Time, served: u32 }
///
/// enum Ev { Arrive(u32), Finish }
///
/// impl SimEvent<Server> for Ev {
///     fn fire(self, w: &mut Server, s: &mut Scheduler<Server, Ev>) {
///         match self {
///             Ev::Arrive(remaining) => {
///                 w.queued += 1;
///                 if w.busy_until <= s.now() {
///                     // Idle slot: start service now.
///                     w.busy_until = s.now() + Time::from_us(25);
///                     s.schedule_event_at(w.busy_until, Ev::Finish);
///                 }
///                 if remaining > 0 {
///                     s.schedule_event_in(Time::from_us(10), Ev::Arrive(remaining - 1));
///                 }
///             }
///             Ev::Finish => {
///                 w.queued -= 1;
///                 w.served += 1;
///                 if w.queued > 0 {
///                     // Next in line takes the slot.
///                     w.busy_until = s.now() + Time::from_us(25);
///                     s.schedule_event_at(w.busy_until, Ev::Finish);
///                 }
///             }
///         }
///     }
/// }
///
/// let server = Server { queued: 0, busy_until: Time::ZERO, served: 0 };
/// let mut k: Kernel<Server, Ev> = Kernel::new(server);
/// k.schedule_event(Time::ZERO, Ev::Arrive(3)); // 4 arrivals in all
/// k.run();
/// assert_eq!(k.state().served, 4);
/// // Arrivals outpace the 25 µs service: the last departure is at 100 µs.
/// assert_eq!(k.now(), Time::from_us(100));
/// ```
pub struct Kernel<S, E = ClosureEvent<S>> {
    state: S,
    sched: Scheduler<S, E>,
}

impl<S, E> Kernel<S, E> {
    /// Creates a kernel at time zero over `state`.
    pub fn new(state: S) -> Self {
        Kernel {
            state,
            sched: Scheduler::new(),
        }
    }

    /// Caps the number of events a `run` may execute. Exceeding the cap
    /// panics, which turns accidental event storms into loud failures.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.sched.event_limit = limit;
        self
    }

    /// Stops the run loop once the clock would pass `horizon`; pending
    /// later events are left in the queue.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.sched.horizon = horizon;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the kernel, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules typed event `event` to fire `delay` after the current
    /// time.
    pub fn schedule_event(&mut self, delay: Time, event: E) {
        self.sched.schedule_event_in(delay, event);
    }

    /// Schedules typed event `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_event_at(&mut self, at: Time, event: E) {
        self.sched.schedule_event_at(at, event);
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.sched.executed()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }

    /// Peak number of simultaneously pending events so far (peak
    /// event-queue depth).
    pub fn peak_pending(&self) -> usize {
        self.sched.peak_pending()
    }

    /// Cumulative event-queue traffic counters (near-buffer hits, heap
    /// sifts, pops); see [`QueueStats`].
    pub fn queue_stats(&self) -> QueueStats {
        self.sched.queue_stats()
    }

    /// `(live, capacity)` of the heap's event slab.
    pub fn slab_occupancy(&self) -> (usize, usize) {
        self.sched.slab_occupancy()
    }

    /// `(earliest, latest)` fire times among pending events, or `None`
    /// when the queue is empty.
    pub fn pending_time_span(&self) -> Option<(Time, Time)> {
        self.sched.pending_time_span()
    }
}

impl<S, E: SimEvent<S>> Kernel<S, E> {
    /// Runs until the queue is empty (or the horizon/event limit is hit).
    /// Returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.sched.now
    }

    /// Executes a single event. Returns `false` when the queue is empty or
    /// the next event lies beyond the horizon.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop_at_or_before(self.sched.horizon) {
            None => false,
            Some((at, event)) => {
                self.sched.now = at;
                self.sched.executed += 1;
                assert!(
                    self.sched.executed <= self.sched.event_limit,
                    "event limit exceeded at {at}: runaway simulation?"
                );
                event.fire(&mut self.state, &mut self.sched);
                true
            }
        }
    }

    /// Runs until the clock reaches at least `until` (executing every event
    /// timestamped `<= until`, but never past the horizon), then returns
    /// the current time.
    pub fn run_until(&mut self, until: Time) -> Time {
        loop {
            match self.sched.queue.peek_time() {
                Some(at) if at <= until => {
                    // `step` refuses events beyond the horizon; stop
                    // rather than re-peeking the same event forever.
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.sched.now < until {
            self.sched.now = until;
        }
        self.sched.now
    }
}

impl<S> Kernel<S> {
    /// Schedules closure `f` to run `delay` after the current time
    /// (compatibility path).
    pub fn schedule<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        self.sched.schedule_in(delay, f);
    }
}

impl<S: std::fmt::Debug, E> std::fmt::Debug for Kernel<S, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.sched.now)
            .field("pending", &self.sched.pending())
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut k = Kernel::new(Vec::new());
        k.schedule(Time::from_ns(30), |v: &mut Vec<u32>, _| v.push(3));
        k.schedule(Time::from_ns(10), |v: &mut Vec<u32>, _| v.push(1));
        k.schedule(Time::from_ns(20), |v: &mut Vec<u32>, _| v.push(2));
        let end = k.run();
        assert_eq!(k.state(), &vec![1, 2, 3]);
        assert_eq!(end, Time::from_ns(30));
    }

    #[test]
    fn events_can_chain() {
        let mut k = Kernel::new(0u64);
        fn tick(n: &mut u64, s: &mut Scheduler<u64>) {
            *n += 1;
            if *n < 5 {
                s.schedule_in(Time::from_ns(10), tick);
            }
        }
        k.schedule(Time::ZERO, tick);
        k.run();
        assert_eq!(*k.state(), 5);
        assert_eq!(k.now(), Time::from_ns(40));
        assert_eq!(k.executed(), 5);
    }

    #[test]
    fn pending_time_span_tracks_the_committed_future() {
        let mut k = Kernel::new(0u32);
        assert_eq!(k.pending_time_span(), None);
        for i in 1..=5 {
            k.schedule(Time::from_ns(i * 10), |n: &mut u32, _| *n += 1);
        }
        assert_eq!(
            k.pending_time_span(),
            Some((Time::from_ns(10), Time::from_ns(50)))
        );
        k.step();
        assert_eq!(
            k.pending_time_span(),
            Some((Time::from_ns(20), Time::from_ns(50)))
        );
    }

    #[test]
    fn horizon_stops_the_loop() {
        let mut k = Kernel::new(0u32).with_horizon(Time::from_ns(25));
        for i in 1..=5 {
            k.schedule(Time::from_ns(i * 10), |n: &mut u32, _| *n += 1);
        }
        k.run();
        assert_eq!(*k.state(), 2); // events at 10 and 20 only
        assert_eq!(k.pending(), 3);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut k: Kernel<()> = Kernel::new(());
        let t = k.run_until(Time::from_us(7));
        assert_eq!(t, Time::from_us(7));
    }

    #[test]
    fn run_until_terminates_when_horizon_blocks_a_due_event() {
        // An event due before `until` but beyond the horizon must not
        // spin the loop forever: run_until stops at the horizon.
        let mut k = Kernel::new(0u32).with_horizon(Time::from_us(5));
        k.schedule(Time::from_us(8), |n: &mut u32, _| *n += 1);
        let t = k.run_until(Time::from_us(10));
        assert_eq!(*k.state(), 0, "event beyond the horizon must not run");
        assert_eq!(k.pending(), 1);
        assert_eq!(t, Time::from_us(10));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaways() {
        let mut k = Kernel::new(()).with_event_limit(100);
        fn forever(_: &mut (), s: &mut Scheduler<()>) {
            s.schedule_in(Time::from_ns(1), forever);
        }
        k.schedule(Time::ZERO, forever);
        k.run();
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut k = Kernel::new(());
        k.schedule(Time::from_ns(10), |_, s| {
            s.schedule_at(Time::from_ns(5), |_, _| {});
        });
        k.run();
    }

    /// A typed counter event used by the generic-path tests below.
    enum CounterEv {
        Bump(u32),
        Chain { left: u32, gap: Time },
    }

    impl SimEvent<u32> for CounterEv {
        fn fire(self, n: &mut u32, s: &mut Scheduler<u32, CounterEv>) {
            match self {
                CounterEv::Bump(by) => *n += by,
                CounterEv::Chain { left, gap } => {
                    *n += 1;
                    if left > 1 {
                        s.schedule_event_in(
                            gap,
                            CounterEv::Chain {
                                left: left - 1,
                                gap,
                            },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_run_and_chain() {
        let mut k: Kernel<u32, CounterEv> = Kernel::new(0);
        k.schedule_event(Time::from_ns(5), CounterEv::Bump(10));
        k.schedule_event(
            Time::ZERO,
            CounterEv::Chain {
                left: 4,
                gap: Time::from_ns(3),
            },
        );
        let end = k.run();
        assert_eq!(*k.state(), 14);
        assert_eq!(end, Time::from_ns(9));
        assert_eq!(k.executed(), 5);
        assert!(k.peak_pending() >= 2);
    }

    #[test]
    fn typed_events_respect_horizon_and_limit() {
        let mut k: Kernel<u32, CounterEv> = Kernel::new(0).with_horizon(Time::from_ns(10));
        for i in 0..5 {
            k.schedule_event(Time::from_ns(i * 5), CounterEv::Bump(1));
        }
        k.run();
        assert_eq!(*k.state(), 3); // 0, 5, 10
        assert_eq!(k.pending(), 2);
    }

    #[test]
    fn typed_and_closure_kernels_agree() {
        // The same chain model through both event representations lands
        // on identical state, clock, and executed-event counts.
        let mut typed: Kernel<u32, CounterEv> = Kernel::new(0);
        typed.schedule_event(
            Time::ZERO,
            CounterEv::Chain {
                left: 100,
                gap: Time::from_ns(7),
            },
        );
        typed.run();

        let mut boxed = Kernel::new(0u32);
        fn chain(n: &mut u32, s: &mut Scheduler<u32>) {
            *n += 1;
            if *n < 100 {
                s.schedule_in(Time::from_ns(7), chain);
            }
        }
        boxed.schedule(Time::ZERO, chain);
        boxed.run();

        assert_eq!(typed.state(), boxed.state());
        assert_eq!(typed.now(), boxed.now());
        assert_eq!(typed.executed(), boxed.executed());
    }
}
