//! Conservative-lookahead machinery for running a sharded simulation.
//!
//! A sharded run splits the simulated world into per-node-group
//! sub-kernels that execute on worker threads and synchronize at
//! *lookahead barriers*: between two barriers a shard may safely run
//! ahead on its own clock because no other shard can influence it
//! sooner than the minimum cross-shard interaction latency. This module
//! holds the two shard-agnostic ingredients — the [`Lookahead`] window
//! derivation and the deterministic node [`partition`] — so every
//! driver (the loadgen engine today, future subsystems tomorrow)
//! derives its barriers the same way.
//!
//! The discipline is the classic conservative PDES one: the window is
//! the **minimum** latency over every mechanism through which state can
//! cross a shard boundary (lease ticks, fabric one-way latency, …).
//! A world whose shards cannot interact at all has no such mechanism,
//! and its window is [`Lookahead::Unbounded`]: the shards synchronize
//! once, at the end of the run.

use std::ops::Range;

use crate::time::Time;

/// How far a shard may run past the last barrier before it must
/// synchronize with its peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookahead {
    /// No mechanism lets one shard influence another: shards are fully
    /// independent and synchronize only at the end of the run.
    Unbounded,
    /// Shards may interact, but never sooner than this window after a
    /// barrier; each barrier advances the global horizon by the window.
    Window(Time),
}

impl Lookahead {
    /// Derives the window from every cross-shard interaction mechanism
    /// the caller's world contains: each element is the minimum latency
    /// of one mechanism (`None` when that mechanism is disabled for the
    /// run). The result is the minimum over the armed mechanisms, or
    /// [`Lookahead::Unbounded`] when none is armed.
    ///
    /// A zero-latency mechanism yields `Window(Time::ZERO)` — the
    /// caller must then fall back to sequential execution, since a
    /// zero window admits no safe parallel progress.
    pub fn from_interactions<I>(latencies: I) -> Self
    where
        I: IntoIterator<Item = Option<Time>>,
    {
        match latencies.into_iter().flatten().min() {
            Some(window) => Lookahead::Window(window),
            None => Lookahead::Unbounded,
        }
    }

    /// The barrier window, or `None` when unbounded.
    pub fn window(&self) -> Option<Time> {
        match self {
            Lookahead::Unbounded => None,
            Lookahead::Window(w) => Some(*w),
        }
    }

    /// Whether parallel progress is safe at all: a bounded window of
    /// zero means two shards could interact at the very next instant,
    /// so no shard may run ahead and the caller must stay sequential.
    pub fn admits_parallelism(&self) -> bool {
        !matches!(self, Lookahead::Window(w) if *w == Time::ZERO)
    }
}

/// Splits node ids `0..nodes` into `shards` contiguous, near-even
/// ranges, earlier ranges taking the remainder. The split depends only
/// on `(nodes, shards)` — never on thread count or timing — so a
/// sharded run's work assignment is deterministic by construction.
///
/// `shards` is clamped to `1..=nodes`: asking for more shards than
/// nodes yields one node per shard, and zero shards means one.
///
/// # Panics
///
/// Panics if `nodes` is zero — an empty world cannot be partitioned.
pub fn partition(nodes: u16, shards: usize) -> Vec<Range<u16>> {
    assert!(nodes > 0, "cannot partition an empty node set");
    let shards = shards.clamp(1, nodes as usize) as u16;
    let base = nodes / shards;
    let rem = nodes % shards;
    let mut out = Vec::with_capacity(shards as usize);
    let mut start = 0u16;
    for i in 0..shards {
        let len = base + u16::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, nodes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_is_the_minimum_over_armed_mechanisms() {
        let tick = Time::from_us(50);
        let fabric = Time::from_ns(600);
        assert_eq!(
            Lookahead::from_interactions([Some(tick), Some(fabric)]),
            Lookahead::Window(fabric)
        );
        assert_eq!(
            Lookahead::from_interactions([None, Some(tick)]),
            Lookahead::Window(tick)
        );
        assert_eq!(
            Lookahead::from_interactions([None, None]),
            Lookahead::Unbounded
        );
        assert_eq!(Lookahead::Unbounded.window(), None);
        assert_eq!(Lookahead::Window(tick).window(), Some(tick));
    }

    #[test]
    fn zero_window_rejects_parallelism_and_unbounded_admits_it() {
        assert!(Lookahead::Unbounded.admits_parallelism());
        assert!(Lookahead::Window(Time::from_ns(1)).admits_parallelism());
        assert!(!Lookahead::Window(Time::ZERO).admits_parallelism());
    }

    #[test]
    fn partition_is_contiguous_exhaustive_and_near_even() {
        for nodes in [1u16, 2, 7, 8, 16, 63] {
            for shards in [1usize, 2, 3, 4, 8, 100] {
                let ranges = partition(nodes, shards);
                assert_eq!(ranges.len(), shards.clamp(1, nodes as usize));
                // Contiguous and exhaustive.
                let mut next = 0u16;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, nodes);
                // Near-even: lengths differ by at most one.
                let lens: Vec<u16> = ranges.iter().map(|r| r.end - r.start).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "{nodes} nodes / {shards} shards: {lens:?}");
            }
        }
    }

    #[test]
    fn partition_clamps_degenerate_shard_counts() {
        assert_eq!(partition(4, 0), vec![0..4]);
        assert_eq!(partition(3, 8), vec![0..1, 1..2, 2..3]);
    }
}
