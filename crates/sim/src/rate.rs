//! Rate limiting: the prototype's "throughput caps and inserted delays".
//!
//! The paper (§4.2) slows down relatively fast prototype components with
//! programmable-logic throughput caps so the FPGA system models a faster
//! target. We reproduce that knob as a token bucket: components ask when
//! the next `bytes` may depart and the bucket answers with a start time
//! that never exceeds the configured rate.

use crate::time::Time;

/// A byte-granularity token bucket.
///
/// Tokens refill continuously at `rate_gbps`; a transfer of `n` bytes may
/// start as soon as `n` tokens are available and consumes them. Burst
/// capacity bounds how far the bucket can "save up".
///
/// # Example
///
/// ```
/// use venice_sim::{TokenBucket, Time};
/// let mut tb = TokenBucket::new(8.0, 1000); // 8 Gbps = 1 byte/ns
/// let start = tb.reserve(Time::ZERO, 1000);
/// assert_eq!(start, Time::ZERO); // full burst available immediately
/// let next = tb.reserve(start, 1000);
/// assert_eq!(next.as_ns(), 1000); // must wait for refill
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_gbps: f64,
    burst_bytes: u64,
    /// Token count at time `updated` (fractional bytes).
    tokens: f64,
    updated: Time,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_gbps` is not strictly positive or `burst_bytes` is
    /// zero.
    pub fn new(rate_gbps: f64, burst_bytes: u64) -> Self {
        assert!(rate_gbps > 0.0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        TokenBucket {
            rate_gbps,
            burst_bytes,
            tokens: burst_bytes as f64,
            updated: Time::ZERO,
        }
    }

    /// Nominal rate in Gbps.
    pub fn rate_gbps(&self) -> f64 {
        self.rate_gbps
    }

    fn bytes_per_ps(&self) -> f64 {
        // gbps = 1e9 bits/s = 0.125e9 bytes/s = 0.125e-3 bytes/ps.
        self.rate_gbps * 0.125e-3
    }

    fn refill(&mut self, now: Time) {
        if now > self.updated {
            let dt = (now - self.updated).as_ps() as f64;
            self.tokens = (self.tokens + dt * self.bytes_per_ps()).min(self.burst_bytes as f64);
            self.updated = now;
        }
    }

    /// Tokens currently available at `now`, in bytes.
    pub fn available(&mut self, now: Time) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Reserves `bytes` tokens, returning the earliest time (≥ `now`) the
    /// transfer may start. The tokens are consumed at that instant.
    ///
    /// Transfers larger than the burst size are admitted by letting the
    /// token count go negative (standard leaky-bucket debt), which spaces
    /// successive large transfers at exactly the configured rate.
    pub fn reserve(&mut self, now: Time, bytes: u64) -> Time {
        // A caller may ask about a time earlier than the bucket's debt
        // horizon (e.g. pre-computing injection times); admission can
        // never happen before previously reserved tokens are paid off.
        let now = now.max(self.updated);
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            return now;
        }
        let deficit = bytes as f64 - self.tokens;
        let wait_ps = deficit / self.bytes_per_ps();
        let start = now + Time::from_ps(wait_ps.ceil() as u64);
        // All accumulated + refilled tokens are consumed at `start`.
        self.tokens = 0.0;
        self.updated = start;
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_immediately() {
        let mut tb = TokenBucket::new(1.0, 4096);
        assert_eq!(tb.reserve(Time::ZERO, 4096), Time::ZERO);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // 8 Gbps = 1 byte per ns. Send 10 x 1000B back-to-back: the k-th
        // transfer (k>=1, zero-based) starts at k microseconds... actually
        // after the initial 1000-byte burst, each subsequent transfer waits
        // 1000 ns for refill.
        let mut tb = TokenBucket::new(8.0, 1000);
        let mut now = Time::ZERO;
        let mut starts = Vec::new();
        for _ in 0..5 {
            now = tb.reserve(now, 1000);
            starts.push(now.as_ns());
        }
        assert_eq!(starts, vec![0, 1000, 2000, 3000, 4000]);
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut tb = TokenBucket::new(8.0, 1000);
        tb.reserve(Time::ZERO, 1000);
        // Wait 10 us: bucket refills but caps at 1000 bytes of burst.
        assert!((tb.available(Time::from_us(10)) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn oversized_transfer_waits_for_full_amount() {
        let mut tb = TokenBucket::new(8.0, 1000);
        // 3000-byte transfer with 1000 available: wait 2000 ns for deficit.
        let start = tb.reserve(Time::ZERO, 3000);
        assert_eq!(start.as_ns(), 2000);
        // Next transfer of 1000 must wait another 1000 ns.
        let next = tb.reserve(start, 1000);
        assert_eq!(next.as_ns(), 3000);
    }

    #[test]
    fn average_rate_converges_to_cap() {
        let mut tb = TokenBucket::new(4.0, 512); // 0.5 byte/ns
        let mut now = Time::ZERO;
        let total_bytes = 100 * 256;
        for _ in 0..100 {
            now = tb.reserve(now, 256);
        }
        // Completion of last transfer isn't modeled here; start-time spacing
        // alone should give ~4 Gbps asymptotically.
        let achieved = (total_bytes - 512) as f64 * 8.0 / now.as_secs_f64() / 1e9;
        assert!((achieved - 4.0).abs() < 0.1, "achieved {achieved}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0, 10);
    }
}
