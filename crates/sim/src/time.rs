//! Simulated time.
//!
//! Venice latencies span five orders of magnitude: sub-nanosecond on-chip
//! switch hops up to multi-second workload executions. We represent time as
//! integer **picoseconds** in a `u64`, which covers ~213 days of simulated
//! time — far beyond any experiment in the paper — while keeping exact
//! arithmetic for serialization delays such as "64 bytes at 5 Gbps"
//! (102.4 ns, not representable in integer nanoseconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in (or span of) simulated time, stored in integer picoseconds.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// kernel only ever compares and adds values, so a single type keeps the
/// API small, mirroring `std::time::Duration` usage in practice.
///
/// # Example
///
/// ```
/// use venice_sim::Time;
/// let t = Time::from_us(1) + Time::from_ns(400);
/// assert_eq!(t.as_ns(), 1_400);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The zero instant (simulation start).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000_000)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        Time((s * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Time in whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; clamps at [`Time::ZERO`].
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// The duration needed to move `bytes` across a link of `gbps`
    /// gigabits per second (serialization delay).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    pub fn serialize_bytes(bytes: u64, gbps: f64) -> Time {
        assert!(gbps > 0.0, "bandwidth must be positive, got {gbps}");
        // bits / (gbits/s) = ns; work in ps for precision.
        let ps = (bytes as f64 * 8.0) / gbps * 1_000.0;
        Time(ps.round() as u64)
    }

    /// Duration of `cycles` cycles at `mhz` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive.
    pub fn from_cycles(cycles: u64, mhz: f64) -> Time {
        assert!(mhz > 0.0, "frequency must be positive, got {mhz}");
        let ps = cycles as f64 * 1e6 / mhz;
        Time(ps.round() as u64)
    }

    /// Scales the time by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    #[inline]
    pub fn scale(self, f: f64) -> Time {
        assert!(f.is_finite() && f >= 0.0, "invalid scale factor {f}");
        Time((self.0 as f64 * f).round() as u64)
    }

    /// Ratio of two durations as `f64`; returns 0 when `rhs` is zero.
    pub fn ratio(self, rhs: Time) -> f64 {
        if rhs.0 == 0 {
            0.0
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_ns(7).as_ps(), 7_000);
        assert_eq!(Time::from_us(3).as_ns(), 3_000);
        assert_eq!(Time::from_ms(2).as_us(), 2_000);
        assert_eq!(Time::from_secs(1).as_ms_f64(), 1_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(100);
        let b = Time::from_ns(40);
        assert_eq!(a + b, Time::from_ns(140));
        assert_eq!(a - b, Time::from_ns(60));
        assert_eq!(a * 3, Time::from_ns(300));
        assert_eq!(a / 4, Time::from_ns(25));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
    }

    #[test]
    fn serialization_delay_matches_hand_computation() {
        // 64 bytes at 5 Gbps = 512 bits / 5 Gbps = 102.4 ns.
        let t = Time::serialize_bytes(64, 5.0);
        assert_eq!(t.as_ps(), 102_400);
    }

    #[test]
    fn cycles_at_frequency() {
        // 667 MHz (the prototype's Cortex-A9): 1 cycle = 1499.25 ps.
        let t = Time::from_cycles(1000, 667.0);
        assert_eq!(t.as_ns(), 1_499);
    }

    #[test]
    fn scale_and_ratio() {
        let t = Time::from_ns(200);
        assert_eq!(t.scale(1.5), Time::from_ns(300));
        assert!((t.ratio(Time::from_ns(100)) - 2.0).abs() < 1e-12);
        assert_eq!(t.ratio(Time::ZERO), 0.0);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Time::ZERO.to_string(), "0s");
        assert_eq!(Time::from_ps(12).to_string(), "12ps");
        assert_eq!(Time::from_ns(1).to_string(), "1.000ns");
        assert_eq!(Time::from_us(1).to_string(), "1.000us");
        assert_eq!(Time::from_ms(1).to_string(), "1.000ms");
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2), Time::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ns(6));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Time::from_secs_f64(1e-9), Time::from_ns(1));
        assert_eq!(Time::from_secs_f64(0.5).as_ms_f64(), 500.0);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = Time::from_secs_f64(-1.0);
    }
}
