//! Measurement utilities: counters, latency histograms, throughput meters.
//!
//! The paper reports normalized execution times, bandwidth utilization, and
//! miss rates; these types collect the underlying samples inside the
//! simulator so the figure harness can compute the same summaries.

use crate::time::Time;

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```
/// use venice_sim::Counter;
/// let mut c = Counter::new("packets");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Latency histogram with power-of-two nanosecond buckets plus exact
/// min/max/mean tracking.
///
/// Bucketing is only used for percentile estimates; means are exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>, // bucket i counts samples in [2^i, 2^(i+1)) ns
    count: u64,
    sum: Time,
    min: Time,
    max: Time,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: Time::ZERO,
            min: Time::MAX,
            max: Time::ZERO,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: Time) {
        let ns = sample.as_ns();
        let idx = if ns == 0 { 0 } else { 63 - ns.leading_zeros() as usize };
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum += sample;
        if sample < self.min {
            self.min = sample;
        }
        if sample > self.max {
            self.max = sample;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of samples, or `Time::ZERO` when empty.
    pub fn mean(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<Time> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<Time> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate percentile (0.0–1.0) using bucket upper bounds.
    pub fn percentile(&self, p: f64) -> Option<Time> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Time::from_ns(1 << (i + 1)));
            }
        }
        Some(self.max)
    }

    /// Total of all samples.
    pub fn sum(&self) -> Time {
        self.sum
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Measures achieved throughput: bytes moved over a time window.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    first: Option<Time>,
    last: Time,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at simulated time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.bytes += bytes;
        if at > self.last {
            self.last = at;
        }
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Achieved goodput in gigabits per second over the observation window
    /// `[first_record, end]`. Returns 0 when no data or zero-length window.
    pub fn gbps(&self, end: Time) -> f64 {
        let Some(first) = self.first else { return 0.0 };
        let window = end.saturating_sub(first);
        if window == Time::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64() / 1e9
    }

    /// Utilization fraction against a nominal link rate.
    pub fn utilization(&self, end: Time, link_gbps: f64) -> f64 {
        if link_gbps <= 0.0 {
            return 0.0;
        }
        (self.gbps(end) / link_gbps).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "x=10");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 300] {
            h.record(Time::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Time::from_ns(200));
        assert_eq!(h.min(), Some(Time::from_ns(100)));
        assert_eq!(h.max(), Some(Time::from_ns(300)));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn histogram_percentile_is_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Time::from_ns(i));
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= Time::from_ns(2048));
    }

    #[test]
    fn throughput_matches_hand_computation() {
        let mut m = ThroughputMeter::new();
        m.record(Time::ZERO, 0);
        // 1 GB over 1 s = 8 Gbps.
        m.record(Time::from_secs(1), 1_000_000_000);
        let g = m.gbps(Time::from_secs(1));
        assert!((g - 8.0).abs() < 1e-9, "got {g}");
        assert!((m.utilization(Time::from_secs(1), 10.0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn throughput_empty_is_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.gbps(Time::from_secs(1)), 0.0);
    }
}
