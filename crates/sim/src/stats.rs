//! Measurement utilities: counters, latency histograms, throughput meters.
//!
//! The paper reports normalized execution times, bandwidth utilization, and
//! miss rates; these types collect the underlying samples inside the
//! simulator so the figure harness can compute the same summaries.

use crate::time::Time;

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```
/// use venice_sim::Counter;
/// let mut c = Counter::new("packets");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Latency histogram with power-of-two nanosecond buckets plus exact
/// min/max/mean tracking.
///
/// Bucketing is only used for percentile estimates; means are exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>, // bucket i counts samples in [2^i, 2^(i+1)) ns
    count: u64,
    sum: Time,
    min: Time,
    max: Time,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: Time::ZERO,
            min: Time::MAX,
            max: Time::ZERO,
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, sample: Time) {
        let ns = sample.as_ns();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum += sample;
        if sample < self.min {
            self.min = sample;
        }
        if sample > self.max {
            self.max = sample;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of samples, or `Time::ZERO` when empty.
    pub fn mean(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<Time> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<Time> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate percentile (0.0–1.0) using bucket upper bounds.
    pub fn percentile(&self, p: f64) -> Option<Time> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Time::from_ns(1 << (i + 1)));
            }
        }
        Some(self.max)
    }

    /// Total of all samples.
    pub fn sum(&self) -> Time {
        self.sum
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// HDR-style log-bucketed latency histogram with bounded relative error.
///
/// The original [`Histogram`] uses plain power-of-two buckets, which is
/// fine for the paper's coarse figures but far too lossy for tail-latency
/// reporting (p99 vs p99.9 can land in the same bucket). `LogHistogram`
/// subdivides every power-of-two range into `2^sub_bits` linear
/// sub-buckets, bounding the relative quantile error at `2^-sub_bits`
/// (&lt; 1 % at the default 7 sub-bits) while keeping memory at a few tens
/// of kilobytes. Used by `venice-loadgen` for per-tenant p50/p95/p99/p99.9.
///
/// # Example
///
/// ```
/// use venice_sim::{stats::LogHistogram, Time};
/// let mut h = LogHistogram::new();
/// for us in 1..=1000u64 {
///     h.record(Time::from_us(us));
/// }
/// let p50 = h.quantile(0.50).unwrap();
/// // Within 1% of the exact median (500 us).
/// assert!((p50.as_us_f64() - 500.0).abs() / 500.0 < 0.01 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    sub_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: Time,
    min: Time,
    max: Time,
}

impl LogHistogram {
    /// Default sub-bucket resolution: 2^7 = 128 linear sub-buckets per
    /// power of two, i.e. ≤ 0.79 % relative error.
    pub const DEFAULT_SUB_BITS: u32 = 7;

    /// Creates an empty histogram at the default resolution.
    pub fn new() -> Self {
        Self::with_resolution(Self::DEFAULT_SUB_BITS)
    }

    /// Creates an empty histogram with `2^sub_bits` sub-buckets per
    /// power-of-two range.
    ///
    /// # Panics
    ///
    /// Panics if `sub_bits` is not in `[1, 16]`.
    pub fn with_resolution(sub_bits: u32) -> Self {
        assert!((1..=16).contains(&sub_bits), "sub_bits out of range");
        let blocks = 64 - sub_bits + 1;
        LogHistogram {
            sub_bits,
            buckets: vec![0; (blocks as usize) << sub_bits],
            count: 0,
            sum: Time::ZERO,
            min: Time::MAX,
            max: Time::ZERO,
        }
    }

    /// Number of buckets at this resolution (the exclusive upper bound
    /// of [`bucket_of`](Self::bucket_of)).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index `sample` falls into — the same index
    /// [`record`](Self::record) increments. Exposed so side tables
    /// keyed by latency bucket (e.g. per-bucket stage attribution) can
    /// stay aligned with the histogram's own binning.
    pub fn bucket_of(&self, sample: Time) -> usize {
        self.index_of(sample.as_ps())
    }

    /// Largest value mapping to bucket `idx`, as a [`Time`] — the edge
    /// [`quantile`](Self::quantile) reports before clamping to the max.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.bucket_len()`.
    pub fn bucket_upper_edge(&self, idx: usize) -> Time {
        assert!(idx < self.buckets.len(), "bucket index out of range");
        Time::from_ps(self.upper_edge(idx))
    }

    /// Bucket index for a raw picosecond value.
    fn index_of(&self, ps: u64) -> usize {
        let sub = self.sub_bits;
        if ps < (1 << sub) {
            return ps as usize;
        }
        let msb = 63 - ps.leading_zeros();
        let block = (msb - sub + 1) as usize;
        let sub_idx = ((ps >> (msb - sub)) & ((1 << sub) - 1)) as usize;
        (block << sub) | sub_idx
    }

    /// Largest value mapping to bucket `idx` (the reported quantile edge).
    fn upper_edge(&self, idx: usize) -> u64 {
        let sub = self.sub_bits;
        let block = idx >> sub;
        if block == 0 {
            return idx as u64;
        }
        let msb = block as u32 + sub - 1;
        let sub_idx = (idx & ((1 << sub) - 1)) as u64;
        let width = 1u64 << (msb - sub);
        // The topmost bucket's exclusive upper bound is 2^64; saturate
        // instead of overflowing (callers clamp to the recorded max).
        (1u64 << msb)
            .checked_add((sub_idx + 1) * width)
            .map(|upper| upper - 1)
            .unwrap_or(u64::MAX)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: Time) {
        let idx = self.index_of(sample.as_ps());
        self.buckets[idx] += 1;
        self.count += 1;
        // Saturate the running sum: extreme samples must not poison the
        // whole histogram (the mean degrades, quantiles stay exact).
        self.sum = self.sum.checked_add(sample).unwrap_or(Time::MAX);
        if sample < self.min {
            self.min = sample;
        }
        if sample > self.max {
            self.max = sample;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean, or [`Time::ZERO`] when empty.
    pub fn mean(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<Time> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<Time> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// The result is the upper edge of the bucket holding the rank-`⌈qN⌉`
    /// sample, clamped to the recorded maximum: it is never below the
    /// exact quantile and overshoots it by at most a `2^-sub_bits`
    /// fraction.
    pub fn quantile(&self, q: f64) -> Option<Time> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Time::from_ps(self.upper_edge(i)).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience tail summary: (p50, p95, p99, p99.9).
    pub fn tail(&self) -> Option<(Time, Time, Time, Time)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
            self.quantile(0.999)?,
        ))
    }

    /// Folds `other` into `self` (used to merge per-shard histograms).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different resolutions.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "resolution mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.checked_add(other.sum).unwrap_or(Time::MAX);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Measures achieved throughput: bytes moved over a time window.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    first: Option<Time>,
    last: Time,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at simulated time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.bytes += bytes;
        if at > self.last {
            self.last = at;
        }
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Achieved goodput in gigabits per second over the observation window
    /// `[first_record, end]`. Returns 0 when no data or zero-length window.
    pub fn gbps(&self, end: Time) -> f64 {
        let Some(first) = self.first else { return 0.0 };
        let window = end.saturating_sub(first);
        if window == Time::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64() / 1e9
    }

    /// Utilization fraction against a nominal link rate.
    pub fn utilization(&self, end: Time, link_gbps: f64) -> f64 {
        if link_gbps <= 0.0 {
            return 0.0;
        }
        (self.gbps(end) / link_gbps).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "x=10");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 300] {
            h.record(Time::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Time::from_ns(200));
        assert_eq!(h.min(), Some(Time::from_ns(100)));
        assert_eq!(h.max(), Some(Time::from_ns(300)));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn histogram_percentile_is_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Time::from_ns(i));
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= Time::from_ns(2048));
    }

    #[test]
    fn log_histogram_is_exact_below_subbucket_range() {
        let mut h = LogHistogram::with_resolution(7);
        for ps in 0..100u64 {
            h.record(Time::from_ps(ps));
        }
        // Values below 2^7 ps land in exact unit buckets.
        assert_eq!(h.quantile(0.5), Some(Time::from_ps(49)));
        assert_eq!(h.quantile(1.0), Some(Time::from_ps(99)));
        assert_eq!(h.min(), Some(Time::ZERO));
    }

    #[test]
    fn log_histogram_bounds_relative_error() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<u64> = (0..5000u64)
            .map(|i| (i * 2_654_435_761) % 10_000_000 + 1)
            .collect();
        for &s in &samples {
            h.record(Time::from_ns(s));
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((samples.len() as f64) * q).ceil().max(1.0) as usize - 1;
            let exact = Time::from_ns(samples[rank]);
            let est = h.quantile(q).unwrap();
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            let rel = (est.as_ps() - exact.as_ps()) as f64 / exact.as_ps() as f64;
            assert!(rel <= 1.0 / 128.0 + 1e-9, "q={q}: rel err {rel}");
        }
    }

    #[test]
    fn log_histogram_handles_extreme_samples() {
        // Samples at the top of the u64 range must not overflow the
        // bucket-edge arithmetic.
        let mut h = LogHistogram::new();
        h.record(Time::MAX);
        h.record(Time::from_ps(u64::MAX - 1));
        // Both land in the topmost bucket; the edge saturates and the
        // clamp to the recorded max keeps the estimate exact.
        assert_eq!(h.quantile(1.0), Some(Time::MAX));
        assert_eq!(h.quantile(0.01), Some(Time::MAX));
        assert_eq!(h.max(), Some(Time::MAX));
    }

    #[test]
    fn log_histogram_bucket_api_matches_recording() {
        let mut h = LogHistogram::new();
        for us in [1u64, 17, 900, 4096] {
            h.record(Time::from_us(us));
        }
        // Every recorded sample sits at or below its bucket's upper edge,
        // and the edge maps back to the same bucket (edges are members).
        for us in [1u64, 17, 900, 4096] {
            let t = Time::from_us(us);
            let idx = h.bucket_of(t);
            assert!(idx < h.bucket_len());
            let edge = h.bucket_upper_edge(idx);
            assert!(edge >= t);
            assert_eq!(h.bucket_of(edge), idx);
        }
        // A quantile's bucket is reachable through the public index, so
        // side tables binned by `bucket_of` align with quantile lookups.
        let p99 = h.quantile(0.99).unwrap();
        assert!(h.bucket_of(p99) < h.bucket_len());
    }

    #[test]
    fn log_histogram_merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 1..=1000u64 {
            let t = Time::from_us(i * 7 % 997 + 1);
            if i % 2 == 0 {
                a.record(t);
            } else {
                b.record(t);
            }
            whole.record(t);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn log_histogram_empty_and_tail() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        assert!(h.tail().is_none());
        let mut h = LogHistogram::new();
        h.record(Time::from_ms(3));
        let (p50, p95, p99, p999) = h.tail().unwrap();
        assert_eq!(p50, Time::from_ms(3));
        assert_eq!(p999, Time::from_ms(3));
        assert!(p95 <= p99);
    }

    #[test]
    fn throughput_matches_hand_computation() {
        let mut m = ThroughputMeter::new();
        m.record(Time::ZERO, 0);
        // 1 GB over 1 s = 8 Gbps.
        m.record(Time::from_secs(1), 1_000_000_000);
        let g = m.gbps(Time::from_secs(1));
        assert!((g - 8.0).abs() < 1e-9, "got {g}");
        assert!((m.utilization(Time::from_secs(1), 10.0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn throughput_empty_is_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.gbps(Time::from_secs(1)), 0.0);
    }
}
