//! Deterministic randomness for experiments.
//!
//! Every stochastic element of the reproduction (workload key draws, CRC
//! error injection, R-MAT edge generation) pulls from a [`SimRng`] derived
//! from an experiment-level seed, so figures regenerate identically across
//! runs and machines.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic simulation RNG (xoshiro-class generator seeded from a
/// `u64`, via `rand`'s `SmallRng`).
///
/// # Example
///
/// ```
/// use venice_sim::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(rand::rngs::SmallRng);

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn seed(seed: u64) -> Self {
        SimRng(rand::rngs::SmallRng::seed_from_u64(seed))
    }

    /// Derives an independent child generator; used to give each node or
    /// workload its own stream without correlating draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // SplitMix-style scramble of (next, salt) for decorrelation.
        let mut z = self.0.next_u64() ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SimRng::seed(z ^ (z >> 31))
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.0.gen_range(range)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.0.gen_bool(p)
    }

    /// Uniform draw in [0, 1).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Samples an index from cumulative weights (exponential/zipf helpers
    /// live in `venice-workloads`; this is the generic building block).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    #[inline]
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        self.weighted_index_with_total(weights, total)
    }

    /// As [`weighted_index`](Self::weighted_index) with the weights' sum
    /// precomputed by the caller — bit-identical draws (the sum is the
    /// same value the per-call path would compute), minus the per-draw
    /// summation on hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or `total` is not positive.
    #[inline]
    pub fn weighted_index_with_total(&mut self, weights: &[f64], total: f64) -> usize {
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut root1 = SimRng::seed(1);
        let mut root2 = SimRng::seed(1);
        let mut c1 = root1.fork(10);
        let mut c2 = root2.fork(10);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = SimRng::seed(1).fork(11);
        assert_ne!(SimRng::seed(1).fork(10).next_u64(), d.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SimRng::seed(9);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = SimRng::seed(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        // Rough proportion check: index 2 should get ~70%.
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.05);
    }

    #[test]
    #[should_panic]
    fn weighted_index_rejects_empty() {
        SimRng::seed(0).weighted_index(&[]);
    }
}
