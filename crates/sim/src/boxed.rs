//! The original boxed-closure event core, preserved as the measured
//! performance baseline.
//!
//! This module is the PR 1–3 kernel and queue, frozen: events are
//! heap-allocated `Box<dyn FnOnce>` closures and the queue is a
//! `BinaryHeap` whose sifts shuffle fat `(Time, seq, Box)` entries. The
//! typed event core in [`crate::kernel`]/[`crate::queue`] replaced it on
//! every hot path, but it stays in-tree for two jobs:
//!
//! * **Perf baseline.** The `throughput` bench bin drives the legacy
//!   loadgen engine on this kernel and records its wall time next to the
//!   typed core's in `BENCH_perf.json`, so the speedup claim is measured
//!   against the real predecessor, not a strawman.
//! * **Differential oracle.** The typed engine must produce bit-identical
//!   traces and reports to the engine running on this module (property
//!   tested and gated in CI); any behavioral drift in the rewrite shows
//!   up as a diff against code that has not changed.
//!
//! Do not build new simulations on this module — implement
//! [`crate::SimEvent`] instead.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A scheduled closure event.
pub type Event<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

/// Clock plus pending-event queue; handed to every event so it can
/// schedule follow-ups.
pub struct Scheduler<S> {
    now: Time,
    queue: EventQueue<Event<S>>,
    executed: u64,
    /// Hard cap on executed events; guards against runaway models.
    event_limit: u64,
    /// Stop the run loop once the clock passes this point.
    horizon: Time,
}

impl<S> Scheduler<S> {
    fn new() -> Self {
        Scheduler {
            now: Time::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            event_limit: u64::MAX,
            horizon: Time::MAX,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulated time overflow");
        self.queue.push(at, Box::new(f));
    }

    /// Schedules `f` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events may not run
    /// in the past).
    pub fn schedule_at<F>(&mut self, at: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, Box::new(f));
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<S> std::fmt::Debug for Scheduler<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("boxed::Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

/// The boxed-closure discrete-event simulation: user state plus the
/// event loop.
///
/// # Example
///
/// ```
/// use venice_sim::boxed::Kernel;
/// use venice_sim::Time;
/// let mut k = Kernel::new(0u32);
/// k.schedule(Time::from_ns(1), |n: &mut u32, _| *n += 1);
/// k.run();
/// assert_eq!(*k.state(), 1);
/// ```
pub struct Kernel<S> {
    state: S,
    sched: Scheduler<S>,
}

impl<S> Kernel<S> {
    /// Creates a kernel at time zero over `state`.
    pub fn new(state: S) -> Self {
        Kernel {
            state,
            sched: Scheduler::new(),
        }
    }

    /// Caps the number of events a `run` may execute. Exceeding the cap
    /// panics, which turns accidental event storms into loud failures.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.sched.event_limit = limit;
        self
    }

    /// Stops the run loop once the clock would pass `horizon`; pending
    /// later events are left in the queue.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.sched.horizon = horizon;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the kernel, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        self.sched.schedule_in(delay, f);
    }

    /// Runs until the queue is empty (or the horizon/event limit is hit).
    /// Returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.sched.now
    }

    /// Executes a single event. Returns `false` when the queue is empty or
    /// the next event lies beyond the horizon.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.peek_time() {
            None => false,
            Some(at) if at > self.sched.horizon => false,
            Some(_) => {
                let (at, event) = self.sched.queue.pop().expect("peeked entry vanished");
                self.sched.now = at;
                self.sched.executed += 1;
                assert!(
                    self.sched.executed <= self.sched.event_limit,
                    "event limit exceeded at {at}: runaway simulation?"
                );
                event(&mut self.state, &mut self.sched);
                true
            }
        }
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.sched.executed()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Kernel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("boxed::Kernel")
            .field("now", &self.sched.now)
            .field("pending", &self.sched.pending())
            .field("state", &self.state)
            .finish()
    }
}

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original fat-entry event queue: a `BinaryHeap` whose entries carry
/// the event payload inline, paired with a sequence number for insertion
/// stability.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Inserts `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, breaking timestamp ties in
    /// insertion order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("boxed::EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order_with_stable_ties() {
        let mut k = Kernel::new(Vec::new());
        k.schedule(Time::from_ns(30), |v: &mut Vec<u32>, _| v.push(3));
        k.schedule(Time::from_ns(10), |v: &mut Vec<u32>, _| v.push(1));
        k.schedule(Time::from_ns(10), |v: &mut Vec<u32>, _| v.push(2));
        let end = k.run();
        assert_eq!(k.state(), &vec![1, 2, 3]);
        assert_eq!(end, Time::from_ns(30));
        assert_eq!(k.executed(), 3);
    }

    #[test]
    fn queue_ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaways() {
        let mut k = Kernel::new(()).with_event_limit(100);
        fn forever(_: &mut (), s: &mut Scheduler<()>) {
            s.schedule_in(Time::from_ns(1), forever);
        }
        k.schedule(Time::ZERO, forever);
        k.run();
    }
}
