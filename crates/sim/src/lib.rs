#![deny(missing_docs)]

//! Deterministic discrete-event simulation kernel for the Venice
//! reproduction.
//!
//! The Venice paper evaluates its architecture on an 8-node FPGA prototype.
//! We do not have that hardware, so every experiment in this repository runs
//! on top of this crate: a small, deterministic discrete-event simulator
//! (DES) with explicit simulated time, a stable event queue, seeded
//! randomness, and the measurement utilities (counters, histograms,
//! throughput meters, rate limiters) the evaluation harness needs.
//!
//! Events come in two flavors sharing one loop: **typed events** — a
//! plain enum implementing [`SimEvent`], scheduled by value with zero
//! heap allocation (the hot path; see [`kernel`]) — and the original
//! **boxed closures**, kept as a thin compatibility layer (the default
//! `Kernel<S>` below). The pre-rewrite closure core survives unchanged
//! in [`boxed`] as the measured perf baseline and differential-testing
//! oracle.
//!
//! # Example
//!
//! ```
//! use venice_sim::{Kernel, Time};
//!
//! // State threaded through every event.
//! struct World { pings: u32 }
//!
//! let mut kernel = Kernel::new(World { pings: 0 });
//! kernel.schedule(Time::from_us(5), |w: &mut World, s| {
//!     w.pings += 1;
//!     // Events may schedule further events.
//!     s.schedule_in(Time::from_us(5), |w: &mut World, _| w.pings += 1);
//! });
//! kernel.run();
//! assert_eq!(kernel.state().pings, 2);
//! assert_eq!(kernel.now(), Time::from_us(10));
//! ```

pub mod boxed;
pub mod kernel;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod timeline;

pub use kernel::{ClosureEvent, Kernel, Scheduler, SimEvent};
pub use queue::{EventQueue, QueueStats};
pub use rate::TokenBucket;
pub use rng::SimRng;
pub use shard::{partition, Lookahead};
pub use stats::{Counter, Histogram, LogHistogram, ThroughputMeter};
pub use time::Time;
pub use timeline::Timeline;
