//! Time-ordered event timelines.
//!
//! A [`Timeline`] is an append-only record of `(Time, E)` pairs whose
//! timestamps never decrease — the shape every control-loop audit trail in
//! the workspace shares (lease borrow/release decisions, link flaps,
//! policy changes). Recording through `Timeline` instead of a bare `Vec`
//! buys two things: the monotonicity invariant is enforced at the
//! recording site, and same-seed replays can be compared timeline-to-
//! timeline with plain `==`.

use crate::time::Time;

/// An append-only, time-ordered sequence of events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline<E> {
    events: Vec<(Time, E)>,
}

impl<E> Default for Timeline<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Timeline<E> {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline { events: Vec::new() }
    }

    /// Appends `event` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last recorded timestamp —
    /// timelines record causally ordered histories, not arbitrary logs.
    pub fn record(&mut self, at: Time, event: E) {
        if let Some((last, _)) = self.events.last() {
            assert!(
                at >= *last,
                "timeline must be recorded in time order: {at} after {last}"
            );
        }
        self.events.push((at, event));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events in time order.
    pub fn events(&self) -> &[(Time, E)] {
        &self.events
    }

    /// The most recent entry.
    pub fn last(&self) -> Option<&(Time, E)> {
        self.events.last()
    }

    /// Iterates over `(time, event)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = &(Time, E)> {
        self.events.iter()
    }

    /// The events recorded in the half-open interval `[from, to)`, as a
    /// contiguous slice (binary search over the time-ordered record):
    /// "what happened during this burst?" without scanning the whole
    /// run.
    ///
    /// Boundary semantics: events at exactly `from` are **included**,
    /// events at exactly `to` are **excluded**, so adjacent windows
    /// `[a, b)` and `[b, c)` partition the record with no overlap and
    /// no gap. A degenerate window (`from == to`) or a reversed one
    /// (`from > to`) selects nothing and returns the empty slice.
    pub fn window(&self, from: Time, to: Time) -> &[(Time, E)] {
        let lo = self.events.partition_point(|(t, _)| *t < from);
        let hi = self.events.partition_point(|(t, _)| *t < to);
        // A reversed range would make lo > hi and panic on the slice.
        &self.events[lo..hi.max(lo)]
    }

    /// Consumes the timeline, returning the ordered event vector.
    pub fn into_events(self) -> Vec<(Time, E)> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_compares() {
        let mut a = Timeline::new();
        a.record(Time::from_us(1), "grow");
        a.record(Time::from_us(1), "grow"); // equal timestamps allowed
        a.record(Time::from_us(5), "shrink");
        let mut b = Timeline::new();
        b.record(Time::from_us(1), "grow");
        b.record(Time::from_us(1), "grow");
        b.record(Time::from_us(5), "shrink");
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.last(), Some(&(Time::from_us(5), "shrink")));
        assert_eq!(a.iter().count(), 3);
        assert_eq!(a.into_events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order_records() {
        let mut t = Timeline::new();
        t.record(Time::from_us(5), 1u32);
        t.record(Time::from_us(4), 2u32);
    }

    #[test]
    fn window_slices_by_time() {
        let mut t = Timeline::new();
        for us in [1u64, 1, 3, 5, 8] {
            t.record(Time::from_us(us), us);
        }
        assert_eq!(t.window(Time::ZERO, Time::from_us(100)).len(), 5);
        // Half-open: [1, 5) takes both 1s and the 3, not the 5.
        let w = t.window(Time::from_us(1), Time::from_us(5));
        assert_eq!(w.iter().map(|&(_, e)| e).collect::<Vec<_>>(), vec![1, 1, 3]);
        assert!(t.window(Time::from_us(6), Time::from_us(8)).is_empty());
        let empty: Timeline<u8> = Timeline::new();
        assert!(empty.window(Time::ZERO, Time::from_us(9)).is_empty());
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let mut t = Timeline::new();
        for us in [2u64, 4, 4, 6] {
            t.record(Time::from_us(us), us);
        }
        // `from` inclusive, `to` exclusive: [4, 6) takes both 4s only.
        let w = t.window(Time::from_us(4), Time::from_us(6));
        assert_eq!(w.iter().map(|&(_, e)| e).collect::<Vec<_>>(), vec![4, 4]);
        // Adjacent windows partition the record: no overlap, no gap.
        let a = t.window(Time::from_us(2), Time::from_us(4)).len();
        let b = t.window(Time::from_us(4), Time::from_us(6)).len();
        let c = t.window(Time::from_us(6), Time::from_us(7)).len();
        assert_eq!(a + b + c, t.len());
    }

    #[test]
    fn degenerate_and_reversed_windows_are_empty() {
        let mut t = Timeline::new();
        for us in [1u64, 3, 5] {
            t.record(Time::from_us(us), us);
        }
        // Empty window: from == to selects nothing, even on a timestamp.
        assert!(t.window(Time::from_us(3), Time::from_us(3)).is_empty());
        // Reversed window: from > to must return empty, not panic.
        assert!(t.window(Time::from_us(5), Time::from_us(1)).is_empty());
        assert!(t.window(Time::from_us(9), Time::from_us(0)).is_empty());
    }

    #[test]
    fn empty_timeline_is_empty() {
        let t: Timeline<u8> = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.last(), None);
    }
}
