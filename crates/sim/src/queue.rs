//! Stable priority queue of timestamped events.
//!
//! `std::collections::BinaryHeap` is not stable for equal keys, but a
//! deterministic simulator must pop same-timestamp events in insertion
//! order — otherwise two runs with the same seed can diverge. We pair each
//! entry with a monotonically increasing sequence number to break ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, insertion-stable event queue.
///
/// # Example
///
/// ```
/// use venice_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(10), "b");
/// q.push(Time::from_ns(5), "a");
/// q.push(Time::from_ns(10), "c");
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(10), "b")));
/// assert_eq!(q.pop(), Some((Time::from_ns(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Inserts `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, breaking timestamp ties in
    /// insertion order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(5), ());
        q.push(Time::from_ns(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(10), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Time::from_ns(10), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
