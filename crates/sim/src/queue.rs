//! Indexed, insertion-stable priority queue of timestamped events.
//!
//! Four representation choices keep the hot path allocation-free and
//! cache-friendly:
//!
//! * **Stability.** `std::collections::BinaryHeap` is not stable for
//!   equal keys, but a deterministic simulator must pop same-timestamp
//!   events in insertion order — otherwise two runs with the same seed
//!   can diverge. Every entry carries a monotonically increasing
//!   sequence number that breaks ties, making `(at, seq)` a *total*
//!   order: any correct heap pops the exact same sequence.
//! * **Indexing.** Events live in a slab (a `Vec` with a LIFO free
//!   list) and never move after insertion; the heap itself is an
//!   implicit **4-ary heap of small fixed-size keys**. Sifts shuffle
//!   keys instead of fat event payloads, and freed slots are reused so
//!   a steady-state simulation stops allocating entirely.
//! * **Packed comparisons.** The `(at, seq)` pair is packed into one
//!   `u128` (`at` picoseconds in the high half, `seq` in the low), so a
//!   sift comparison is a single integer compare, and the sift-down
//!   picks the minimum of a full 4-child group with a pairwise
//!   min-tree (three data-independent compares) instead of a serial
//!   dependent scan. Measured on the loadgen storm's queue depths this
//!   is what makes the 4-ary shape actually pay: the naive serial scan
//!   was slower than a binary `BinaryHeap`, the pairwise variant is
//!   ~25% faster.
//! * **A near buffer.** The soonest few entries live outside the heap
//!   in a tiny insertion-sorted buffer, so short-horizon event chains
//!   (open-loop arrivals, sub-gap completions) circulate without ever
//!   paying a sift — see the block comment on the struct.
//!
//! The queue also tracks its high-water mark ([`EventQueue::peak_len`])
//! so a benchmark can report peak event-queue depth without sampling.

use crate::time::Time;

/// Heap arity: each node has up to four children, selected pairwise.
const ARITY: usize = 4;

/// Everything a sift comparison or a pop needs, kept small so heap
/// operations never touch the event slab.
#[derive(Clone, Copy)]
struct Key {
    /// `(at_ps << 64) | seq`: one compare orders by time, then
    /// insertion.
    packed: u128,
    /// Index of the event in the slab.
    slot: u32,
}

impl Key {
    #[inline]
    fn pack(at: Time, seq: u64) -> u128 {
        ((at.as_ps() as u128) << 64) | seq as u128
    }

    #[inline]
    fn at(&self) -> Time {
        Time::from_ps((self.packed >> 64) as u64)
    }
}

/// Capacity of the near buffer: big enough to absorb the engine's
/// "next few microseconds" of traffic (an arrival plus the short
/// completions racing it), small enough that an insertion shift is a
/// single cache line's worth of moves.
const NEAR_CAP: usize = 16;

/// Passive work counters of one [`EventQueue`], exposed for telemetry.
///
/// These are cheap whole-operation counters (one increment per push or
/// pop, the same cost class as the existing peak-depth tracking), **not**
/// per-sift-step instrumentation — the queue's hot loops are untouched.
/// They answer the profile questions the near-buffer design raises: how
/// much traffic circulates sift-free through the buffer versus paying a
/// real heap sift, and how often the buffer spills.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Pushes absorbed by the near buffer (no heap sift on entry).
    pub near_hits: u64,
    /// Pushes that went straight into the heap (one sift-up each).
    pub heap_pushes: u64,
    /// Near-buffer overflows: the buffer's largest entry was spilled
    /// into the heap (one sift-up each, on top of `heap_pushes`).
    pub near_spills: u64,
    /// Pops served from the near buffer (no sift).
    pub near_pops: u64,
    /// Pops served from the heap (one sift-down each).
    pub heap_pops: u64,
}

impl QueueStats {
    /// Total sift operations performed (heap pushes + spills + heap
    /// pops) — the work the near buffer exists to avoid.
    pub fn sifts(&self) -> u64 {
        self.heap_pushes + self.near_spills + self.heap_pops
    }

    /// Total pops served.
    pub fn pops(&self) -> u64 {
        self.near_pops + self.heap_pops
    }

    /// Total pushes accepted (near-buffer entries + direct heap
    /// entries). Equal to [`pops`](Self::pops) once a queue drains.
    pub fn pushes(&self) -> u64 {
        self.near_hits + self.heap_pushes
    }

    /// Folds another queue's counters into this one, field by field.
    ///
    /// This is how a sharded run reports queue traffic: each sub-kernel
    /// owns a private [`EventQueue`], and the per-shard counters are
    /// plain sums, so merging them preserves every conservation law the
    /// single-queue counters satisfy (`pushes == pops` on drained
    /// queues, `near_spills <= near_hits`). The merge is commutative
    /// and associative — the merged totals cannot depend on shard
    /// count or merge order.
    pub fn absorb(&mut self, other: QueueStats) {
        self.near_hits += other.near_hits;
        self.heap_pushes += other.heap_pushes;
        self.near_spills += other.near_spills;
        self.near_pops += other.near_pops;
        self.heap_pops += other.heap_pops;
    }
}

/// A time-ordered, insertion-stable event queue.
///
/// # Example
///
/// ```
/// use venice_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(10), "b");
/// q.push(Time::from_ns(5), "a");
/// q.push(Time::from_ns(10), "c");
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(10), "b")));
/// assert_eq!(q.pop(), Some((Time::from_ns(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// The soonest few entries, kept sorted (descending, minimum last)
    /// outside the heap — see below.
    near: Vec<(Key, E)>,
    /// Implicit 4-ary min-heap of keys (root at index 0).
    heap: Vec<Key>,
    /// Event storage; keys point into this and events never move.
    slab: Vec<Option<E>>,
    /// Freed slab indices, reused LIFO.
    free: Vec<u32>,
    next_seq: u64,
    peak: usize,
    stats: QueueStats,
}

// # The near buffer
//
// `near` is a tiny insertion-sorted buffer holding up to [`NEAR_CAP`]
// entries; a push that beats the buffer's largest key slots in with a
// short shift (spilling the largest into the heap if full), and a pop
// takes the buffer's minimum or the heap root, whichever is smaller.
// Correctness is immediate — every comparison uses the same total-order
// packed key, so the pop sequence is identical to a plain heap's — but
// the work changes shape: event chains that schedule into the next few
// microseconds (the loadgen arrival process, and short service
// completions racing it) circulate entirely through the buffer, and the
// full sift-down a plain heap would run on every such pop disappears.
// Only far-future events (long service tails, lease flows) pay heap
// sifts, and those are a minority of the traffic.

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: Vec::with_capacity(NEAR_CAP + 1),
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            peak: 0,
            stats: QueueStats::default(),
        }
    }

    /// Inserts `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the queue would exceed `u32::MAX - 1` pending events.
    pub fn push(&mut self, at: Time, event: E) {
        let packed = Key::pack(at, self.next_seq);
        self.next_seq += 1;
        let key = Key {
            packed,
            slot: u32::MAX,
        };
        // Only an event that beats the buffer's current maximum may
        // enter it (or any event while it is empty): the buffer
        // converges on the genuinely-soonest entries instead of echoing
        // far-future completions through an insert-then-spill cycle.
        if self.near.is_empty() || packed < self.near[0].0.packed {
            // Into the sorted buffer (descending; minimum at the end).
            let pos = self.near.partition_point(|(k, _)| k.packed > packed);
            self.near.insert(pos, (key, event));
            self.stats.near_hits += 1;
            if self.near.len() > NEAR_CAP {
                // Spill the buffer's largest into the heap.
                let (k, e) = self.near.remove(0);
                self.heap_push(k.packed, e);
                self.stats.near_spills += 1;
            }
        } else {
            self.heap_push(packed, event);
            self.stats.heap_pushes += 1;
        }
        let pending = self.heap.len() + self.near.len();
        if pending > self.peak {
            self.peak = pending;
        }
    }

    /// Pushes an entry into the heap proper (slab + sift).
    fn heap_push(&mut self, packed: u128, event: E) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event queue slab overflow");
                self.slab.push(Some(event));
                slot
            }
        };
        self.heap.push(Key { packed, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, breaking timestamp ties in
    /// insertion order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match (self.near.last(), self.heap.first()) {
            (Some((nk, _)), Some(root)) if root.packed < nk.packed => {
                self.stats.heap_pops += 1;
                self.heap_pop()
            }
            (Some(_), _) => {
                let (key, event) = self.near.pop().expect("checked occupied");
                self.stats.near_pops += 1;
                Some((key.at(), event))
            }
            (None, Some(_)) => {
                self.stats.heap_pops += 1;
                self.heap_pop()
            }
            (None, None) => None,
        }
    }

    /// Pops the heap's root entry.
    fn heap_pop(&mut self) -> Option<(Time, E)> {
        let root = *self.heap.first()?;
        let last = self.heap.pop().expect("peeked entry vanished");
        if !self.heap.is_empty() {
            self.sift_down_from_root(last);
        }
        let event = self.slab[root.slot as usize]
            .take()
            .expect("heap key points at a free slot");
        self.free.push(root.slot);
        Some((root.at(), event))
    }

    /// The packed key of the earliest entry.
    #[inline]
    fn min_packed(&self) -> Option<u128> {
        match (self.near.last(), self.heap.first()) {
            (Some((nk, _)), Some(root)) => Some(nk.packed.min(root.packed)),
            (Some((nk, _)), None) => Some(nk.packed),
            (None, Some(root)) => Some(root.packed),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest event **iff** its timestamp does
    /// not exceed `horizon`. One key access serves both the horizon
    /// check and the pop — the kernel's hot loop, fused.
    pub fn pop_at_or_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        if (self.min_packed()? >> 64) as u64 > horizon.as_ps() {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.min_packed()
            .map(|packed| Time::from_ps((packed >> 64) as u64))
    }

    /// The `(earliest, latest)` timestamps among pending events, or
    /// `None` when empty.
    ///
    /// Every key already packs its fire time in the high 64 bits (the
    /// heap orders by it), so the span costs one scan of the key arrays
    /// and never touches the event slab — the lookahead horizon a
    /// profiler needs ("how far into the simulated future has the run
    /// committed work") without instrumenting push/pop.
    pub fn pending_time_span(&self) -> Option<(Time, Time)> {
        let min = self.min_packed()?;
        // The near buffer is sorted descending, so its maximum is the
        // first entry; the heap's maximum can sit in any leaf.
        let near_max = self.near.first().map(|(k, _)| k.packed);
        let heap_max = self.heap.iter().map(|k| k.packed).max();
        let max = near_max.max(heap_max).expect("non-empty queue has a max");
        Some((
            Time::from_ps((min >> 64) as u64),
            Time::from_ps((max >> 64) as u64),
        ))
    }

    /// Timestamps of all pending events, in no particular order. Visits
    /// the packed keys only (the event payloads stay untouched); the
    /// caller sorts or folds as needed.
    pub fn pending_times(&self) -> impl Iterator<Item = Time> + '_ {
        self.near
            .iter()
            .map(|(k, _)| k)
            .chain(self.heap.iter())
            .map(|k| k.at())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.near.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.heap.is_empty()
    }

    /// High-water mark of [`len`](Self::len) over the queue's lifetime
    /// (peak event-queue depth; not reset by [`clear`](Self::clear)).
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Work counters accumulated over the queue's lifetime (near-buffer
    /// hits, heap sifts, spills; not reset by [`clear`](Self::clear)).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Live slab occupancy as `(live, capacity)`: events currently
    /// resident in the heap slab, and the slab's high-water footprint
    /// (allocated entries, free or live).
    pub fn slab_occupancy(&self) -> (usize, usize) {
        (self.slab.len() - self.free.len(), self.slab.len())
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.near.clear();
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
    }

    /// Restores the heap property upward from `i` after a push.
    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let key = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key.packed < self.heap[parent].packed {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = key;
    }

    /// Re-sinks `key` from the root after a pop (hole technique: the
    /// displaced key is written exactly once, at its final position).
    /// Full 4-child groups — the overwhelmingly common case away from
    /// the heap's last level — pick their minimum with a pairwise
    /// min-tree of three data-independent compares.
    #[inline]
    fn sift_down_from_root(&mut self, key: Key) {
        let len = self.heap.len();
        let mut i = 0usize;
        loop {
            let first = i * ARITY + 1;
            if first + ARITY <= len {
                let c = &self.heap[first..first + ARITY];
                let (a, ka) = if c[0].packed < c[1].packed {
                    (first, c[0].packed)
                } else {
                    (first + 1, c[1].packed)
                };
                let (b, kb) = if c[2].packed < c[3].packed {
                    (first + 2, c[2].packed)
                } else {
                    (first + 3, c[3].packed)
                };
                let (best, best_k) = if ka < kb { (a, ka) } else { (b, kb) };
                if best_k < key.packed {
                    self.heap[i] = self.heap[best];
                    i = best;
                    continue;
                }
                break;
            }
            if first >= len {
                break;
            }
            // Partial last group: serial scan over what exists.
            let mut best = first;
            let mut best_k = self.heap[first].packed;
            for child in first + 1..len {
                let k = self.heap[child].packed;
                if k < best_k {
                    best = child;
                    best_k = k;
                }
            }
            if best_k < key.packed {
                self.heap[i] = self.heap[best];
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = key;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("peak", &self.peak)
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(5), ());
        q.push(Time::from_ns(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(10), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Time::from_ns(10), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.push(Time::from_ns(round * 100 + i), round * 8 + i);
            }
            for i in 0..8u64 {
                assert_eq!(q.pop().unwrap().1, round * 8 + i);
            }
        }
        // Steady-state churn never grows the slab past its high-water
        // occupancy.
        assert!(q.slab.len() <= 8, "slab grew to {}", q.slab.len());
        assert_eq!(q.peak_len(), 8);
    }

    #[test]
    fn matches_reference_model_on_random_interleaving() {
        // A deterministic xorshift drives a random push/pop interleaving
        // with dense timestamp ties; every pop must return exactly what a
        // naive min-by-(time, insertion-index) reference model returns.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut q = EventQueue::new();
        let mut pending: Vec<(u64, u64)> = Vec::new(); // (at_ns, seq)
        let mut seq = 0u64;
        let pop_and_check = |q: &mut EventQueue<u64>, pending: &mut Vec<(u64, u64)>| {
            let (at, got) = q.pop().unwrap();
            let min = pending
                .iter()
                .enumerate()
                .min_by_key(|&(_, p)| p)
                .map(|(i, _)| i)
                .unwrap();
            let expect = pending.remove(min);
            assert_eq!((at.as_ns(), got), expect);
        };
        for _ in 0..4_000 {
            if step() % 3 != 0 || pending.is_empty() {
                let at = step() % 64;
                q.push(Time::from_ns(at), seq);
                pending.push((at, seq));
                seq += 1;
            } else {
                pop_and_check(&mut q, &mut pending);
            }
        }
        while !pending.is_empty() {
            pop_and_check(&mut q, &mut pending);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Time::from_ns(i), i);
        }
        for _ in 0..10 {
            q.pop();
        }
        q.push(Time::from_ns(1), 1);
        assert_eq!(q.peak_len(), 10);
    }

    #[test]
    fn stats_split_near_buffer_and_heap_traffic() {
        let mut q = EventQueue::new();
        // Descending pushes each beat the buffer's max, so a short chain
        // circulates entirely through the near buffer.
        for i in (0..8u64).rev() {
            q.push(Time::from_ns(i), i);
        }
        for _ in 0..8 {
            q.pop();
        }
        let s = q.stats();
        assert_eq!(s.near_hits, 8);
        assert_eq!(s.near_pops, 8);
        assert_eq!(s.heap_pushes, 0);
        assert_eq!(s.heap_pops, 0);
        assert_eq!(s.sifts(), 0, "short chains must be sift-free");
        assert_eq!(s.pops(), 8);

        // Push far-future events behind a near-buffer occupant: they go
        // straight to the heap and pop through it.
        q.push(Time::from_ns(10), 0);
        for i in 0..4u64 {
            q.push(Time::from_ns(1_000 + i), i);
        }
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.heap_pushes, 4);
        assert_eq!(s.heap_pops, 4);
        assert_eq!(s.pops(), 13);
    }

    #[test]
    fn stats_count_near_spills() {
        let mut q = EventQueue::new();
        // Descending pushes all enter the near buffer; once it is full,
        // every further push spills the buffer's largest into the heap.
        for i in (0..NEAR_CAP as u64 + 5).rev() {
            q.push(Time::from_ns(i), i);
        }
        let s = q.stats();
        assert_eq!(s.near_hits, NEAR_CAP as u64 + 5);
        assert_eq!(s.near_spills, 5);
        // Everything still pops in time order.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..NEAR_CAP as u64 + 5).collect::<Vec<_>>());
    }

    #[test]
    fn slab_occupancy_tracks_live_heap_entries() {
        let mut q = EventQueue::new();
        assert_eq!(q.slab_occupancy(), (0, 0));
        q.push(Time::from_ns(1), 1u64); // near buffer: no slab entry
        assert_eq!(q.slab_occupancy(), (0, 0));
        q.push(Time::from_ns(100), 2);
        q.push(Time::from_ns(200), 3);
        assert_eq!(q.slab_occupancy(), (2, 2));
        q.pop();
        q.pop();
        // One live heap entry; the freed slot stays allocated.
        assert_eq!(q.slab_occupancy(), (1, 2));
    }

    #[test]
    fn pending_time_span_covers_near_and_heap() {
        let mut q = EventQueue::new();
        assert_eq!(q.pending_time_span(), None);
        assert_eq!(q.pending_times().count(), 0);
        // One near-buffer occupant.
        q.push(Time::from_ns(50), 0u64);
        assert_eq!(
            q.pending_time_span(),
            Some((Time::from_ns(50), Time::from_ns(50)))
        );
        // Far-future events land in the heap; the span must see both
        // stores. The heap's max is a leaf, not the root.
        for i in 0..6u64 {
            q.push(Time::from_ns(1_000 + i * 100), i);
        }
        q.push(Time::from_ns(10), 9);
        assert_eq!(
            q.pending_time_span(),
            Some((Time::from_ns(10), Time::from_ns(1_500)))
        );
        // The timestamp multiset matches what was pushed.
        let mut times: Vec<u64> = q.pending_times().map(|t| t.as_ns()).collect();
        times.sort_unstable();
        assert_eq!(
            times,
            vec![10, 50, 1_000, 1_100, 1_200, 1_300, 1_400, 1_500]
        );
        // Popping the minimum tightens the lower edge.
        q.pop();
        assert_eq!(q.pending_time_span().unwrap().0, Time::from_ns(50));
    }

    #[test]
    fn max_time_events_survive_packing() {
        // Time::MAX in the packed key's high half must not collide with
        // or overflow earlier keys.
        let mut q = EventQueue::new();
        q.push(Time::MAX, "late");
        q.push(Time::ZERO, "early");
        q.push(Time::MAX, "later");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    /// Drives `q` with a deterministic workload over `events` pushes,
    /// interleaving pops, and returns the drained pop sequence.
    fn drive(q: &mut EventQueue<u64>, items: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, &(at, v)) in items.iter().enumerate() {
            q.push(Time::from_ns(at), v);
            // Interleave pops so the near buffer and heap both see
            // mid-stream traffic, not just a bulk drain.
            if i % 3 == 2 {
                out.extend(q.pop().map(|(t, v)| (t.as_ns(), v)));
            }
        }
        while let Some((t, v)) = q.pop() {
            out.push((t.as_ns(), v));
        }
        out
    }

    #[test]
    fn partitioned_queues_merge_into_consistent_stats() {
        // The sharded-kernel shape: one logical workload split across
        // two sub-kernel queues by node parity. The merged QueueStats
        // must satisfy exactly the conservation laws a single queue
        // satisfies, and the merge must be order-independent.
        let items: Vec<(u64, u64)> = (0..200u64)
            .map(|i| ((i * 37) % 512 + (i % 7) * 900, i))
            .collect();
        let mut whole = EventQueue::new();
        let whole_pops = drive(&mut whole, &items);
        assert_eq!(whole_pops.len(), items.len());

        let left: Vec<(u64, u64)> = items.iter().copied().filter(|(_, v)| v % 2 == 0).collect();
        let right: Vec<(u64, u64)> = items.iter().copied().filter(|(_, v)| v % 2 == 1).collect();
        let (mut qa, mut qb) = (EventQueue::new(), EventQueue::new());
        let pops_a = drive(&mut qa, &left);
        let pops_b = drive(&mut qb, &right);
        assert_eq!(pops_a.len() + pops_b.len(), items.len());

        let mut merged = qa.stats();
        merged.absorb(qb.stats());
        let mut flipped = qb.stats();
        flipped.absorb(qa.stats());
        assert_eq!(merged, flipped, "absorb must be commutative");
        // Conservation: every push is either a near hit or a heap push,
        // every pop near or heap, drained queues pop what they pushed,
        // and spills never exceed near entries — for the merged stats
        // exactly as for the whole-workload queue's.
        for stats in [whole.stats(), merged] {
            assert_eq!(stats.pushes(), items.len() as u64);
            assert_eq!(stats.pops(), items.len() as u64);
            assert_eq!(stats.pushes(), stats.near_hits + stats.heap_pushes);
            assert_eq!(stats.pops(), stats.near_pops + stats.heap_pops);
            assert!(stats.near_spills <= stats.near_hits);
        }
        // Merged slab occupancy: both drained, so zero live entries and
        // a capacity that is the sum of the per-queue footprints.
        let (live_a, cap_a) = qa.slab_occupancy();
        let (live_b, cap_b) = qb.slab_occupancy();
        assert_eq!(live_a + live_b, 0);
        assert!(cap_a + cap_b <= whole.slab_occupancy().1 + items.len());
    }
}
