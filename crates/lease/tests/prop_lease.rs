//! Property tests for the lease manager's headline guarantees:
//! determinism (identical inputs → bit-identical action streams and
//! timelines) and hysteresis (the borrow/release rate is bounded by the
//! cooldowns, no matter how adversarial the demand signal).

use proptest::prelude::*;
use venice_lease::{LeaseAction, LeaseConfig, LeaseManager, Priority, Timeline};
use venice_sim::Time;

/// Drives `manager` with a synthetic per-node demand stream derived from
/// `salt`, applying (and confirming) every action. Returns the action
/// stream and final timeline length.
fn drive(
    config: LeaseConfig,
    nodes: u16,
    ticks: u64,
    salt: u64,
) -> (Vec<(u64, LeaseAction)>, usize) {
    let mut m = LeaseManager::new(config, nodes);
    let boot = m.bootstrap();
    for a in &boot {
        let LeaseAction::Grow { node } = *a else {
            panic!("bootstrap only grows")
        };
        m.confirm_grow(Time::ZERO, node, Priority::Normal);
    }
    let mut actions = Vec::new();
    for t in 1..=ticks {
        let now = Time::from_us(t * 100);
        // Deterministic pseudo-demand: per-node mix of quiet spells and
        // pressure spikes.
        let depths: Vec<u32> = (0..nodes)
            .map(|i| {
                let x = t
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt ^ (i as u64) << 32);
                ((x >> 48) % 24) as u32
            })
            .collect();
        for a in m.tick(now, &depths) {
            actions.push((t, a));
            match a {
                LeaseAction::Grow { node } => {
                    m.confirm_grow(now, node, Priority::Normal);
                }
                LeaseAction::Shrink { node } => m.confirm_shrink(now, node, Priority::Normal),
            }
        }
    }
    (actions, m.timeline().len())
}

proptest! {
    /// Identical configs and demand streams produce bit-identical action
    /// streams; different demand diverges (almost surely, given enough
    /// ticks and spread).
    #[test]
    fn same_inputs_same_actions(
        salt in 0u64..1_000_000,
        nodes in 1u16..9,
        ticks in 50u64..300,
    ) {
        let config = LeaseConfig::default();
        let (a, la) = drive(config, nodes, ticks, salt);
        let (b, lb) = drive(config, nodes, ticks, salt);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(la, lb);
    }

    /// Hysteresis bounds the control rate per node: grows at least
    /// `grow_cooldown_ticks` apart, shrinks at least
    /// `release_cooldown_ticks` apart, and therefore total lease churn is
    /// bounded linearly by tick count over cooldown.
    #[test]
    fn cooldowns_bound_borrow_release_rate(
        salt in 0u64..1_000_000,
        nodes in 1u16..6,
        ticks in 100u64..400,
        grow_cd in 1u32..6,
        release_cd in 2u32..30,
    ) {
        let config = LeaseConfig {
            grow_cooldown_ticks: grow_cd,
            release_cooldown_ticks: release_cd,
            ..LeaseConfig::default()
        };
        let (actions, _) = drive(config, nodes, ticks, salt);
        for node in 0..nodes {
            let grow_ticks: Vec<u64> = actions
                .iter()
                .filter(|(_, a)| matches!(a, LeaseAction::Grow { node: n } if *n == node))
                .map(|(t, _)| *t)
                .collect();
            for w in grow_ticks.windows(2) {
                prop_assert!(
                    w[1] - w[0] >= grow_cd as u64,
                    "node {node}: grows at ticks {} and {} violate cooldown {grow_cd}",
                    w[0],
                    w[1]
                );
            }
            prop_assert!(
                grow_ticks.len() as u64 <= ticks / grow_cd as u64 + 1,
                "node {node}: {} grows over {ticks} ticks exceeds rate bound",
                grow_ticks.len()
            );
            let shrink_ticks: Vec<u64> = actions
                .iter()
                .filter(|(_, a)| matches!(a, LeaseAction::Shrink { node: n } if *n == node))
                .map(|(t, _)| *t)
                .collect();
            for w in shrink_ticks.windows(2) {
                prop_assert!(
                    w[1] - w[0] >= release_cd as u64,
                    "node {node}: shrinks at ticks {} and {} violate cooldown {release_cd}",
                    w[0],
                    w[1]
                );
            }
            prop_assert!(
                shrink_ticks.len() as u64 <= ticks / release_cd as u64 + 1,
                "node {node}: {} shrinks over {ticks} ticks exceeds rate bound",
                shrink_ticks.len()
            );
        }
    }

    /// Chunk counts always stay inside the configured [min, max] band
    /// when driven from bootstrap, and accounting never goes negative.
    #[test]
    fn chunk_range_is_invariant(
        salt in 0u64..1_000_000,
        nodes in 1u16..6,
        ticks in 50u64..200,
    ) {
        let config = LeaseConfig::default();
        let mut m = LeaseManager::new(config, nodes);
        let boot = m.bootstrap();
        for a in &boot {
            let LeaseAction::Grow { node } = *a else { panic!() };
            m.confirm_grow(Time::ZERO, node, Priority::High);
        }
        for t in 1..=ticks {
            let now = Time::from_us(t * 100);
            let depths: Vec<u32> = (0..nodes)
                .map(|i| ((salt ^ t.wrapping_mul(i as u64 + 3)) % 20) as u32)
                .collect();
            for a in m.tick(now, &depths) {
                match a {
                    LeaseAction::Grow { node } => {
                        m.confirm_grow(now, node, Priority::High);
                    }
                    LeaseAction::Shrink { node } => m.confirm_shrink(now, node, Priority::High),
                }
            }
            for node in 0..nodes {
                let c = m.chunks(node);
                prop_assert!(
                    c >= config.min_chunks && c <= config.max_chunks,
                    "node {node}: {c} chunks outside [{}, {}]",
                    config.min_chunks,
                    config.max_chunks
                );
            }
            prop_assert_eq!(
                m.total_bytes(),
                (0..nodes).map(|n| m.held_bytes(n)).sum::<u64>()
            );
            prop_assert!(m.peak_bytes() >= m.total_bytes());
        }
    }
}

/// The timeline type itself round-trips through the lease crate's
/// re-export (compile-time check that the API surface stays public).
#[test]
fn timeline_reexport_is_usable() {
    let mut t: Timeline<u32> = Timeline::new();
    t.record(Time::from_us(1), 7);
    assert_eq!(t.len(), 1);
}
