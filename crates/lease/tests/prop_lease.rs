//! Property tests for the lease manager's headline guarantees:
//! determinism (identical inputs → bit-identical action streams and
//! timelines), hysteresis (the borrow/release rate is bounded by the
//! cooldowns, no matter how adversarial the demand signal), per-node
//! cooldown keying (one node's release never starves another's), and
//! ledger conservation (per-tenant buckets always sum to the cluster
//! total, at every timeline event).

use std::collections::BTreeMap;

use proptest::prelude::*;
use venice_lease::{
    LeaseAction, LeaseConfig, LeaseEventKind, LeaseManager, NodeSignal, Priority, Timeline,
    NO_TENANT,
};
use venice_sim::Time;

/// Deterministic pseudo-demand for node `i` at tick `t`.
fn demand(salt: u64, i: u16, t: u64) -> u32 {
    let x = t
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(salt ^ (i as u64) << 32);
    ((x >> 48) % 24) as u32
}

/// Drives `manager` with a synthetic per-node demand stream derived from
/// `salt`, applying (and confirming) every action. Tenant attribution
/// rotates with the tick so the ledger sees several tenants. Returns the
/// action stream and final timeline length.
fn drive(
    config: LeaseConfig,
    nodes: u16,
    ticks: u64,
    salt: u64,
) -> (Vec<(u64, LeaseAction)>, usize) {
    let mut m = LeaseManager::new(config, nodes);
    let boot = m.bootstrap();
    for a in &boot {
        let LeaseAction::Grow { node, .. } = *a else {
            panic!("bootstrap only grows")
        };
        m.confirm_grow(Time::ZERO, node, NO_TENANT, false, Priority::Normal);
    }
    let mut actions = Vec::new();
    for t in 1..=ticks {
        let now = Time::from_us(t * 100);
        let signals: Vec<NodeSignal> = (0..nodes)
            .map(|i| NodeSignal {
                depth: demand(salt, i, t),
                lent_chunks: 0,
                lent_pressure: 0.0,
                tenant: ((t + i as u64) % 3) as u32,
                priority: Priority::Normal,
            })
            .collect();
        for a in m.tick(now, &signals) {
            actions.push((t, a));
            match a {
                LeaseAction::Grow { node, predictive } => {
                    m.confirm_grow(
                        now,
                        node,
                        signals[node as usize].tenant,
                        predictive,
                        Priority::Normal,
                    );
                }
                LeaseAction::Shrink { node } => {
                    let g = m.newest_generation(node).expect("shrink of an empty node");
                    m.confirm_shrink(now, node, g, Priority::Normal);
                }
                LeaseAction::Revoke { .. } | LeaseAction::Sublease { .. } => {
                    unreachable!("no lent chunks or market signalled")
                }
            }
        }
    }
    (actions, m.timeline().len())
}

proptest! {
    /// Identical configs and demand streams produce bit-identical action
    /// streams; different demand diverges (almost surely, given enough
    /// ticks and spread). Holds with the slope predictor armed: the EWMA
    /// is a pure function of the depth stream.
    #[test]
    fn same_inputs_same_actions(
        salt in 0u64..1_000_000,
        nodes in 1u16..9,
        ticks in 50u64..300,
        horizon in prop_oneof![Just(0u32), 5u32..40],
    ) {
        let config = LeaseConfig {
            predict_horizon_ticks: horizon,
            ..LeaseConfig::default()
        };
        let (a, la) = drive(config, nodes, ticks, salt);
        let (b, lb) = drive(config, nodes, ticks, salt);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(la, lb);
    }

    /// Hysteresis bounds the control rate per node: grows at least
    /// `grow_cooldown_ticks` apart, shrinks at least
    /// `release_cooldown_ticks` apart, and therefore total lease churn is
    /// bounded linearly by tick count over cooldown.
    #[test]
    fn cooldowns_bound_borrow_release_rate(
        salt in 0u64..1_000_000,
        nodes in 1u16..6,
        ticks in 100u64..400,
        grow_cd in 1u32..6,
        release_cd in 2u32..30,
    ) {
        let config = LeaseConfig {
            grow_cooldown_ticks: grow_cd,
            release_cooldown_ticks: release_cd,
            ..LeaseConfig::default()
        };
        let (actions, _) = drive(config, nodes, ticks, salt);
        for node in 0..nodes {
            let grow_ticks: Vec<u64> = actions
                .iter()
                .filter(|(_, a)| matches!(a, LeaseAction::Grow { node: n, .. } if *n == node))
                .map(|(t, _)| *t)
                .collect();
            for w in grow_ticks.windows(2) {
                prop_assert!(
                    w[1] - w[0] >= grow_cd as u64,
                    "node {node}: grows at ticks {} and {} violate cooldown {grow_cd}",
                    w[0],
                    w[1]
                );
            }
            prop_assert!(
                grow_ticks.len() as u64 <= ticks / grow_cd as u64 + 1,
                "node {node}: {} grows over {ticks} ticks exceeds rate bound",
                grow_ticks.len()
            );
            let shrink_ticks: Vec<u64> = actions
                .iter()
                .filter(|(_, a)| matches!(a, LeaseAction::Shrink { node: n } if *n == node))
                .map(|(t, _)| *t)
                .collect();
            for w in shrink_ticks.windows(2) {
                prop_assert!(
                    w[1] - w[0] >= release_cd as u64,
                    "node {node}: shrinks at ticks {} and {} violate cooldown {release_cd}",
                    w[0],
                    w[1]
                );
            }
            prop_assert!(
                shrink_ticks.len() as u64 <= ticks / release_cd as u64 + 1,
                "node {node}: {} shrinks over {ticks} ticks exceeds rate bound",
                shrink_ticks.len()
            );
        }
    }

    /// Regression (ISSUE 3): release cooldowns are keyed **per node** —
    /// N nodes fed identical calm streams all release in the *same*
    /// tick, every `release_cooldown_ticks`. A globally keyed cooldown
    /// would let the first node's shrink push every other node's
    /// release back indefinitely.
    #[test]
    fn release_cooldown_is_per_node(
        nodes in 2u16..9,
        release_cd in 2u32..20,
    ) {
        let config = LeaseConfig {
            release_cooldown_ticks: release_cd,
            min_chunks: 0,
            max_chunks: 2,
            ..LeaseConfig::default()
        };
        let mut m = LeaseManager::new(config, nodes);
        // Two chunks everywhere (bootstrap floor is 0 here).
        for node in 0..nodes {
            for _ in 0..2 {
                m.confirm_grow(Time::ZERO, node, NO_TENANT, false, Priority::Normal);
            }
        }
        // All nodes calm forever: each release round must cover *every*
        // node at once, exactly on the cooldown boundary.
        let mut release_rounds = Vec::new();
        for t in 1..=(2 * release_cd as u64 + 2) {
            let now = Time::from_ms(t);
            let signals: Vec<NodeSignal> =
                (0..nodes).map(|_| NodeSignal::depth(0)).collect();
            let actions = m.tick(now, &signals);
            if !actions.is_empty() {
                prop_assert_eq!(
                    actions.len(),
                    nodes as usize,
                    "tick {}: a partial release round means some node was starved",
                    t
                );
                release_rounds.push(t);
            }
            for a in actions {
                let LeaseAction::Shrink { node } = a else {
                    panic!("calm nodes only shrink")
                };
                let g = m.newest_generation(node).expect("shrink of an empty node");
                m.confirm_shrink(now, node, g, Priority::Normal);
            }
        }
        prop_assert_eq!(
            release_rounds,
            vec![release_cd as u64, 2 * release_cd as u64]
        );
        for node in 0..nodes {
            prop_assert_eq!(m.chunks(node), 0);
        }
    }

    /// Chunk counts always stay inside the configured [min, max] band
    /// when driven from bootstrap, and accounting never goes negative.
    #[test]
    fn chunk_range_is_invariant(
        salt in 0u64..1_000_000,
        nodes in 1u16..6,
        ticks in 50u64..200,
    ) {
        let config = LeaseConfig::default();
        let mut m = LeaseManager::new(config, nodes);
        let boot = m.bootstrap();
        for a in &boot {
            let LeaseAction::Grow { node, .. } = *a else { panic!() };
            m.confirm_grow(Time::ZERO, node, NO_TENANT, false, Priority::High);
        }
        for t in 1..=ticks {
            let now = Time::from_us(t * 100);
            let signals: Vec<NodeSignal> = (0..nodes)
                .map(|i| NodeSignal::depth(((salt ^ t.wrapping_mul(i as u64 + 3)) % 20) as u32))
                .collect();
            for a in m.tick(now, &signals) {
                match a {
                    LeaseAction::Grow { node, predictive } => {
                        m.confirm_grow(now, node, NO_TENANT, predictive, Priority::High);
                    }
                    LeaseAction::Shrink { node } => {
                        let g = m.newest_generation(node).expect("shrink of an empty node");
                        m.confirm_shrink(now, node, g, Priority::High);
                    }
                    LeaseAction::Revoke { .. } | LeaseAction::Sublease { .. } => {
                    unreachable!("no lent chunks or market signalled")
                }
                }
            }
            for node in 0..nodes {
                let c = m.chunks(node);
                prop_assert!(
                    c >= config.min_chunks && c <= config.max_chunks,
                    "node {node}: {c} chunks outside [{}, {}]",
                    config.min_chunks,
                    config.max_chunks
                );
            }
            prop_assert_eq!(
                m.total_bytes(),
                (0..nodes).map(|n| m.held_bytes(n)).sum::<u64>()
            );
            prop_assert!(m.peak_bytes() >= m.total_bytes());
        }
    }

    /// Conservation (ISSUE 3): under adversarial demand with rotating
    /// tenant attribution, quotas, and donor revokes, the per-tenant
    /// ledger buckets (plus the unattributed bootstrap bucket) sum to
    /// the manager's total at **every** timeline event, no tenant ever
    /// exceeds its quota, and no bucket underflows.
    #[test]
    fn quota_ledger_conserves_bytes(
        salt in 0u64..1_000_000,
        nodes in 2u16..6,
        ticks in 50u64..250,
        quota_chunks in 1u64..5,
    ) {
        let config = LeaseConfig {
            donor_high_watermark: 12,
            revoke_cooldown_ticks: 7,
            predict_horizon_ticks: 20,
            ..LeaseConfig::default()
        };
        let tenants = 3u32;
        let quotas: Vec<u64> =
            (0..tenants).map(|_| quota_chunks * config.chunk_bytes).collect();
        let mut m = LeaseManager::with_quotas(config, nodes, quotas.clone());
        for a in &m.bootstrap() {
            let LeaseAction::Grow { node, .. } = *a else { panic!() };
            m.confirm_grow(Time::ZERO, node, NO_TENANT, false, Priority::Normal);
        }
        // Live view of who holds which generation, for revoke plumbing:
        // generation -> recipient, newest last.
        let mut held: Vec<(u64, u16)> = Vec::new();
        for t in 1..=ticks {
            let now = Time::from_us(t * 100);
            let signals: Vec<NodeSignal> = (0..nodes)
                .map(|i| NodeSignal {
                    depth: demand(salt, i, t),
                    // Pretend each node lent whatever is outstanding on
                    // its right neighbor (enough to exercise revokes —
                    // the manager only checks lent_chunks > 0).
                    lent_chunks: (demand(salt, i, t * 31) % 3).min(held.len() as u32),
                    lent_pressure: 0.0,
                    tenant: ((t + i as u64) % tenants as u64) as u32,
                    priority: Priority::Normal,
                })
                .collect();
            for a in m.tick(now, &signals) {
                match a {
                    LeaseAction::Grow { node, predictive } => {
                        let tenant = signals[node as usize].tenant;
                        let g = m.confirm_grow(now, node, tenant, predictive, Priority::Normal);
                        held.push((g, node));
                    }
                    LeaseAction::Shrink { node } => {
                        // Release the node's newest chunk, named by
                        // generation (the engine's protocol).
                        let g = m.newest_generation(node).expect("shrink of an empty node");
                        m.confirm_shrink(now, node, g, Priority::Normal);
                        if let Some(idx) = held.iter().position(|&(gen, _)| gen == g) {
                            held.remove(idx);
                        }
                    }
                    LeaseAction::Revoke { donor } => {
                        // Donor LIFO preference: the newest outstanding
                        // chunk anywhere stands in for "the donor's
                        // newest lent chunk" in this synthetic harness.
                        if let Some((g, recipient)) = held.pop() {
                            m.confirm_revoke(now, donor, recipient, g, Priority::Normal);
                        }
                    }
                    LeaseAction::Sublease { .. } => {
                        unreachable!("market disarmed in this config")
                    }
                }
            }
            // Quota is never exceeded.
            for tenant in 0..tenants {
                prop_assert!(
                    m.tenant_bytes(tenant) <= quotas[tenant as usize],
                    "tenant {tenant} over quota: {} > {}",
                    m.tenant_bytes(tenant),
                    quotas[tenant as usize]
                );
            }
        }
        // Conservation at every event, replayed from the timeline alone.
        let mut ledger: BTreeMap<u32, u64> = BTreeMap::new();
        for (at, e) in m.timeline().iter() {
            prop_assert_eq!(*at, e.at);
            ledger.insert(e.tenant, e.tenant_bytes_after);
            let sum: u64 = ledger.values().sum();
            prop_assert_eq!(
                sum,
                e.total_bytes_after,
                "ledger sum diverged at {:?}",
                e
            );
        }
        // And the final live state agrees with the last event.
        let live: u64 =
            (0..tenants).map(|t| m.tenant_bytes(t)).sum::<u64>() + m.unattributed_bytes();
        prop_assert_eq!(live, m.total_bytes());
    }
}

proptest! {
    /// Sublease-market conservation (ISSUE 5): with the market armed
    /// under adversarial demand, rotating tenants, tight quotas, and
    /// donor revokes —
    ///
    /// * the *usage* ledger still conserves bytes at every event
    ///   (per-tenant buckets sum to the running total);
    /// * the *charged* ledger, replayed from `(kind, tenant, lessor)`
    ///   on the timeline alone, matches the live ledger and never
    ///   exceeds any tenant's quota at any event;
    /// * subleased bytes tracked by the manager equal the
    ///   subleases-minus-returns visible on the timeline.
    #[test]
    fn sublease_market_conserves_and_respects_quotas(
        salt in 0u64..1_000_000,
        nodes in 2u16..6,
        ticks in 50u64..250,
        quota_chunks in 1u64..4,
        lessor_chunks in 2u64..8,
    ) {
        let config = LeaseConfig {
            donor_high_watermark: 12,
            revoke_cooldown_ticks: 7,
            predict_horizon_ticks: 20,
            sublease_market: true,
            ..LeaseConfig::default()
        };
        // Tenants 0..2 rotate through the demand stream with tight
        // quotas; tenant 3 never drives demand and holds the big idle
        // headroom the market can sublease.
        let tenants = 3u32;
        let mut quotas: Vec<u64> =
            (0..tenants).map(|_| quota_chunks * config.chunk_bytes).collect();
        quotas.push(lessor_chunks * config.chunk_bytes);
        let mut m = LeaseManager::with_quotas(config, nodes, quotas.clone());
        for a in &m.bootstrap() {
            let LeaseAction::Grow { node, .. } = *a else { panic!() };
            m.confirm_grow(Time::ZERO, node, NO_TENANT, false, Priority::Normal);
        }
        let mut held: Vec<(u64, u16)> = Vec::new();
        for t in 1..=ticks {
            let now = Time::from_us(t * 100);
            let signals: Vec<NodeSignal> = (0..nodes)
                .map(|i| NodeSignal {
                    depth: demand(salt, i, t),
                    lent_chunks: (demand(salt, i, t * 31) % 3).min(held.len() as u32),
                    lent_pressure: (demand(salt, i, t * 17) % 5) as f64 / 4.0,
                    tenant: ((t + i as u64) % tenants as u64) as u32,
                    priority: Priority::Normal,
                })
                .collect();
            for a in m.tick(now, &signals) {
                match a {
                    LeaseAction::Grow { node, predictive } => {
                        let tenant = signals[node as usize].tenant;
                        let g = m.confirm_grow(now, node, tenant, predictive, Priority::Normal);
                        held.push((g, node));
                    }
                    LeaseAction::Sublease { node, lessor } => {
                        let tenant = signals[node as usize].tenant;
                        prop_assert_ne!(lessor, tenant, "self-sublease matched");
                        let g = m.confirm_sublease(now, node, tenant, lessor, Priority::Normal);
                        held.push((g, node));
                    }
                    LeaseAction::Shrink { node } => {
                        let g = m.newest_generation(node).expect("shrink of an empty node");
                        m.confirm_shrink(now, node, g, Priority::Normal);
                        if let Some(idx) = held.iter().position(|&(gen, _)| gen == g) {
                            held.remove(idx);
                        }
                    }
                    LeaseAction::Revoke { donor } => {
                        if let Some((g, recipient)) = held.pop() {
                            m.confirm_revoke(now, donor, recipient, g, Priority::Normal);
                        }
                    }
                }
            }
            // The charged ledger never exceeds any quota, live.
            for tenant in 0..quotas.len() as u32 {
                prop_assert!(
                    m.charged_bytes_of(tenant) <= quotas[tenant as usize],
                    "tenant {tenant} charged over quota: {} > {}",
                    m.charged_bytes_of(tenant),
                    quotas[tenant as usize]
                );
            }
        }
        // Usage-ledger conservation at every event, from the timeline.
        let mut ledger: BTreeMap<u32, u64> = BTreeMap::new();
        for (_, e) in m.timeline().iter() {
            ledger.insert(e.tenant, e.tenant_bytes_after);
            let sum: u64 = ledger.values().sum();
            prop_assert_eq!(sum, e.total_bytes_after, "usage ledger diverged at {:?}", e);
        }
        // Charged-ledger replay from (kind, tenant, lessor) alone:
        // every intermediate state respects the quotas, and the final
        // state matches the live ledger — including the subleased-bytes
        // balance.
        let chunk = config.chunk_bytes;
        let mut charged: BTreeMap<u32, u64> = BTreeMap::new();
        let mut subleased: u64 = 0;
        for (_, e) in m.timeline().iter() {
            match e.kind {
                LeaseEventKind::Grew | LeaseEventKind::GrewPredictive => {
                    if e.tenant != NO_TENANT {
                        *charged.entry(e.tenant).or_default() += chunk;
                    }
                }
                LeaseEventKind::Subleased => {
                    prop_assert_ne!(e.lessor, NO_TENANT, "sublease without a lessor: {:?}", e);
                    *charged.entry(e.lessor).or_default() += chunk;
                    subleased += chunk;
                }
                LeaseEventKind::Shrank => {
                    if e.tenant != NO_TENANT {
                        *charged.entry(e.tenant).or_default() -= chunk;
                    }
                }
                LeaseEventKind::SubleaseReturned => {
                    *charged.entry(e.lessor).or_default() -= chunk;
                    subleased -= chunk;
                }
                LeaseEventKind::Revoked | LeaseEventKind::FailedOver => {
                    let payer = if e.lessor != NO_TENANT {
                        subleased -= chunk;
                        e.lessor
                    } else {
                        e.tenant
                    };
                    if payer != NO_TENANT {
                        *charged.entry(payer).or_default() -= chunk;
                    }
                }
                LeaseEventKind::Denied
                | LeaseEventKind::QuotaDenied
                | LeaseEventKind::RevokeDenied => {}
            }
            for (&tenant, &bytes) in &charged {
                prop_assert!(
                    bytes <= quotas[tenant as usize],
                    "replayed charge for tenant {tenant} over quota at {:?}",
                    e
                );
            }
        }
        for tenant in 0..quotas.len() as u32 {
            prop_assert_eq!(
                charged.get(&tenant).copied().unwrap_or(0),
                m.charged_bytes_of(tenant),
                "replayed charged ledger diverged for tenant {}",
                tenant
            );
        }
        prop_assert_eq!(subleased, m.subleased_bytes());
        prop_assert_eq!(m.subleases() - m.sublease_returns(), subleased / chunk);
    }
}

/// The timeline type itself round-trips through the lease crate's
/// re-export (compile-time check that the API surface stays public).
#[test]
fn timeline_reexport_is_usable() {
    let mut t: Timeline<u32> = Timeline::new();
    t.record(Time::from_us(1), 7);
    assert_eq!(t.len(), 1);
}
