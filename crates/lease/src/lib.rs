#![deny(missing_docs)]

//! # venice-lease: elastic memory-lease management
//!
//! PR 1's load generator provisions remote memory once at setup and holds
//! it for the whole run — the opposite of the resource sharing the Venice
//! paper promises. This crate is the feedback-control layer that fixes
//! that: a deterministic, cluster-wide **lease manager** that sits between
//! a traffic engine and `Cluster::borrow_memory`, watching per-node demand
//! every simulated tick and deciding when each node should *grow* (borrow
//! another chunk of remote memory through the Monitor-Node flow) or
//! *shrink* (release its newest lease back to the donor).
//!
//! Seven mechanisms keep the loop stable, fair, and ahead of demand:
//!
//! * **watermarks** — a node grows only while its queue depth sits at or
//!   above the high watermark, and becomes release-eligible only at or
//!   below the low watermark; the band between them is dead zone, so
//!   demand oscillating inside it causes no lease churn;
//! * **hysteresis** — grows on one node are at least
//!   [`LeaseConfig::grow_cooldown_ticks`] apart, and a release requires
//!   [`LeaseConfig::release_cooldown_ticks`] *consecutive* calm ticks,
//!   keyed **per node** so one node's churn never starves another's
//!   legitimate release. Together these bound the borrow/release rate
//!   per node by construction (a property the test suite pins down);
//! * **prediction** — each node carries an EWMA of its queue-depth
//!   slope; when the depth projected one establish-latency horizon ahead
//!   ([`LeaseConfig::predict_horizon_ticks`]) crosses the high
//!   watermark, the grow fires *early*, so flash crowds pay less of the
//!   Fig 2 provisioning delay;
//! * **donor-side reclaim** — lending nodes watch their own pressure:
//!   a donor whose depth crosses [`LeaseConfig::donor_high_watermark`]
//!   while it has chunks lent out emits [`LeaseAction::Revoke`],
//!   demanding its newest lent chunk back through the caller's real
//!   Monitor–Node teardown path. With
//!   [`LeaseConfig::donor_pressure_weight`] armed the trigger is
//!   **cost-aware**: each [`NodeSignal`] carries the lent fraction of
//!   the donor's pool, and a heavily lent (hence, under the engine's
//!   lent-memory pressure term, visibly degraded) donor reclaims before
//!   its raw queue depth alone would justify it;
//! * **per-tenant quotas** — every confirmed chunk is attributed to a
//!   tenant on a byte ledger ([`LeaseManager::tenant_ledger`]); grows
//!   that would push a tenant past its quota are refused locally
//!   ([`LeaseEventKind::QuotaDenied`]) before any cluster traffic, and
//!   the ledger conserves bytes (per-tenant buckets always sum to
//!   [`LeaseManager::total_bytes`] — a property test pins it);
//! * **the sublease market** — with [`LeaseConfig::sublease_market`]
//!   armed, a grow that would be quota-refused is instead matched
//!   against the finite-quota tenant holding the most idle headroom
//!   ([`LeaseAction::Sublease`] → [`LeaseManager::confirm_sublease`]):
//!   the chunk serves the requester (the *usage* ledger) while the
//!   lessor's quota pays for it (the *charged* ledger,
//!   [`LeaseManager::charged_ledger`]). Returns and revokes repay the
//!   lessor ([`LeaseEventKind::SubleaseReturned`]; a revoked market
//!   chunk stays [`LeaseEventKind::Revoked`] with
//!   [`LeaseEvent::lessor`] naming the repayment), and the same
//!   promised-bytes reservation that stops same-tick grows from
//!   overshooting a quota stops same-tick matches from overshooting a
//!   lessor's headroom;
//! * **priorities** — leases carry the [`Priority`] of the tenant whose
//!   backlog triggered them, and under cluster-wide contention admission
//!   layers shed low-priority tenants first instead of FIFO (the
//!   priority-scaled caps live in the consumer; this crate defines the
//!   ordering and carries the tag through the [`LeaseEvent`] timeline).
//!
//! The manager is **pure**: it never touches a cluster itself. Each tick
//! it is fed per-node [`NodeSignal`]s and emits [`LeaseAction`]s; the
//! caller applies them (borrow/release/revoke) and confirms or denies
//! each one. Every decision lands on a [`venice_sim::Timeline`] of
//! [`LeaseEvent`]s, so same-seed runs can assert bit-identical lease
//! histories at any thread count.

pub mod config;
pub mod manager;

pub use config::{LeaseConfig, Priority};
pub use manager::{
    LeaseAction, LeaseEvent, LeaseEventKind, LeaseManager, NodeSignal, NO_NODE, NO_TENANT,
};
pub use venice_sim::Timeline;
