//! Lease-manager tuning parameters and tenant priorities.

use serde::{Deserialize, Serialize};
use venice_sim::Time;

/// Tenant priority carried by leases and honored by admission shedding:
/// under contention, lower priorities are shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Batch / best-effort traffic (shed first).
    Low,
    /// Default interactive traffic.
    Normal,
    /// Latency-critical traffic (shed last).
    High,
}

impl Priority {
    /// Fraction of a node's admission capacity this priority may consume.
    /// High-priority tenants see the full cap; lower priorities hit their
    /// (smaller) effective cap earlier, so when a node saturates the
    /// low-priority tenants are turned away first while high-priority
    /// traffic still gets through.
    pub fn capacity_share(self) -> f64 {
        match self {
            Priority::Low => 0.50,
            Priority::Normal => 0.85,
            Priority::High => 1.0,
        }
    }

    /// Figure/report label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Elastic lease-manager parameters.
///
/// Capacity moves in fixed-size chunks: a node holds between
/// `min_chunks` and `max_chunks` leases of `chunk_bytes` each, and the
/// watermark/hysteresis machinery decides when to move between levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// Bytes borrowed or released per lease action.
    pub chunk_bytes: u64,
    /// Floor of chunks every node holds from bootstrap onward.
    pub min_chunks: u32,
    /// Ceiling of chunks a node may accumulate.
    pub max_chunks: u32,
    /// Queue depth at or above which a node wants to grow.
    pub high_watermark: u32,
    /// Queue depth at or below which a tick counts as calm.
    pub low_watermark: u32,
    /// Minimum ticks between two grow decisions on one node (also applied
    /// after a denied grow, so a full cluster is not hammered).
    pub grow_cooldown_ticks: u32,
    /// Consecutive calm ticks required before one release; any pressured
    /// or in-band tick resets the count.
    pub release_cooldown_ticks: u32,
    /// Interval between demand observations.
    pub tick_interval: Time,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            chunk_bytes: 64 << 20,
            min_chunks: 1,
            max_chunks: 4,
            high_watermark: 8,
            low_watermark: 2,
            grow_cooldown_ticks: 2,
            release_cooldown_ticks: 40,
            tick_interval: Time::from_ms(1),
        }
    }
}

impl LeaseConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero chunk size, an inverted chunk range, watermarks
    /// that leave no hysteresis band, zero cooldowns, or a zero tick.
    pub fn validate(&self) {
        assert!(self.chunk_bytes > 0, "chunk_bytes must be positive");
        assert!(
            self.min_chunks <= self.max_chunks,
            "min_chunks {} exceeds max_chunks {}",
            self.min_chunks,
            self.max_chunks
        );
        assert!(
            self.low_watermark < self.high_watermark,
            "watermarks must leave a hysteresis band: low {} >= high {}",
            self.low_watermark,
            self.high_watermark
        );
        assert!(self.grow_cooldown_ticks > 0, "grow cooldown must be >= 1");
        assert!(
            self.release_cooldown_ticks > 0,
            "release cooldown must be >= 1"
        );
        assert!(self.tick_interval > Time::ZERO, "tick interval must be > 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        LeaseConfig::default().validate();
    }

    #[test]
    fn priorities_order_and_share() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert!(Priority::Low.capacity_share() < Priority::Normal.capacity_share());
        assert_eq!(Priority::High.capacity_share(), 1.0);
        assert_eq!(Priority::Low.label(), "low");
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_watermarks_rejected() {
        LeaseConfig {
            high_watermark: 2,
            low_watermark: 2,
            ..LeaseConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_chunks")]
    fn inverted_chunk_range_rejected() {
        LeaseConfig {
            min_chunks: 5,
            max_chunks: 4,
            ..LeaseConfig::default()
        }
        .validate();
    }
}
