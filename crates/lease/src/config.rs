//! Lease-manager tuning parameters and tenant priorities.

use serde::{Deserialize, Serialize};
use venice_sim::Time;

/// Tenant priority carried by leases and honored by admission shedding:
/// under contention, lower priorities are shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Batch / best-effort traffic (shed first).
    Low,
    /// Default interactive traffic.
    Normal,
    /// Latency-critical traffic (shed last).
    High,
}

impl Priority {
    /// Fraction of a node's admission capacity this priority may consume.
    /// High-priority tenants see the full cap; lower priorities hit their
    /// (smaller) effective cap earlier, so when a node saturates the
    /// low-priority tenants are turned away first while high-priority
    /// traffic still gets through.
    pub fn capacity_share(self) -> f64 {
        match self {
            Priority::Low => 0.50,
            Priority::Normal => 0.85,
            Priority::High => 1.0,
        }
    }

    /// Figure/report label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Elastic lease-manager parameters.
///
/// Capacity moves in fixed-size chunks: a node holds between
/// `min_chunks` and `max_chunks` leases of `chunk_bytes` each, and the
/// watermark/hysteresis machinery decides when to move between levels.
/// A donor revoke may *transiently* pull a recipient below the floor;
/// the controller treats an under-floor node as grow-eligible on any
/// demand signal (watermarks notwithstanding), so the floor is restored
/// within a grow cooldown rather than waiting for a pressure spike.
/// Three optional mechanisms extend the reactive core:
///
/// * **prediction** (`predict_horizon_ticks > 0`) — each node tracks an
///   EWMA of its queue-depth slope and grows *before* the high watermark
///   trips when the projected depth would cross it within the horizon,
///   so flash crowds pay less of the lease-establish latency;
/// * **donor-side reclaim** (`donor_high_watermark > 0`) — a node whose
///   own queue depth crosses the donor watermark while it has chunks
///   lent out demands the newest one back (a revoke through the real
///   Monitor–Node teardown path);
/// * **per-tenant quotas** (constructed via
///   [`crate::LeaseManager::with_quotas`]) — a byte ceiling per tenant;
///   grows attributed to an over-quota tenant are refused locally and
///   recorded as [`crate::LeaseEventKind::QuotaDenied`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// Bytes borrowed or released per lease action.
    pub chunk_bytes: u64,
    /// Floor of chunks every node holds from bootstrap onward.
    pub min_chunks: u32,
    /// Ceiling of chunks a node may accumulate.
    pub max_chunks: u32,
    /// Queue depth at or above which a node wants to grow.
    pub high_watermark: u32,
    /// Queue depth at or below which a tick counts as calm.
    pub low_watermark: u32,
    /// Minimum ticks between two grow decisions on one node (also applied
    /// after a denied grow, so a full cluster is not hammered).
    pub grow_cooldown_ticks: u32,
    /// Consecutive calm ticks required before one release; any pressured
    /// or in-band tick resets the count. Keyed **per node**: one node's
    /// calm streak (or release) never delays another node's.
    pub release_cooldown_ticks: u32,
    /// Interval between demand observations.
    pub tick_interval: Time,
    /// EWMA smoothing factor for the per-tick queue-depth slope, in
    /// `(0, 1]`; larger reacts faster, smaller smooths harder.
    pub slope_alpha: f64,
    /// Prediction lookahead in ticks — roughly the lease-establish
    /// latency divided by `tick_interval` (~33 ticks for a 64 MB chunk
    /// at 1 ms ticks), so a grow decided now lands just as the projected
    /// depth would have crossed the watermark. `0` disables prediction
    /// (pure reactive control, the PR 2 behavior).
    pub predict_horizon_ticks: u32,
    /// Queue depth at or above which a *donor* (a node with chunks lent
    /// out) demands its newest lent chunk back. `0` disables donor-side
    /// reclaim (recipients alone release, the PR 2 behavior).
    pub donor_high_watermark: u32,
    /// Minimum ticks between two revoke decisions by one donor.
    pub revoke_cooldown_ticks: u32,
    /// Depth-equivalents a donor's revoke trigger gains at *full*
    /// lendable-pool consumption: the effective revoke depth is
    /// `depth + donor_pressure_weight * lent_pressure`, so a heavily
    /// lent donor reclaims **before** its raw queue depth reaches
    /// [`LeaseConfig::donor_high_watermark`] — the revoke decision is
    /// cost-aware, not watermark-only. `0.0` (the default) reproduces
    /// the PR 3 watermark-only trigger exactly.
    pub donor_pressure_weight: f64,
    /// Maximum fractional service-time slowdown a donor suffers at full
    /// lendable-pool consumption (the lent-memory pressure term the
    /// traffic engine applies to its `NodeModel`): a donor with fraction
    /// `f` of its pool lent out serves requests
    /// `1 + donor_pressure_slowdown * f` times slower, degrading
    /// continuously as chunks leave and recovering as revokes/releases
    /// land. `0.0` (the default) models lending as free for the donor —
    /// the PR 1–4 behavior, bit-identical.
    pub donor_pressure_slowdown: f64,
    /// Arms the cross-tenant sublease market: a grow that would be
    /// locally refused ([`crate::LeaseEventKind::QuotaDenied`]) is
    /// instead matched against the idle quota headroom of another
    /// finite-quota tenant, emitting [`crate::LeaseAction::Sublease`]
    /// and charging the *lessor*'s quota. `false` (the default) keeps
    /// hard quotas: over-quota grows are refused outright.
    pub sublease_market: bool,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            chunk_bytes: 64 << 20,
            min_chunks: 1,
            max_chunks: 4,
            high_watermark: 8,
            low_watermark: 2,
            grow_cooldown_ticks: 2,
            release_cooldown_ticks: 40,
            tick_interval: Time::from_ms(1),
            slope_alpha: 0.35,
            predict_horizon_ticks: 0,
            donor_high_watermark: 0,
            revoke_cooldown_ticks: 50,
            donor_pressure_weight: 0.0,
            donor_pressure_slowdown: 0.0,
            sublease_market: false,
        }
    }
}

impl LeaseConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero chunk size, an inverted chunk range, watermarks
    /// that leave no hysteresis band, zero cooldowns, a zero tick, or a
    /// slope-EWMA factor outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.chunk_bytes > 0, "chunk_bytes must be positive");
        assert!(
            self.min_chunks <= self.max_chunks,
            "min_chunks {} exceeds max_chunks {}",
            self.min_chunks,
            self.max_chunks
        );
        assert!(
            self.low_watermark < self.high_watermark,
            "watermarks must leave a hysteresis band: low {} >= high {}",
            self.low_watermark,
            self.high_watermark
        );
        assert!(self.grow_cooldown_ticks > 0, "grow cooldown must be >= 1");
        assert!(
            self.release_cooldown_ticks > 0,
            "release cooldown must be >= 1"
        );
        assert!(self.tick_interval > Time::ZERO, "tick interval must be > 0");
        assert!(
            self.slope_alpha > 0.0 && self.slope_alpha <= 1.0,
            "slope_alpha {} outside (0, 1]",
            self.slope_alpha
        );
        assert!(
            self.revoke_cooldown_ticks > 0,
            "revoke cooldown must be >= 1"
        );
        assert!(
            self.donor_pressure_weight.is_finite() && self.donor_pressure_weight >= 0.0,
            "donor_pressure_weight {} must be finite and non-negative",
            self.donor_pressure_weight
        );
        assert!(
            self.donor_pressure_slowdown.is_finite() && self.donor_pressure_slowdown >= 0.0,
            "donor_pressure_slowdown {} must be finite and non-negative",
            self.donor_pressure_slowdown
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_reactive() {
        let c = LeaseConfig::default();
        c.validate();
        // Prediction and donor reclaim are opt-in: the default config is
        // the PR 2 reactive controller.
        assert_eq!(c.predict_horizon_ticks, 0);
        assert_eq!(c.donor_high_watermark, 0);
    }

    #[test]
    fn priorities_order_and_share() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert!(Priority::Low.capacity_share() < Priority::Normal.capacity_share());
        assert_eq!(Priority::High.capacity_share(), 1.0);
        assert_eq!(Priority::Low.label(), "low");
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_watermarks_rejected() {
        LeaseConfig {
            high_watermark: 2,
            low_watermark: 2,
            ..LeaseConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_chunks")]
    fn inverted_chunk_range_rejected() {
        LeaseConfig {
            min_chunks: 5,
            max_chunks: 4,
            ..LeaseConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "slope_alpha")]
    fn zero_slope_alpha_rejected() {
        LeaseConfig {
            slope_alpha: 0.0,
            ..LeaseConfig::default()
        }
        .validate();
    }
}
