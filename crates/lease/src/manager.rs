//! The elastic lease manager: a pure, deterministic feedback controller.
//!
//! [`LeaseManager`] never touches a cluster. Each tick the caller feeds it
//! one [`NodeSignal`] per node (queue depth, lent-chunk count, dominant
//! tenant); it answers with at most one grow/shrink plus one revoke per
//! node, honoring watermarks, per-node cooldowns, per-tenant quotas, and
//! the chunk range. The caller applies each action against the real
//! borrow/release/revoke flow and reports back via
//! [`LeaseManager::confirm_grow`] / [`LeaseManager::deny_grow`] /
//! [`LeaseManager::confirm_shrink`] / [`LeaseManager::confirm_revoke`],
//! which is when capacity accounting and the event timeline advance.
//! Keeping decision and application separate makes the control loop
//! testable in isolation and keeps every decision on one auditable
//! timeline.
//!
//! Three decision families run per tick:
//!
//! * **grow** — reactive (depth at/above the high watermark) or
//!   *predictive*: an EWMA of the depth slope projects the depth one
//!   establish-latency horizon ahead, and a grow fires early when the
//!   projection crosses the watermark, so the borrowed capacity lands
//!   closer to when the pressure actually peaks;
//! * **shrink** — after `release_cooldown_ticks` *consecutive* calm
//!   ticks, keyed per node (one node's calm streak or release never
//!   starves another's);
//! * **revoke** — a *donor* whose own depth crosses
//!   [`LeaseConfig::donor_high_watermark`] while it has chunks lent out
//!   demands the newest one back.
//!
//! Every confirmed action is attributed to a tenant and lands on a
//! per-tenant byte ledger; grows that would push a tenant past its quota
//! are refused locally ([`LeaseEventKind::QuotaDenied`]) before touching
//! the cluster.

use serde::{Deserialize, Serialize};
use venice_sim::{Time, Timeline};

use crate::config::{LeaseConfig, Priority};

/// Sentinel tenant id: "no tenant attributed" (bootstrap grows, idle
/// nodes). Ledger bytes confirmed under this id land in the
/// *unattributed* bucket, so conservation still holds.
pub const NO_TENANT: u32 = u32::MAX;

/// Sentinel node id carried by [`LeaseEvent::donor`] on every event kind
/// except [`LeaseEventKind::Revoked`].
pub const NO_NODE: u16 = u16::MAX;

/// One node's demand/pressure observation for a control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSignal {
    /// Queued plus in-service requests on the node.
    pub depth: u32,
    /// Chunks this node has lent to *other* nodes (the donor-side
    /// pressure signal's memory half; the cluster ledger is the source
    /// of truth).
    pub lent_chunks: u32,
    /// Fraction of the node's lendable pool currently consumed by
    /// outstanding grants, in `[0, 1]` — the donor-benefit signal. At
    /// [`LeaseConfig::donor_pressure_weight`] `> 0` the revoke trigger
    /// adds `weight * lent_pressure` depth-equivalents, so a donor whose
    /// own service path is degraded by lending reclaims earlier than a
    /// barely lent one at the same queue depth. Ignored (any value) when
    /// the weight is `0.0`.
    pub lent_pressure: f64,
    /// Tenant currently dominating the node's backlog ([`NO_TENANT`]
    /// when idle); grows are attributed — and quota-checked — against it.
    pub tenant: u32,
    /// Priority of that tenant (used for event attribution).
    pub priority: Priority,
}

impl NodeSignal {
    /// A pure-demand signal: `depth` queued, nothing lent, no tenant
    /// attribution (tests and single-tenant callers).
    pub fn depth(depth: u32) -> Self {
        NodeSignal {
            depth,
            lent_chunks: 0,
            lent_pressure: 0.0,
            tenant: NO_TENANT,
            priority: Priority::Normal,
        }
    }
}

/// What the manager wants done to one node's remote tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    /// Borrow one more chunk for `node`.
    Grow {
        /// The node that should borrow.
        node: u16,
        /// Whether the slope predictor fired this grow before the high
        /// watermark tripped.
        predictive: bool,
    },
    /// Release `node`'s newest chunk.
    Shrink {
        /// The node that should release.
        node: u16,
    },
    /// `donor` demands its newest lent chunk back from whichever node
    /// holds it (recipient-side LIFO preference).
    Revoke {
        /// The pressured lending node.
        donor: u16,
    },
    /// Borrow one more chunk for `node` on the sublease market: the
    /// requesting tenant sat at its own quota, so the chunk is charged
    /// against `lessor`'s idle headroom instead. Applied like a grow
    /// (same borrow flow), confirmed via
    /// [`LeaseManager::confirm_sublease`].
    Sublease {
        /// The node that should borrow.
        node: u16,
        /// Tenant whose idle quota headroom pays for the chunk.
        lessor: u32,
    },
}

/// What happened to a lease decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseEventKind {
    /// A chunk was borrowed (reactive trigger).
    Grew,
    /// A chunk was borrowed on the slope predictor's say-so, before the
    /// high watermark tripped.
    GrewPredictive,
    /// A grow was refused by the cluster (no donor capacity).
    Denied,
    /// A grow was refused locally: it would have pushed the attributed
    /// tenant past its byte quota.
    QuotaDenied,
    /// A chunk was released by its calm recipient.
    Shrank,
    /// A chunk was pulled back early by its pressured donor.
    Revoked,
    /// A donor's revoke demand found nothing reclaimable (every lent
    /// grant still mid-establish on its recipient); the revoke cooldown
    /// was still charged.
    RevokeDenied,
    /// A chunk was borrowed on the sublease market: the driving tenant
    /// was at its own quota, so the bytes are charged against the
    /// [`LeaseEvent::lessor`]'s idle headroom instead of refused.
    Subleased,
    /// A subleased chunk was released by its calm recipient; the
    /// lessor's quota headroom is repaid. (A *revoked* subleased chunk
    /// stays [`LeaseEventKind::Revoked`] — the `lessor` field on the
    /// event marks the repayment.)
    SubleaseReturned,
    /// A chunk was lost to a node crash (its donor — or the holding
    /// recipient itself — died): the ledgers unwound without a teardown
    /// handshake, and the manager is free to re-establish elsewhere.
    /// Market chunks repay their lessor exactly as a revoke would.
    FailedOver,
}

impl LeaseEventKind {
    /// Whether this event added a borrowed chunk to its node — the
    /// open edge of a lease lifecycle (telemetry span tracing and
    /// churn accounting key off this classification).
    pub fn opens_chunk(self) -> bool {
        matches!(
            self,
            LeaseEventKind::Grew | LeaseEventKind::GrewPredictive | LeaseEventKind::Subleased
        )
    }

    /// Whether this event removed a borrowed chunk from its node — the
    /// close edge of a lease lifecycle.
    pub fn closes_chunk(self) -> bool {
        matches!(
            self,
            LeaseEventKind::Shrank
                | LeaseEventKind::Revoked
                | LeaseEventKind::SubleaseReturned
                | LeaseEventKind::FailedOver
        )
    }

    /// Whether this event refused a request and left every ledger
    /// unchanged (chunk counts, byte totals, and quota all hold).
    pub fn is_denial(self) -> bool {
        matches!(
            self,
            LeaseEventKind::Denied | LeaseEventKind::QuotaDenied | LeaseEventKind::RevokeDenied
        )
    }
}

/// One entry on the lease timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseEvent {
    /// Simulated time of the decision's application.
    pub at: Time,
    /// The node whose chunk count changed (the recipient, for revokes).
    pub node: u16,
    /// The lending node that demanded the chunk back
    /// ([`LeaseEventKind::Revoked`] only; [`NO_NODE`] otherwise).
    pub donor: u16,
    /// What happened.
    pub kind: LeaseEventKind,
    /// Chunks the node holds after the event.
    pub chunks_after: u32,
    /// Lease generation: a fresh monotonic id for grows, the affected
    /// lease's id for shrinks and revokes, 0 for denials.
    pub generation: u64,
    /// Cluster-wide borrowed bytes after the event.
    pub total_bytes_after: u64,
    /// Tenant the event is attributed to ([`NO_TENANT`] for
    /// unattributed bootstrap capacity).
    pub tenant: u32,
    /// That tenant's ledger bytes after the event (the unattributed
    /// bucket's, when `tenant` is [`NO_TENANT`]) — summing the latest
    /// value per tenant at any prefix of the timeline reproduces
    /// `total_bytes_after`, the conservation law the property tests pin.
    pub tenant_bytes_after: u64,
    /// Tenant whose *quota* the affected chunk is charged against when
    /// that differs from `tenant` — i.e. the chunk was matched on the
    /// sublease market ([`LeaseEventKind::Subleased`], and the return
    /// half on [`LeaseEventKind::SubleaseReturned`] /
    /// [`LeaseEventKind::Revoked`]). [`NO_TENANT`] on every
    /// self-charged event. Replaying `(kind, tenant, lessor)` over the
    /// timeline reconstructs the per-tenant *charged* ledger, which the
    /// quota property test pins against the quotas at every event.
    pub lessor: u32,
    /// Priority of the tenant whose backlog drove the decision.
    pub priority: Priority,
}

/// One confirmed chunk on a node's stack: which grow created it, who
/// uses it, and whose quota pays for it (`lessor == tenant` except for
/// market-matched subleases).
#[derive(Debug, Clone, Copy)]
struct Chunk {
    generation: u64,
    tenant: u32,
    lessor: u32,
}

/// Per-node controller state.
#[derive(Debug, Clone)]
struct NodeState {
    /// Confirmed chunks held, oldest first.
    chunks: Vec<Chunk>,
    /// Tick of the last grow decision (confirmed, denied, or
    /// quota-refused).
    last_grow_tick: Option<u64>,
    /// Tick of the last revoke decision by this node as a donor.
    last_revoke_tick: Option<u64>,
    /// Consecutive calm ticks observed.
    calm_ticks: u32,
    /// Depth observed last tick (slope input). Starts at 0: the manager
    /// is created at cluster bootstrap, before traffic, so the first
    /// tick's slope measures a *genuine* ramp from idle — which is
    /// exactly the burst-onset signal the predictor exists to catch.
    prev_depth: u32,
    /// EWMA of the per-tick depth delta.
    slope: f64,
    /// Whether any signal ever reported this node lending (a positive
    /// `lent_chunks`) — the donor-benefit figures evaluate donor-side
    /// latency over exactly this set.
    lent_seen: bool,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            chunks: Vec::new(),
            last_grow_tick: None,
            last_revoke_tick: None,
            calm_ticks: 0,
            prev_depth: 0,
            slope: 0.0,
            lent_seen: false,
        }
    }
}

/// The cluster-wide elastic lease manager.
///
/// # Example: a minimal grow/shrink loop
///
/// One node, driven by hand: pressure above the high watermark grows
/// the remote tier (the caller applies the borrow and *confirms*);
/// sustained calm below the low watermark releases back to the floor.
///
/// ```
/// use venice_lease::{LeaseAction, LeaseConfig, LeaseManager, NodeSignal, Priority, NO_TENANT};
/// use venice_sim::Time;
///
/// let config = LeaseConfig {
///     min_chunks: 0,
///     max_chunks: 4,
///     high_watermark: 8,
///     low_watermark: 2,
///     release_cooldown_ticks: 3,
///     ..LeaseConfig::default()
/// };
/// let mut m = LeaseManager::new(config, 1);
///
/// // Tick 1: depth 12 is above the high watermark — the manager asks
/// // for one chunk. The caller borrows through its cluster and confirms.
/// let actions = m.tick(Time::from_ms(1), &[NodeSignal::depth(12)]);
/// assert_eq!(actions, vec![LeaseAction::Grow { node: 0, predictive: false }]);
/// let generation = m.confirm_grow(Time::from_ms(1), 0, NO_TENANT, false, Priority::Normal);
/// assert_eq!(m.chunks(0), 1);
///
/// // Three consecutive calm ticks (depth 0 at/below the low watermark)
/// // satisfy the release cooldown: the manager asks for a shrink, and
/// // the caller releases the lease it is actually holding, by name.
/// let mut shrink = None;
/// for t in 2..=4u64 {
///     for action in m.tick(Time::from_ms(t), &[NodeSignal::depth(0)]) {
///         shrink = Some((t, action));
///     }
/// }
/// assert_eq!(shrink, Some((4, LeaseAction::Shrink { node: 0 })));
/// assert_eq!(m.newest_generation(0), Some(generation));
/// m.confirm_shrink(Time::from_ms(4), 0, generation, Priority::Normal);
/// assert_eq!(m.chunks(0), 0);
/// assert_eq!(m.total_bytes(), 0);
/// // Every decision is on the auditable timeline: grow then shrink.
/// assert_eq!(m.timeline().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LeaseManager {
    config: LeaseConfig,
    nodes: Vec<NodeState>,
    /// Byte quota per tenant (empty: no quota enforcement).
    quotas: Vec<u64>,
    /// Confirmed bytes per tenant — the *usage* ledger: bytes whose
    /// chunks serve this tenant's backlog, subleased-in ones included
    /// (grown on demand as tenants appear).
    tenant_bytes: Vec<u64>,
    /// Bytes *charged against* each tenant's quota: own chunks plus
    /// chunks subleased out to other tenants. Identical to
    /// `tenant_bytes` until the sublease market moves them apart; the
    /// quota check always reads this ledger.
    charged_bytes: Vec<u64>,
    /// Confirmed bytes not attributed to any tenant (bootstrap floor).
    unattributed_bytes: u64,
    /// Bytes currently held under a sublease (chunks whose lessor is
    /// not their tenant) — mirrors the cluster's sublease annotations.
    subleased_bytes: u64,
    tick: u64,
    generation: u64,
    grows: u64,
    predictive_grows: u64,
    shrinks: u64,
    revokes: u64,
    failovers: u64,
    revoke_denials: u64,
    denials: u64,
    quota_denials: u64,
    subleases: u64,
    sublease_returns: u64,
    total_bytes: u64,
    peak_bytes: u64,
    /// Time-weighted byte integral for mean-provisioning accounting.
    byte_ps_integral: u128,
    last_change_at: Time,
    timeline: Timeline<LeaseEvent>,
}

impl LeaseManager {
    /// Creates a manager for `nodes` nodes with no tenant quotas, all
    /// starting at zero chunks (apply [`LeaseManager::bootstrap`] to
    /// reach the configured floor).
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`LeaseConfig::validate`]).
    pub fn new(config: LeaseConfig, nodes: u16) -> Self {
        Self::with_quotas(config, nodes, Vec::new())
    }

    /// As [`LeaseManager::new`], with a byte quota per tenant index
    /// (`u64::MAX` entries are effectively unlimited). Grows attributed
    /// to a tenant whose ledger would exceed its quota are refused
    /// locally and recorded as [`LeaseEventKind::QuotaDenied`].
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`LeaseConfig::validate`]).
    pub fn with_quotas(config: LeaseConfig, nodes: u16, quotas: Vec<u64>) -> Self {
        config.validate();
        LeaseManager {
            config,
            nodes: vec![NodeState::new(); nodes as usize],
            tenant_bytes: vec![0; quotas.len()],
            charged_bytes: vec![0; quotas.len()],
            quotas,
            unattributed_bytes: 0,
            subleased_bytes: 0,
            tick: 0,
            generation: 0,
            grows: 0,
            predictive_grows: 0,
            shrinks: 0,
            revokes: 0,
            failovers: 0,
            revoke_denials: 0,
            denials: 0,
            quota_denials: 0,
            subleases: 0,
            sublease_returns: 0,
            total_bytes: 0,
            peak_bytes: 0,
            byte_ps_integral: 0,
            last_change_at: Time::ZERO,
            timeline: Timeline::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    /// Grow actions that bring every node to the `min_chunks` floor;
    /// apply (and confirm) before the run starts.
    pub fn bootstrap(&self) -> Vec<LeaseAction> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for _ in n.chunks.len() as u32..self.config.min_chunks {
                out.push(LeaseAction::Grow {
                    node: i as u16,
                    predictive: false,
                });
            }
        }
        out
    }

    /// One control-loop step at simulated time `now`: `signals[i]` is
    /// node `i`'s current observation. Returns at most one grow-or-shrink
    /// action plus one revoke per node.
    ///
    /// The slope predictor treats the instant before the first tick as
    /// **idle** (depth 0 on every node): the manager is built at cluster
    /// bootstrap, so the first tick's rise from zero is a genuine
    /// burst-onset signal, not an artifact. A caller attaching a fresh
    /// manager to an *already-loaded* system mid-run should feed one
    /// warm-up tick and discard its actions, or the first observation
    /// reads as a full-depth ramp.
    ///
    /// # Panics
    ///
    /// Panics if `signals` does not cover every node.
    pub fn tick(&mut self, now: Time, signals: &[NodeSignal]) -> Vec<LeaseAction> {
        assert_eq!(signals.len(), self.nodes.len(), "one signal per node");
        self.tick += 1;
        let tick = self.tick;
        let mut actions = Vec::new();
        let mut quota_refusals = Vec::new();
        // Bytes already promised against each tenant's *quota* by this
        // tick's earlier grow/sublease actions: the quota check must
        // count them, or several nodes growing for one tenant in the
        // same tick would each pass against the stale pre-tick ledger
        // and jointly overshoot the quota. Keyed by the tenant whose
        // quota pays — the lessor, for market matches — so concurrent
        // sublease matches cannot jointly overshoot a lessor's headroom
        // either.
        let mut promised: Vec<(u32, u64)> = Vec::new();
        for (i, sig) in signals.iter().enumerate() {
            let config = self.config;
            let node = &mut self.nodes[i];
            // Slope first, so the predictor sees this tick's movement.
            let observed = sig.depth as f64 - node.prev_depth as f64;
            node.slope = config.slope_alpha * observed + (1.0 - config.slope_alpha) * node.slope;
            node.prev_depth = sig.depth;

            if sig.lent_chunks > 0 {
                node.lent_seen = true;
            }

            let reactive = sig.depth >= config.high_watermark;
            // Predict only from the *upper half* of the hysteresis band
            // on a rising trend: the predictor's job is to skip the last
            // stretch of an already-demonstrated climb, not to grow
            // half-idle nodes whose burst-time noise briefly slopes
            // upward — that would fan capacity out to every node at each
            // burst onset and starve the genuinely hot ones (measured:
            // it doubles peak provisioning and adds cluster denials).
            let midpoint = (config.low_watermark + config.high_watermark) / 2;
            let predicted = !reactive
                && config.predict_horizon_ticks > 0
                && sig.depth > midpoint
                && node.slope > 0.0
                && sig.depth as f64 + node.slope * config.predict_horizon_ticks as f64
                    >= config.high_watermark as f64;
            // A donor revoke may have pulled the node below its floor —
            // the floor is the controller's to maintain (bootstrap only
            // establishes it), so an under-floor node re-grows on any
            // demand signal, watermarks notwithstanding.
            let under_floor = (node.chunks.len() as u32) < config.min_chunks;
            if reactive || predicted || under_floor {
                node.calm_ticks = 0;
                let cooled = match node.last_grow_tick {
                    None => true,
                    Some(last) => tick - last >= config.grow_cooldown_ticks as u64,
                };
                if (node.chunks.len() as u32) < config.max_chunks && cooled {
                    // Cooldown starts at the decision, not the outcome, so
                    // a denied (or quota-refused) grow also backs off
                    // instead of hammering every tick.
                    node.last_grow_tick = Some(tick);
                    let already = promised
                        .iter()
                        .find(|&&(t, _)| t == sig.tenant)
                        .map(|&(_, b)| b)
                        .unwrap_or(0);
                    if self.quota_blocks_with(sig.tenant, already) {
                        // Over own quota: match against another tenant's
                        // idle headroom (market armed), else refuse.
                        let lessor = if config.sublease_market {
                            self.match_lessor(sig.tenant, &promised)
                        } else {
                            None
                        };
                        match lessor {
                            Some(lessor) => {
                                match promised.iter_mut().find(|(t, _)| *t == lessor) {
                                    Some((_, b)) => *b += config.chunk_bytes,
                                    None => promised.push((lessor, config.chunk_bytes)),
                                }
                                actions.push(LeaseAction::Sublease {
                                    node: i as u16,
                                    lessor,
                                });
                            }
                            None => {
                                quota_refusals.push((i as u16, sig.tenant, sig.priority));
                            }
                        }
                    } else {
                        if sig.tenant != NO_TENANT {
                            match promised.iter_mut().find(|(t, _)| *t == sig.tenant) {
                                Some((_, b)) => *b += config.chunk_bytes,
                                None => promised.push((sig.tenant, config.chunk_bytes)),
                            }
                        }
                        actions.push(LeaseAction::Grow {
                            node: i as u16,
                            predictive: predicted,
                        });
                    }
                }
            } else if sig.depth <= config.low_watermark {
                node.calm_ticks = node.calm_ticks.saturating_add(1);
                if node.calm_ticks >= config.release_cooldown_ticks
                    && node.chunks.len() as u32 > config.min_chunks
                {
                    node.calm_ticks = 0;
                    actions.push(LeaseAction::Shrink { node: i as u16 });
                }
            } else {
                // Inside the hysteresis band with no predicted crossing:
                // hold everything.
                node.calm_ticks = 0;
            }

            // Donor-side reclaim is judged independently of the node's
            // borrow-side state: a node can be a pressured donor and a
            // (quota-blocked) would-be borrower in the same tick. With
            // `donor_pressure_weight` armed the trigger is cost-aware:
            // the lent-pressure signal adds depth-equivalents, so a
            // donor whose own service path is degraded by heavy lending
            // reclaims before its raw depth reaches the watermark.
            let donor_pressured = sig.depth >= config.donor_high_watermark
                || (config.donor_pressure_weight > 0.0
                    && sig.depth as f64 + config.donor_pressure_weight * sig.lent_pressure
                        >= config.donor_high_watermark as f64);
            if config.donor_high_watermark > 0 && donor_pressured && sig.lent_chunks > 0 {
                let node = &mut self.nodes[i];
                let cooled = match node.last_revoke_tick {
                    None => true,
                    Some(last) => tick - last >= config.revoke_cooldown_ticks as u64,
                };
                if cooled {
                    // The cooldown is charged at the decision — like a
                    // grow's — so a surrendered revoke (nothing visible
                    // to reclaim) must be reported back through
                    // [`LeaseManager::deny_revoke`] to stay auditable.
                    node.last_revoke_tick = Some(tick);
                    actions.push(LeaseAction::Revoke { donor: i as u16 });
                }
            }
        }
        for (node, tenant, priority) in quota_refusals {
            self.quota_denials += 1;
            let chunks_after = self.nodes[node as usize].chunks.len() as u32;
            let tenant_bytes_after = self.bucket(tenant);
            self.log(LeaseEvent {
                at: now,
                node,
                donor: NO_NODE,
                kind: LeaseEventKind::QuotaDenied,
                chunks_after,
                generation: 0,
                total_bytes_after: self.total_bytes,
                tenant,
                tenant_bytes_after,
                lessor: NO_TENANT,
                priority,
            });
        }
        actions
    }

    /// Whether confirming one more chunk for `tenant` would exceed its
    /// quota (always `false` for [`NO_TENANT`], tenants past the quota
    /// table, or a manager built without quotas). Judged against the
    /// *charged* ledger: bytes the tenant has subleased out count
    /// against it, bytes it holds via sublease do not.
    pub fn quota_blocks(&self, tenant: u32) -> bool {
        self.quota_blocks_with(tenant, 0)
    }

    /// As [`LeaseManager::quota_blocks`], with `promised` bytes already
    /// charged to the tenant by this tick's earlier decisions counted in.
    fn quota_blocks_with(&self, tenant: u32, promised: u64) -> bool {
        tenant != NO_TENANT
            && (tenant as usize) < self.quotas.len()
            && self.charged(tenant) + promised + self.config.chunk_bytes
                > self.quotas[tenant as usize]
    }

    /// Market matching: the finite-quota tenant (other than `tenant`)
    /// with the most idle headroom — quota minus charged bytes minus
    /// this tick's already-promised bytes — provided at least one chunk
    /// fits. Ties break to the lowest tenant index; tenants with
    /// unlimited (`u64::MAX`) quotas never lease headroom they do not
    /// meaningfully own. Deterministic by construction.
    fn match_lessor(&self, tenant: u32, promised: &[(u32, u64)]) -> Option<u32> {
        let chunk = self.config.chunk_bytes;
        let mut best: Option<(u32, u64)> = None;
        for l in 0..self.quotas.len() as u32 {
            if l == tenant || self.quotas[l as usize] == u64::MAX {
                continue;
            }
            let reserved = promised
                .iter()
                .find(|&&(t, _)| t == l)
                .map(|&(_, b)| b)
                .unwrap_or(0);
            let headroom = self.quotas[l as usize]
                .saturating_sub(self.charged(l))
                .saturating_sub(reserved);
            if headroom >= chunk && best.map(|(_, h)| headroom > h).unwrap_or(true) {
                best = Some((l, headroom));
            }
        }
        best.map(|(l, _)| l)
    }

    /// Records a successful grow of `node` at `now`, attributed to
    /// `tenant` (ledger and quota accounting) at `priority`. Returns the
    /// new lease's generation.
    pub fn confirm_grow(
        &mut self,
        now: Time,
        node: u16,
        tenant: u32,
        predictive: bool,
        priority: Priority,
    ) -> u64 {
        self.integrate(now);
        self.generation += 1;
        let generation = self.generation;
        let n = &mut self.nodes[node as usize];
        n.chunks.push(Chunk {
            generation,
            tenant,
            lessor: tenant,
        });
        let chunks_after = n.chunks.len() as u32;
        self.grows += 1;
        let kind = if predictive {
            self.predictive_grows += 1;
            LeaseEventKind::GrewPredictive
        } else {
            LeaseEventKind::Grew
        };
        self.total_bytes += self.config.chunk_bytes;
        self.peak_bytes = self.peak_bytes.max(self.total_bytes);
        let tenant_bytes_after = self.bucket_add(tenant, self.config.chunk_bytes);
        self.charged_add(tenant, self.config.chunk_bytes);
        self.log(LeaseEvent {
            at: now,
            node,
            donor: NO_NODE,
            kind,
            chunks_after,
            generation,
            total_bytes_after: self.total_bytes,
            tenant,
            tenant_bytes_after,
            lessor: NO_TENANT,
            priority,
        });
        generation
    }

    /// Records a successful market-matched grow of `node` at `now`: the
    /// chunk serves `tenant`'s backlog but is charged against `lessor`'s
    /// idle quota headroom. Returns the new lease's generation.
    ///
    /// # Panics
    ///
    /// Panics if `lessor` equals `tenant` (that is a plain grow — use
    /// [`LeaseManager::confirm_grow`]) or is [`NO_TENANT`] (unattributed
    /// capacity cannot lease headroom).
    pub fn confirm_sublease(
        &mut self,
        now: Time,
        node: u16,
        tenant: u32,
        lessor: u32,
        priority: Priority,
    ) -> u64 {
        assert_ne!(lessor, tenant, "self-sublease is a plain grow");
        assert_ne!(lessor, NO_TENANT, "sublease needs a real lessor");
        self.integrate(now);
        self.generation += 1;
        let generation = self.generation;
        let n = &mut self.nodes[node as usize];
        n.chunks.push(Chunk {
            generation,
            tenant,
            lessor,
        });
        let chunks_after = n.chunks.len() as u32;
        self.subleases += 1;
        self.total_bytes += self.config.chunk_bytes;
        self.peak_bytes = self.peak_bytes.max(self.total_bytes);
        self.subleased_bytes += self.config.chunk_bytes;
        let tenant_bytes_after = self.bucket_add(tenant, self.config.chunk_bytes);
        self.charged_add(lessor, self.config.chunk_bytes);
        self.log(LeaseEvent {
            at: now,
            node,
            donor: NO_NODE,
            kind: LeaseEventKind::Subleased,
            chunks_after,
            generation,
            total_bytes_after: self.total_bytes,
            tenant,
            tenant_bytes_after,
            lessor,
            priority,
        });
        generation
    }

    /// Records a grow refused by the cluster (donor capacity exhausted).
    pub fn deny_grow(&mut self, now: Time, node: u16, tenant: u32, priority: Priority) {
        self.denials += 1;
        let chunks_after = self.nodes[node as usize].chunks.len() as u32;
        let tenant_bytes_after = self.bucket(tenant);
        self.log(LeaseEvent {
            at: now,
            node,
            donor: NO_NODE,
            kind: LeaseEventKind::Denied,
            chunks_after,
            generation: 0,
            total_bytes_after: self.total_bytes,
            tenant,
            tenant_bytes_after,
            lessor: NO_TENANT,
            priority,
        });
    }

    /// Records a successful release of `node`'s lease `generation` at
    /// `now`. The caller names the lease explicitly because its view of
    /// "newest" may lag the manager's: a revoke-pending chunk stays on
    /// the manager's stack until its teardown confirms, so a shrink
    /// landing inside that window releases the newest *still-releasable*
    /// lease, not the manager's top of stack — a positional pop here
    /// would repay the wrong tenant and panic the later revoke confirm.
    /// Strictly LIFO callers can pass
    /// [`LeaseManager::newest_generation`].
    ///
    /// # Panics
    ///
    /// Panics if the node holds no chunk of that generation (accounting
    /// bug in the caller).
    pub fn confirm_shrink(&mut self, now: Time, node: u16, generation: u64, priority: Priority) {
        self.integrate(now);
        let n = &mut self.nodes[node as usize];
        let idx = n
            .chunks
            .iter()
            .position(|c| c.generation == generation)
            .expect("shrink of a generation the node does not hold");
        let chunk = n.chunks.remove(idx);
        let chunks_after = n.chunks.len() as u32;
        self.shrinks += 1;
        self.total_bytes -= self.config.chunk_bytes;
        let tenant_bytes_after = self.bucket_sub(chunk.tenant, self.config.chunk_bytes);
        self.charged_sub(chunk.lessor, self.config.chunk_bytes);
        // Releasing a market-matched chunk repays the lessor's headroom:
        // the event kind says so, and the `lessor` field names them.
        let subleased = chunk.lessor != chunk.tenant;
        let kind = if subleased {
            self.sublease_returns += 1;
            self.subleased_bytes -= self.config.chunk_bytes;
            LeaseEventKind::SubleaseReturned
        } else {
            LeaseEventKind::Shrank
        };
        self.log(LeaseEvent {
            at: now,
            node,
            donor: NO_NODE,
            kind,
            chunks_after,
            generation: chunk.generation,
            total_bytes_after: self.total_bytes,
            tenant: chunk.tenant,
            tenant_bytes_after,
            lessor: if subleased { chunk.lessor } else { NO_TENANT },
            priority,
        });
    }

    /// Records `donor`'s revoke demand that found nothing reclaimable —
    /// every grant it has lent out is still mid-establish on its
    /// recipient. The cooldown was already charged at the decision, so
    /// without this record a pressured donor's wait would be invisible
    /// on the timeline.
    pub fn deny_revoke(&mut self, now: Time, donor: u16, priority: Priority) {
        self.revoke_denials += 1;
        let chunks_after = self.nodes[donor as usize].chunks.len() as u32;
        self.log(LeaseEvent {
            at: now,
            node: donor,
            donor,
            kind: LeaseEventKind::RevokeDenied,
            chunks_after,
            generation: 0,
            total_bytes_after: self.total_bytes,
            tenant: NO_TENANT,
            tenant_bytes_after: self.unattributed_bytes,
            lessor: NO_TENANT,
            priority,
        });
    }

    /// Records `donor`'s successful revoke of the lease `generation` held
    /// by `recipient` at `now`. Unlike a shrink, the revoked chunk may
    /// sit anywhere in the recipient's stack — the donor demands *its*
    /// newest lent chunk, which is not necessarily the recipient's
    /// newest borrow.
    ///
    /// # Panics
    ///
    /// Panics if `recipient` holds no chunk of that generation
    /// (accounting bug in the caller).
    pub fn confirm_revoke(
        &mut self,
        now: Time,
        donor: u16,
        recipient: u16,
        generation: u64,
        priority: Priority,
    ) {
        self.integrate(now);
        let n = &mut self.nodes[recipient as usize];
        let idx = n
            .chunks
            .iter()
            .position(|c| c.generation == generation)
            .expect("revoke of a generation the recipient does not hold");
        let chunk = n.chunks.remove(idx);
        let chunks_after = n.chunks.len() as u32;
        self.revokes += 1;
        self.total_bytes -= self.config.chunk_bytes;
        let tenant_bytes_after = self.bucket_sub(chunk.tenant, self.config.chunk_bytes);
        self.charged_sub(chunk.lessor, self.config.chunk_bytes);
        // A revoked market chunk also repays its lessor; the kind stays
        // `Revoked` (the donor's demand is the story) and the `lessor`
        // field carries the repayment.
        let subleased = chunk.lessor != chunk.tenant;
        if subleased {
            self.sublease_returns += 1;
            self.subleased_bytes -= self.config.chunk_bytes;
        }
        self.log(LeaseEvent {
            at: now,
            node: recipient,
            donor,
            kind: LeaseEventKind::Revoked,
            chunks_after,
            generation,
            total_bytes_after: self.total_bytes,
            tenant: chunk.tenant,
            tenant_bytes_after,
            lessor: if subleased { chunk.lessor } else { NO_TENANT },
            priority,
        });
    }

    /// Records the crash-driven loss of the chunk `generation` held by
    /// `recipient` at `now`: its donor `donor` died (or `recipient`
    /// itself did — pass the lease's donor either way), so the chunk is
    /// gone without a teardown handshake. The ledger moves mirror
    /// [`LeaseManager::confirm_revoke`] — bytes leave the totals, a
    /// market chunk repays its lessor — but the event kind says *crash*,
    /// and the failover counter lets reports separate adversity from
    /// policy. The manager holds no replacement open: the next tick's
    /// pressure signal re-grows through the ordinary decision path
    /// (paying the establish latency on a surviving donor), or the
    /// caller re-borrows immediately and confirms as a grow.
    ///
    /// # Panics
    ///
    /// Panics if `recipient` holds no chunk of that generation
    /// (accounting bug in the caller).
    pub fn confirm_failover(
        &mut self,
        now: Time,
        donor: u16,
        recipient: u16,
        generation: u64,
        priority: Priority,
    ) {
        self.integrate(now);
        let n = &mut self.nodes[recipient as usize];
        let idx = n
            .chunks
            .iter()
            .position(|c| c.generation == generation)
            .expect("failover of a generation the recipient does not hold");
        let chunk = n.chunks.remove(idx);
        let chunks_after = n.chunks.len() as u32;
        self.failovers += 1;
        self.total_bytes -= self.config.chunk_bytes;
        let tenant_bytes_after = self.bucket_sub(chunk.tenant, self.config.chunk_bytes);
        self.charged_sub(chunk.lessor, self.config.chunk_bytes);
        let subleased = chunk.lessor != chunk.tenant;
        if subleased {
            self.sublease_returns += 1;
            self.subleased_bytes -= self.config.chunk_bytes;
        }
        self.log(LeaseEvent {
            at: now,
            node: recipient,
            donor,
            kind: LeaseEventKind::FailedOver,
            chunks_after,
            generation,
            total_bytes_after: self.total_bytes,
            tenant: chunk.tenant,
            tenant_bytes_after,
            lessor: if subleased { chunk.lessor } else { NO_TENANT },
            priority,
        });
    }

    /// Records `event` on the timeline, keyed by the event's own
    /// timestamp — one source of truth, so the timeline key and
    /// [`LeaseEvent::at`] can never drift apart.
    fn log(&mut self, event: LeaseEvent) {
        self.timeline.record(event.at, event);
    }

    /// Advances the time-weighted byte integral to `now`.
    fn integrate(&mut self, now: Time) {
        let dt = now.saturating_sub(self.last_change_at);
        self.byte_ps_integral += self.total_bytes as u128 * dt.as_ps() as u128;
        self.last_change_at = now;
    }

    /// The ledger bucket `tenant` maps to, read-only.
    fn bucket(&self, tenant: u32) -> u64 {
        if tenant == NO_TENANT {
            self.unattributed_bytes
        } else {
            self.tenant_bytes.get(tenant as usize).copied().unwrap_or(0)
        }
    }

    /// Adds `bytes` to `tenant`'s bucket, returning the new value.
    fn bucket_add(&mut self, tenant: u32, bytes: u64) -> u64 {
        if tenant == NO_TENANT {
            self.unattributed_bytes += bytes;
            self.unattributed_bytes
        } else {
            let idx = tenant as usize;
            if idx >= self.tenant_bytes.len() {
                self.tenant_bytes.resize(idx + 1, 0);
            }
            self.tenant_bytes[idx] += bytes;
            self.tenant_bytes[idx]
        }
    }

    /// Subtracts `bytes` from `tenant`'s bucket, returning the new value.
    fn bucket_sub(&mut self, tenant: u32, bytes: u64) -> u64 {
        if tenant == NO_TENANT {
            self.unattributed_bytes -= bytes;
            self.unattributed_bytes
        } else {
            let idx = tenant as usize;
            self.tenant_bytes[idx] -= bytes;
            self.tenant_bytes[idx]
        }
    }

    /// Bytes charged against `tenant`'s quota right now. Unattributed
    /// capacity is always self-charged, so the [`NO_TENANT`] bucket is
    /// the unattributed one.
    fn charged(&self, tenant: u32) -> u64 {
        if tenant == NO_TENANT {
            self.unattributed_bytes
        } else {
            self.charged_bytes
                .get(tenant as usize)
                .copied()
                .unwrap_or(0)
        }
    }

    /// Adds `bytes` to `tenant`'s charged bucket. [`NO_TENANT`] is a
    /// no-op: the unattributed bucket is shared with the usage ledger
    /// and already moved by [`LeaseManager::bucket_add`].
    fn charged_add(&mut self, tenant: u32, bytes: u64) {
        if tenant != NO_TENANT {
            let idx = tenant as usize;
            if idx >= self.charged_bytes.len() {
                self.charged_bytes.resize(idx + 1, 0);
            }
            self.charged_bytes[idx] += bytes;
        }
    }

    /// Subtracts `bytes` from `tenant`'s charged bucket ([`NO_TENANT`]:
    /// no-op, see [`LeaseManager::charged_add`]).
    fn charged_sub(&mut self, tenant: u32, bytes: u64) {
        if tenant != NO_TENANT {
            self.charged_bytes[tenant as usize] -= bytes;
        }
    }

    /// Chunks `node` currently holds.
    pub fn chunks(&self, node: u16) -> u32 {
        self.nodes[node as usize].chunks.len() as u32
    }

    /// The generation of `node`'s newest confirmed chunk (`None` when it
    /// holds nothing) — what a strictly LIFO caller is about to release.
    pub fn newest_generation(&self, node: u16) -> Option<u64> {
        self.nodes[node as usize]
            .chunks
            .last()
            .map(|c| c.generation)
    }

    /// Bytes `node` currently holds.
    pub fn held_bytes(&self, node: u16) -> u64 {
        self.chunks(node) as u64 * self.config.chunk_bytes
    }

    /// Cluster-wide borrowed bytes right now.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Highest cluster-wide borrowed bytes seen so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// `tenant`'s confirmed ledger bytes right now.
    pub fn tenant_bytes(&self, tenant: u32) -> u64 {
        self.bucket(tenant)
    }

    /// The per-tenant usage ledger (indexed by tenant id; tenants that
    /// never drove a lease hold 0). Counts the bytes whose chunks serve
    /// each tenant's backlog — subleased-in chunks included.
    pub fn tenant_ledger(&self) -> &[u64] {
        &self.tenant_bytes
    }

    /// Bytes charged against `tenant`'s quota right now: its own chunks
    /// plus chunks it subleased out. Equals
    /// [`LeaseManager::tenant_bytes`] until the market moves them apart.
    pub fn charged_bytes_of(&self, tenant: u32) -> u64 {
        self.charged(tenant)
    }

    /// The per-tenant charged ledger (what the quota check reads), in
    /// tenant-index order.
    pub fn charged_ledger(&self) -> &[u64] {
        &self.charged_bytes
    }

    /// Bytes currently held under a market sublease (chunks whose
    /// paying tenant is not their using tenant). The engine cross-checks
    /// this against the cluster's sublease annotations at end of run.
    pub fn subleased_bytes(&self) -> u64 {
        self.subleased_bytes
    }

    /// Confirmed bytes not attributed to any tenant (bootstrap floor).
    pub fn unattributed_bytes(&self) -> u64 {
        self.unattributed_bytes
    }

    /// Time-weighted mean of cluster-wide borrowed bytes over `[0, end]`
    /// — or over `[0, last event]` when events were confirmed past `end`,
    /// so a too-short `end` can never inflate the mean beyond what was
    /// actually integrated.
    pub fn mean_bytes(&self, end: Time) -> u64 {
        let end = end.max(self.last_change_at);
        if end == Time::ZERO {
            return self.total_bytes;
        }
        let tail = end.saturating_sub(self.last_change_at);
        let integral = self.byte_ps_integral + self.total_bytes as u128 * tail.as_ps() as u128;
        (integral / end.as_ps() as u128) as u64
    }

    /// Successful grows so far (predictive ones included).
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Grows fired by the slope predictor before the watermark tripped.
    pub fn predictive_grows(&self) -> u64 {
        self.predictive_grows
    }

    /// Successful shrinks so far.
    pub fn shrinks(&self) -> u64 {
        self.shrinks
    }

    /// Successful donor-demanded revokes so far.
    pub fn revokes(&self) -> u64 {
        self.revokes
    }

    /// Chunks lost to node crashes so far (confirmed failovers).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Revoke demands that found nothing reclaimable so far.
    pub fn revoke_denials(&self) -> u64 {
        self.revoke_denials
    }

    /// Cluster-refused grows so far.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// Quota-refused grows so far. With the market armed these are the
    /// refusals *no lessor* could absorb — the matched ones are counted
    /// by [`LeaseManager::subleases`] instead.
    pub fn quota_denials(&self) -> u64 {
        self.quota_denials
    }

    /// Market-matched grows so far (quota refusals converted into
    /// subleases).
    pub fn subleases(&self) -> u64 {
        self.subleases
    }

    /// Subleased chunks returned so far (calm releases *and* donor
    /// revokes of market chunks — both repay the lessor).
    pub fn sublease_returns(&self) -> u64 {
        self.sublease_returns
    }

    /// Nodes that ever reported chunks lent out in a tick signal, in
    /// node order — the donor set the donor-benefit figures evaluate.
    pub fn donor_nodes(&self) -> Vec<u16> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.lent_seen)
            .map(|(i, _)| i as u16)
            .collect()
    }

    /// The full decision timeline.
    pub fn timeline(&self) -> &Timeline<LeaseEvent> {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            chunk_bytes: 64 << 20,
            min_chunks: 1,
            max_chunks: 4,
            high_watermark: 8,
            low_watermark: 2,
            grow_cooldown_ticks: 2,
            release_cooldown_ticks: 3,
            tick_interval: Time::from_ms(1),
            ..LeaseConfig::default()
        }
    }

    fn depths(values: &[u32]) -> Vec<NodeSignal> {
        values.iter().map(|&d| NodeSignal::depth(d)).collect()
    }

    /// Applies every action immediately, confirming grows.
    fn apply_all(m: &mut LeaseManager, now: Time, actions: &[LeaseAction]) {
        for a in actions {
            match *a {
                LeaseAction::Grow { node, predictive } => {
                    m.confirm_grow(now, node, NO_TENANT, predictive, Priority::Normal);
                }
                LeaseAction::Shrink { node } => {
                    let g = m.newest_generation(node).expect("shrink of an empty node");
                    m.confirm_shrink(now, node, g, Priority::Normal);
                }
                LeaseAction::Revoke { .. } | LeaseAction::Sublease { .. } => {
                    unreachable!("no revokes or subleases in these tests")
                }
            }
        }
    }

    #[test]
    fn failover_unwinds_the_ledger_without_a_replacement() {
        let mut m = LeaseManager::new(cfg(), 2);
        let g = m.confirm_grow(Time::from_ms(1), 0, NO_TENANT, false, Priority::Normal);
        assert_eq!(m.total_bytes(), 64 << 20);
        m.confirm_failover(Time::from_ms(2), 1, 0, g, Priority::Normal);
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.chunks(0), 0);
        assert_eq!(m.failovers(), 1);
        assert_eq!(m.revokes(), 0, "a crash is not a policy revoke");
        let (_, last) = m.timeline().iter().last().unwrap();
        assert_eq!(last.kind, LeaseEventKind::FailedOver);
        assert_eq!(last.donor, 1);
        assert!(last.kind.closes_chunk());
    }

    #[test]
    fn failover_of_a_market_chunk_repays_the_lessor() {
        let mut m = LeaseManager::with_quotas(cfg(), 2, vec![64 << 20, 256 << 20]);
        let g = m.confirm_sublease(Time::from_ms(1), 0, 0, 1, Priority::Normal);
        assert_eq!(m.subleased_bytes(), 64 << 20);
        assert_eq!(m.charged_bytes_of(1), 64 << 20);
        m.confirm_failover(Time::from_ms(2), 1, 0, g, Priority::Normal);
        assert_eq!(m.subleased_bytes(), 0);
        assert_eq!(m.charged_bytes_of(1), 0);
        assert_eq!(m.sublease_returns(), 1);
    }

    #[test]
    fn bootstrap_reaches_the_floor() {
        let mut m = LeaseManager::new(cfg(), 4);
        let boot = m.bootstrap();
        assert_eq!(boot.len(), 4);
        apply_all(&mut m, Time::ZERO, &boot);
        for n in 0..4 {
            assert_eq!(m.chunks(n), 1);
        }
        assert!(m.bootstrap().is_empty());
        assert_eq!(m.total_bytes(), 4 * (64 << 20));
        assert_eq!(m.unattributed_bytes(), 4 * (64 << 20));
    }

    #[test]
    fn sustained_pressure_grows_to_the_cap_with_cooldown() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        let mut grow_ticks = Vec::new();
        for t in 1..=20u64 {
            let now = Time::from_ms(t);
            let actions = m.tick(now, &depths(&[100]));
            if !actions.is_empty() {
                grow_ticks.push(t);
            }
            apply_all(&mut m, now, &actions);
        }
        // 1 (floor) + 3 grows to reach max_chunks = 4.
        assert_eq!(m.chunks(0), 4);
        assert_eq!(grow_ticks.len(), 3);
        // Grows respect the cooldown spacing.
        for w in grow_ticks.windows(2) {
            assert!(w[1] - w[0] >= 2, "grows too close: {grow_ticks:?}");
        }
        // At the cap, pressure produces no further actions.
        assert!(m.tick(Time::from_ms(30), &depths(&[100])).is_empty());
    }

    #[test]
    fn calm_nodes_release_after_hysteresis_and_stop_at_floor() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        // Pump to the cap.
        for t in 1..=10u64 {
            let now = Time::from_ms(t);
            let a = m.tick(now, &depths(&[50]));
            apply_all(&mut m, now, &a);
        }
        assert_eq!(m.chunks(0), 4);
        // Calm ticks: a release fires every `release_cooldown_ticks` calm
        // ticks until the floor.
        let mut shrink_ticks = Vec::new();
        for t in 11..=30u64 {
            let now = Time::from_ms(t);
            let a = m.tick(now, &depths(&[0]));
            if !a.is_empty() {
                assert_eq!(a, vec![LeaseAction::Shrink { node: 0 }]);
                shrink_ticks.push(t);
            }
            apply_all(&mut m, now, &a);
        }
        assert_eq!(m.chunks(0), 1, "released down to the floor");
        assert_eq!(shrink_ticks, vec![13, 16, 19]);
    }

    #[test]
    fn band_oscillation_causes_no_churn() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        // Depth oscillating strictly inside (low, high): no actions ever
        // (the oscillation's EWMA slope never projects a crossing — it
        // alternates sign, so the predictor stays quiet even when armed).
        for t in 1..=100u64 {
            let depth = if t % 2 == 0 { 3 } else { 7 };
            assert!(m.tick(Time::from_ms(t), &depths(&[depth])).is_empty());
        }
        // Even calm ticks interleaved with in-band ticks never release:
        // the calm counter resets inside the band.
        for t in 101..=200u64 {
            let depth = if t % 2 == 0 { 0 } else { 5 };
            assert!(m.tick(Time::from_ms(t), &depths(&[depth])).is_empty());
        }
    }

    #[test]
    fn denied_grow_backs_off() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        let a = m.tick(Time::from_ms(1), &depths(&[99]));
        assert_eq!(a.len(), 1);
        m.deny_grow(Time::from_ms(1), 0, NO_TENANT, Priority::Normal);
        // The very next tick must not retry (cooldown applies to the
        // decision, confirmed or not).
        assert!(m.tick(Time::from_ms(2), &depths(&[99])).is_empty());
        assert_eq!(m.denials(), 1);
        assert!(!m.tick(Time::from_ms(3), &depths(&[99])).is_empty());
    }

    #[test]
    fn predictor_grows_before_the_watermark_trips() {
        let config = LeaseConfig {
            predict_horizon_ticks: 10,
            slope_alpha: 0.5,
            ..cfg()
        };
        let mut reactive = LeaseManager::new(cfg(), 1);
        let mut predictive = LeaseManager::new(config, 1);
        let boot = reactive.bootstrap();
        apply_all(&mut reactive, Time::ZERO, &boot);
        let boot = predictive.bootstrap();
        apply_all(&mut predictive, Time::ZERO, &boot);
        // A steady ramp: depth t at tick t — crosses high_watermark=8 at
        // tick 8, but the slope (~1/tick) projects the crossing 10 ticks
        // out as soon as the depth clears the low watermark.
        let mut first_reactive = None;
        let mut first_predictive = None;
        for t in 1..=10u64 {
            let now = Time::from_ms(t);
            let d = depths(&[t as u32]);
            if !reactive.tick(now, &d).is_empty() && first_reactive.is_none() {
                first_reactive = Some(t);
            }
            let acts = predictive.tick(now, &d);
            if let Some(LeaseAction::Grow { predictive: p, .. }) = acts.first() {
                if first_predictive.is_none() {
                    first_predictive = Some(t);
                    assert!(*p, "early grow must be flagged predictive");
                    predictive.confirm_grow(now, 0, 7, true, Priority::High);
                }
            }
        }
        let (r, p) = (first_reactive.unwrap(), first_predictive.unwrap());
        assert!(p < r, "predictive grow at tick {p} not before reactive {r}");
        assert_eq!(predictive.predictive_grows(), 1);
        let last = predictive.timeline().last().unwrap().1;
        assert_eq!(last.kind, LeaseEventKind::GrewPredictive);
        assert_eq!(last.tenant, 7);
    }

    #[test]
    fn calm_nodes_never_grow_predictively() {
        // Depth at/below the low watermark stays in the shrink regime no
        // matter how steep the (noise) slope is.
        let config = LeaseConfig {
            predict_horizon_ticks: 100,
            ..cfg()
        };
        let mut m = LeaseManager::new(config, 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        for t in 1..=50u64 {
            let depth = (t % 3) as u32; // 0,1,2 — never above low=2
            let acts = m.tick(Time::from_ms(t), &depths(&[depth]));
            assert!(
                !acts.iter().any(|a| matches!(a, LeaseAction::Grow { .. })),
                "tick {t}: grew on calm noise"
            );
        }
    }

    #[test]
    fn pressured_donor_revokes_with_cooldown() {
        let config = LeaseConfig {
            donor_high_watermark: 6,
            revoke_cooldown_ticks: 4,
            ..cfg()
        };
        let mut m = LeaseManager::new(config, 2);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        // Node 1 borrowed a chunk (generation of its newest lease).
        let generation = m.confirm_grow(Time::from_us(10), 1, 3, false, Priority::Normal);
        // Node 0 is a pressured donor: depth 9 >= donor watermark 6, one
        // chunk lent out. But node 0's depth also exceeds the high
        // watermark — it may grow *and* revoke in the same tick.
        let signal = |lent| NodeSignal {
            depth: 9,
            lent_chunks: lent,
            lent_pressure: 0.0,
            tenant: NO_TENANT,
            priority: Priority::Normal,
        };
        let acts = m.tick(Time::from_ms(1), &[signal(1), NodeSignal::depth(5)]);
        assert!(acts.contains(&LeaseAction::Revoke { donor: 0 }));
        m.confirm_revoke(Time::from_ms(1), 0, 1, generation, Priority::Normal);
        assert_eq!(m.revokes(), 1);
        assert_eq!(m.chunks(1), 1, "revoke removed the borrowed chunk");
        assert_eq!(m.tenant_bytes(3), 0, "tenant ledger repaid");
        // Cooldown: the next three ticks may not revoke again.
        for t in 2..=4u64 {
            let acts = m.tick(Time::from_ms(t), &[signal(1), NodeSignal::depth(5)]);
            assert!(
                !acts.iter().any(|a| matches!(a, LeaseAction::Revoke { .. })),
                "tick {t}: revoked inside cooldown"
            );
        }
        let acts = m.tick(Time::from_ms(5), &[signal(1), NodeSignal::depth(5)]);
        assert!(acts.contains(&LeaseAction::Revoke { donor: 0 }));
        // A donor with nothing lent never revokes, however pressured.
        let acts = m.tick(Time::from_ms(20), &[signal(0), NodeSignal::depth(5)]);
        assert!(!acts.iter().any(|a| matches!(a, LeaseAction::Revoke { .. })));
    }

    #[test]
    fn revoked_below_floor_regrows_without_a_watermark() {
        // A donor pulls a floor chunk back; the recipient sits below
        // min_chunks with in-band demand (no watermark trip). The floor
        // is the controller's to maintain: it re-grows anyway.
        let mut m = LeaseManager::new(cfg(), 1);
        let g = m.confirm_grow(Time::ZERO, 0, NO_TENANT, false, Priority::Normal);
        assert_eq!(m.chunks(0), 1); // at the floor
        m.confirm_revoke(Time::from_ms(1), 1, 0, g, Priority::Normal);
        assert_eq!(m.chunks(0), 0, "revoked below the floor");
        // Depth 5 sits strictly inside the (2, 8) band: neither
        // watermark would fire, but the under-floor grow does.
        let acts = m.tick(Time::from_ms(2), &depths(&[5]));
        assert_eq!(
            acts,
            vec![LeaseAction::Grow {
                node: 0,
                predictive: false
            }]
        );
        m.confirm_grow(Time::from_ms(2), 0, NO_TENANT, false, Priority::Normal);
        assert_eq!(m.chunks(0), 1, "floor restored");
        // Back at the floor: the same in-band demand is quiet again.
        for t in 4..=8u64 {
            assert!(m.tick(Time::from_ms(t), &depths(&[5])).is_empty());
        }
    }

    #[test]
    fn surrendered_revokes_are_denied_on_the_timeline() {
        let config = LeaseConfig {
            donor_high_watermark: 6,
            revoke_cooldown_ticks: 4,
            ..cfg()
        };
        let mut m = LeaseManager::new(config, 1);
        let sig = NodeSignal {
            depth: 9,
            lent_chunks: 1,
            lent_pressure: 0.0,
            tenant: NO_TENANT,
            priority: Priority::High,
        };
        let acts = m.tick(Time::from_ms(1), &[sig]);
        assert!(acts.contains(&LeaseAction::Revoke { donor: 0 }));
        // The caller found nothing visible to reclaim: the surrender is
        // recorded, and the cooldown (charged at the decision) shows as
        // a denial instead of silence.
        m.deny_revoke(Time::from_ms(1), 0, Priority::High);
        assert_eq!(m.revoke_denials(), 1);
        assert_eq!(m.revokes(), 0);
        let last = m.timeline().last().unwrap().1;
        assert_eq!(last.kind, LeaseEventKind::RevokeDenied);
        assert_eq!(last.donor, 0);
        assert_eq!(last.priority, Priority::High);
        // Still cooling: no retry next tick.
        assert!(!m
            .tick(Time::from_ms(2), &[sig])
            .contains(&LeaseAction::Revoke { donor: 0 }));
    }

    #[test]
    fn revoke_removes_mid_stack_chunks() {
        let mut m = LeaseManager::new(cfg(), 2);
        let g1 = m.confirm_grow(Time::from_us(1), 0, 1, false, Priority::Normal);
        let g2 = m.confirm_grow(Time::from_us(2), 0, 2, false, Priority::Normal);
        // Revoke the *older* lease (donor LIFO picked it): the newer one
        // survives untouched.
        m.confirm_revoke(Time::from_us(3), 1, 0, g1, Priority::Normal);
        assert_eq!(m.chunks(0), 1);
        assert_eq!(m.tenant_bytes(1), 0);
        assert_eq!(m.tenant_bytes(2), 64 << 20);
        // A shrink now pops the surviving lease.
        assert_eq!(m.newest_generation(0), Some(g2));
        m.confirm_shrink(Time::from_us(4), 0, g2, Priority::Normal);
        let last = m.timeline().last().unwrap().1;
        assert_eq!(last.generation, g2);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn quota_refuses_grow_locally_and_backs_off() {
        // One tenant with a one-chunk quota.
        let config = cfg();
        let mut m = LeaseManager::with_quotas(config, 1, vec![config.chunk_bytes]);
        let sig = |tenant| NodeSignal {
            depth: 50,
            lent_chunks: 0,
            lent_pressure: 0.0,
            tenant,
            priority: Priority::Low,
        };
        let acts = m.tick(Time::from_ms(1), &[sig(0)]);
        assert_eq!(acts.len(), 1, "first grow is inside quota");
        m.confirm_grow(Time::from_ms(1), 0, 0, false, Priority::Low);
        assert!(m.quota_blocks(0));
        // Tick 2 sits inside the grow cooldown — nothing happens, not
        // even a quota refusal (the decision gate never opens).
        assert!(m.tick(Time::from_ms(2), &[sig(0)]).is_empty());
        assert_eq!(m.quota_denials(), 0);
        // Tick 3 is grow-eligible again: the grow is quota-refused,
        // logged, and restarts the cooldown (no hammering).
        let acts = m.tick(Time::from_ms(3), &[sig(0)]);
        assert!(acts.is_empty());
        assert_eq!(m.quota_denials(), 1);
        let last = m.timeline().last().unwrap().1;
        assert_eq!(last.kind, LeaseEventKind::QuotaDenied);
        assert_eq!(last.tenant, 0);
        assert_eq!(last.priority, Priority::Low);
        assert!(m.tick(Time::from_ms(4), &[sig(0)]).is_empty(), "cooldown");
        assert_eq!(m.quota_denials(), 1, "cooldown also bounds refusals");
        // A different (unquota'd) tenant may still grow.
        let acts = m.tick(Time::from_ms(5), &[sig(9)]);
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn market_converts_quota_refusals_into_subleases() {
        // Tenant 0: one-chunk quota. Tenant 1: four chunks, all idle.
        let config = LeaseConfig {
            sublease_market: true,
            ..cfg()
        };
        let chunk = config.chunk_bytes;
        let mut m = LeaseManager::with_quotas(config, 1, vec![chunk, 4 * chunk]);
        let sig = NodeSignal {
            depth: 50,
            lent_chunks: 0,
            lent_pressure: 0.0,
            tenant: 0,
            priority: Priority::High,
        };
        // First grow is inside tenant 0's own quota.
        let acts = m.tick(Time::from_ms(1), &[sig]);
        assert_eq!(
            acts,
            vec![LeaseAction::Grow {
                node: 0,
                predictive: false
            }]
        );
        m.confirm_grow(Time::from_ms(1), 0, 0, false, Priority::High);
        assert!(m.quota_blocks(0));
        // Tick 2 sits inside the grow cooldown: nothing happens.
        assert!(m.tick(Time::from_ms(2), &[sig]).is_empty());
        // Next eligible grow would be quota-refused — the market matches
        // tenant 1's idle headroom instead.
        let acts = m.tick(Time::from_ms(3), &[sig]);
        assert_eq!(acts, vec![LeaseAction::Sublease { node: 0, lessor: 1 }]);
        let g = m.confirm_sublease(Time::from_ms(3), 0, 0, 1, Priority::High);
        assert_eq!(m.subleases(), 1);
        assert_eq!(m.quota_denials(), 0, "the refusal was converted");
        // Usage follows the user; the charge follows the lessor.
        assert_eq!(m.tenant_bytes(0), 2 * chunk);
        assert_eq!(m.tenant_bytes(1), 0);
        assert_eq!(m.charged_bytes_of(0), chunk);
        assert_eq!(m.charged_bytes_of(1), chunk);
        assert_eq!(m.subleased_bytes(), chunk);
        let last = m.timeline().last().unwrap().1;
        assert_eq!(last.kind, LeaseEventKind::Subleased);
        assert_eq!(last.tenant, 0);
        assert_eq!(last.lessor, 1);
        // Returning the chunk repays the lessor's headroom.
        m.confirm_shrink(Time::from_ms(5), 0, g, Priority::High);
        assert_eq!(m.sublease_returns(), 1);
        assert_eq!(m.subleased_bytes(), 0);
        assert_eq!(m.tenant_bytes(0), chunk);
        assert_eq!(m.charged_bytes_of(1), 0);
        let last = m.timeline().last().unwrap().1;
        assert_eq!(last.kind, LeaseEventKind::SubleaseReturned);
        assert_eq!(last.lessor, 1);
    }

    #[test]
    fn market_exhausts_headroom_then_denies() {
        // Lessor (tenant 1) has exactly one chunk of headroom; tenant 2's
        // quota is unlimited and must never be matched as a lessor.
        let config = LeaseConfig {
            sublease_market: true,
            ..cfg()
        };
        let chunk = config.chunk_bytes;
        let mut m = LeaseManager::with_quotas(config, 1, vec![chunk, chunk, u64::MAX]);
        let sig = NodeSignal {
            depth: 50,
            lent_chunks: 0,
            lent_pressure: 0.0,
            tenant: 0,
            priority: Priority::Normal,
        };
        let acts = m.tick(Time::from_ms(1), &[sig]);
        assert_eq!(acts.len(), 1, "own-quota grow");
        m.confirm_grow(Time::from_ms(1), 0, 0, false, Priority::Normal);
        assert!(m.tick(Time::from_ms(2), &[sig]).is_empty(), "cooldown");
        let acts = m.tick(Time::from_ms(3), &[sig]);
        assert_eq!(acts, vec![LeaseAction::Sublease { node: 0, lessor: 1 }]);
        m.confirm_sublease(Time::from_ms(3), 0, 0, 1, Priority::Normal);
        // Tenant 1's headroom is now gone and tenant 2 (unlimited) does
        // not lease: the next over-quota grow is a hard refusal again.
        assert!(m.tick(Time::from_ms(4), &[sig]).is_empty(), "cooldown");
        let acts = m.tick(Time::from_ms(5), &[sig]);
        assert!(acts.is_empty());
        assert_eq!(m.quota_denials(), 1);
        assert_eq!(m.subleases(), 1);
        let last = m.timeline().last().unwrap().1;
        assert_eq!(last.kind, LeaseEventKind::QuotaDenied);
    }

    #[test]
    fn same_tick_matches_cannot_overshoot_the_lessors_headroom() {
        // Two nodes, both quota-blocked for tenant 0 in the same tick;
        // the lessor has one chunk of headroom. Exactly one sublease may
        // fire — the promised-bytes reservation covers the lessor too.
        let config = LeaseConfig {
            sublease_market: true,
            min_chunks: 0,
            ..cfg()
        };
        let chunk = config.chunk_bytes;
        let mut m = LeaseManager::with_quotas(config, 2, vec![0, chunk]);
        let sig = NodeSignal {
            depth: 50,
            lent_chunks: 0,
            lent_pressure: 0.0,
            tenant: 0,
            priority: Priority::Normal,
        };
        let acts = m.tick(Time::from_ms(1), &[sig, sig]);
        let subleases = acts
            .iter()
            .filter(|a| matches!(a, LeaseAction::Sublease { .. }))
            .count();
        assert_eq!(subleases, 1, "headroom fits one chunk, got {acts:?}");
        assert_eq!(m.quota_denials(), 1, "the other node was refused");
    }

    #[test]
    fn pressure_aware_revoke_fires_below_the_raw_watermark() {
        let base = LeaseConfig {
            donor_high_watermark: 10,
            revoke_cooldown_ticks: 4,
            ..cfg()
        };
        let sig = NodeSignal {
            depth: 6, // below the donor watermark
            lent_chunks: 2,
            lent_pressure: 0.9, // but the pool is almost fully lent
            tenant: NO_TENANT,
            priority: Priority::Normal,
        };
        // Watermark-only: depth 6 < 10, no revoke however lent.
        let mut watermark_only = LeaseManager::new(base, 1);
        let acts = watermark_only.tick(Time::from_ms(1), &[sig]);
        assert!(
            !acts.iter().any(|a| matches!(a, LeaseAction::Revoke { .. })),
            "watermark-only trigger fired below the watermark"
        );
        // Pressure-aware: 6 + 8 * 0.9 = 13.2 >= 10 — the heavily lent
        // donor reclaims early.
        let armed = LeaseConfig {
            donor_pressure_weight: 8.0,
            ..base
        };
        let mut aware = LeaseManager::new(armed, 1);
        let acts = aware.tick(Time::from_ms(1), &[sig]);
        assert!(acts.contains(&LeaseAction::Revoke { donor: 0 }));
        // An unlent donor never revokes, whatever the weight says.
        let unlent = NodeSignal {
            lent_chunks: 0,
            lent_pressure: 0.0,
            ..sig
        };
        let acts = aware.tick(Time::from_ms(10), &[unlent]);
        assert!(!acts.iter().any(|a| matches!(a, LeaseAction::Revoke { .. })));
    }

    #[test]
    fn accounting_tracks_peak_mean_and_ledger() {
        let mut m = LeaseManager::new(cfg(), 2);
        let c = 64 << 20u64;
        m.confirm_grow(Time::ZERO, 0, 0, false, Priority::High);
        m.confirm_grow(Time::ZERO, 1, 1, false, Priority::Low);
        // Hold 2 chunks for 10 ms, then drop to 1 for 10 ms.
        m.confirm_shrink(Time::from_ms(10), 1, 2, Priority::Low);
        assert_eq!(m.peak_bytes(), 2 * c);
        assert_eq!(m.total_bytes(), c);
        assert_eq!(m.tenant_bytes(0), c);
        assert_eq!(m.tenant_bytes(1), 0);
        let mean = m.mean_bytes(Time::from_ms(20));
        // Time-weighted: (2c*10 + 1c*10) / 20 = 1.5c.
        assert_eq!(mean, 3 * c / 2);
        let tl = m.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.events()[0].1.generation, 1);
        assert_eq!(tl.events()[1].1.generation, 2);
        let shrank = tl.events()[2].1;
        assert_eq!(shrank.kind, LeaseEventKind::Shrank);
        assert_eq!(shrank.priority, Priority::Low);
        // The shrink names the lease it released and repays its tenant.
        assert_eq!(shrank.generation, 2);
        assert_eq!(shrank.tenant, 1);
        assert_eq!(shrank.tenant_bytes_after, 0);
        // Conservation at every event: replaying per-tenant ledger values
        // reproduces the running total.
        let mut ledger = std::collections::BTreeMap::new();
        for (_, e) in tl.iter() {
            ledger.insert(e.tenant, e.tenant_bytes_after);
            let sum: u64 = ledger.values().sum();
            assert_eq!(sum, e.total_bytes_after);
        }
    }

    #[test]
    fn identical_inputs_produce_identical_timelines() {
        let drive = || {
            let mut m = LeaseManager::new(cfg(), 3);
            let boot = m.bootstrap();
            apply_all(&mut m, Time::ZERO, &boot);
            for t in 1..=50u64 {
                let now = Time::from_ms(t);
                let signals = depths(&[
                    ((t * 7) % 13) as u32,
                    ((t * 3) % 11) as u32,
                    ((t * 5) % 17) as u32,
                ]);
                let a = m.tick(now, &signals);
                apply_all(&mut m, now, &a);
            }
            m.timeline().clone()
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn event_kinds_partition_into_open_close_denial() {
        use LeaseEventKind::*;
        // Every kind is exactly one of open/close/denial — the
        // classification telemetry folds the timeline with.
        for kind in [
            Grew,
            GrewPredictive,
            Denied,
            QuotaDenied,
            Shrank,
            Revoked,
            RevokeDenied,
            Subleased,
            SubleaseReturned,
        ] {
            let classes = [kind.opens_chunk(), kind.closes_chunk(), kind.is_denial()];
            assert_eq!(
                classes.iter().filter(|&&c| c).count(),
                1,
                "{kind:?} must fall in exactly one class"
            );
        }
        assert!(Grew.opens_chunk() && Subleased.opens_chunk());
        assert!(Revoked.closes_chunk() && SubleaseReturned.closes_chunk());
        assert!(QuotaDenied.is_denial() && RevokeDenied.is_denial());
    }
}
