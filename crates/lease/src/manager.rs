//! The elastic lease manager: a pure, deterministic feedback controller.
//!
//! [`LeaseManager`] never touches a cluster. Each tick the caller feeds it
//! the per-node queue depths; it answers with at most one [`LeaseAction`]
//! per node (grow or shrink), honoring watermarks, per-node cooldowns, and
//! the chunk range. The caller applies each action against the real
//! borrow/release flow and reports back via [`LeaseManager::confirm_grow`]
//! / [`LeaseManager::deny_grow`] / [`LeaseManager::confirm_shrink`], which
//! is when capacity accounting and the event timeline advance. Keeping
//! decision and application separate makes the control loop testable in
//! isolation and keeps every decision on one auditable timeline.

use serde::{Deserialize, Serialize};
use venice_sim::{Time, Timeline};

use crate::config::{LeaseConfig, Priority};

/// What the manager wants done to one node's remote tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    /// Borrow one more chunk for `node`.
    Grow {
        /// The node that should borrow.
        node: u16,
    },
    /// Release `node`'s newest chunk.
    Shrink {
        /// The node that should release.
        node: u16,
    },
}

/// What happened to a lease decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseEventKind {
    /// A chunk was borrowed.
    Grew,
    /// A grow was refused by the cluster (no donor capacity).
    Denied,
    /// A chunk was released.
    Shrank,
}

/// One entry on the lease timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseEvent {
    /// Simulated time of the decision's application.
    pub at: Time,
    /// The affected node.
    pub node: u16,
    /// What happened.
    pub kind: LeaseEventKind,
    /// Chunks the node holds after the event.
    pub chunks_after: u32,
    /// Monotonic lease generation (increments per successful grow; 0 for
    /// denials and shrinks, which create no lease).
    pub generation: u64,
    /// Cluster-wide borrowed bytes after the event.
    pub total_bytes_after: u64,
    /// Priority of the tenant whose backlog drove the decision.
    pub priority: Priority,
}

/// Per-node controller state.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Confirmed chunks held.
    chunks: u32,
    /// Tick of the last grow decision (confirmed or denied).
    last_grow_tick: Option<u64>,
    /// Consecutive calm ticks observed.
    calm_ticks: u32,
}

/// The cluster-wide elastic lease manager.
#[derive(Debug, Clone)]
pub struct LeaseManager {
    config: LeaseConfig,
    nodes: Vec<NodeState>,
    tick: u64,
    generation: u64,
    grows: u64,
    shrinks: u64,
    denials: u64,
    total_bytes: u64,
    peak_bytes: u64,
    /// Time-weighted byte integral for mean-provisioning accounting.
    byte_ps_integral: u128,
    last_change_at: Time,
    timeline: Timeline<LeaseEvent>,
}

impl LeaseManager {
    /// Creates a manager for `nodes` nodes, all starting at zero chunks
    /// (apply [`LeaseManager::bootstrap`] to reach the configured floor).
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`LeaseConfig::validate`]).
    pub fn new(config: LeaseConfig, nodes: u16) -> Self {
        config.validate();
        LeaseManager {
            config,
            nodes: vec![
                NodeState {
                    chunks: 0,
                    last_grow_tick: None,
                    calm_ticks: 0,
                };
                nodes as usize
            ],
            tick: 0,
            generation: 0,
            grows: 0,
            shrinks: 0,
            denials: 0,
            total_bytes: 0,
            peak_bytes: 0,
            byte_ps_integral: 0,
            last_change_at: Time::ZERO,
            timeline: Timeline::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    /// Grow actions that bring every node to the `min_chunks` floor;
    /// apply (and confirm) before the run starts.
    pub fn bootstrap(&self) -> Vec<LeaseAction> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for _ in n.chunks..self.config.min_chunks {
                out.push(LeaseAction::Grow { node: i as u16 });
            }
        }
        out
    }

    /// One control-loop step at simulated time `now`: `depths[i]` is node
    /// `i`'s current queue depth. Returns at most one action per node.
    ///
    /// # Panics
    ///
    /// Panics if `depths` does not cover every node.
    pub fn tick(&mut self, _now: Time, depths: &[u32]) -> Vec<LeaseAction> {
        assert_eq!(depths.len(), self.nodes.len(), "one depth per node");
        self.tick += 1;
        let tick = self.tick;
        let mut actions = Vec::new();
        for (i, depth) in depths.iter().enumerate() {
            let node = &mut self.nodes[i];
            if *depth >= self.config.high_watermark {
                node.calm_ticks = 0;
                let cooled = match node.last_grow_tick {
                    None => true,
                    Some(last) => tick - last >= self.config.grow_cooldown_ticks as u64,
                };
                if node.chunks < self.config.max_chunks && cooled {
                    // Cooldown starts at the decision, not the outcome, so
                    // a denied grow also backs off instead of hammering a
                    // full cluster every tick.
                    node.last_grow_tick = Some(tick);
                    actions.push(LeaseAction::Grow { node: i as u16 });
                }
            } else if *depth <= self.config.low_watermark {
                node.calm_ticks = node.calm_ticks.saturating_add(1);
                if node.calm_ticks >= self.config.release_cooldown_ticks
                    && node.chunks > self.config.min_chunks
                {
                    node.calm_ticks = 0;
                    actions.push(LeaseAction::Shrink { node: i as u16 });
                }
            } else {
                // Inside the hysteresis band: hold everything.
                node.calm_ticks = 0;
            }
        }
        actions
    }

    /// Records a successful grow of `node` at `now`, attributed to a
    /// tenant of `priority`. Returns the new lease's generation.
    pub fn confirm_grow(&mut self, now: Time, node: u16, priority: Priority) -> u64 {
        self.integrate(now);
        let n = &mut self.nodes[node as usize];
        n.chunks += 1;
        let chunks_after = n.chunks;
        self.generation += 1;
        self.grows += 1;
        self.total_bytes += self.config.chunk_bytes;
        self.peak_bytes = self.peak_bytes.max(self.total_bytes);
        self.log(LeaseEvent {
            at: now,
            node,
            kind: LeaseEventKind::Grew,
            chunks_after,
            generation: self.generation,
            total_bytes_after: self.total_bytes,
            priority,
        });
        self.generation
    }

    /// Records a grow refused by the cluster (donor capacity exhausted).
    pub fn deny_grow(&mut self, now: Time, node: u16, priority: Priority) {
        self.denials += 1;
        let chunks_after = self.nodes[node as usize].chunks;
        self.log(LeaseEvent {
            at: now,
            node,
            kind: LeaseEventKind::Denied,
            chunks_after,
            generation: 0,
            total_bytes_after: self.total_bytes,
            priority,
        });
    }

    /// Records a successful release of `node`'s newest chunk at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the node holds no chunks (accounting bug in the caller).
    pub fn confirm_shrink(&mut self, now: Time, node: u16, priority: Priority) {
        self.integrate(now);
        let n = &mut self.nodes[node as usize];
        assert!(n.chunks > 0, "shrink of an empty node");
        n.chunks -= 1;
        let chunks_after = n.chunks;
        self.shrinks += 1;
        self.total_bytes -= self.config.chunk_bytes;
        self.log(LeaseEvent {
            at: now,
            node,
            kind: LeaseEventKind::Shrank,
            chunks_after,
            generation: 0,
            total_bytes_after: self.total_bytes,
            priority,
        });
    }

    /// Records `event` on the timeline, keyed by the event's own
    /// timestamp — one source of truth, so the timeline key and
    /// [`LeaseEvent::at`] can never drift apart.
    fn log(&mut self, event: LeaseEvent) {
        self.timeline.record(event.at, event);
    }

    /// Advances the time-weighted byte integral to `now`.
    fn integrate(&mut self, now: Time) {
        let dt = now.saturating_sub(self.last_change_at);
        self.byte_ps_integral += self.total_bytes as u128 * dt.as_ps() as u128;
        self.last_change_at = now;
    }

    /// Chunks `node` currently holds.
    pub fn chunks(&self, node: u16) -> u32 {
        self.nodes[node as usize].chunks
    }

    /// Bytes `node` currently holds.
    pub fn held_bytes(&self, node: u16) -> u64 {
        self.chunks(node) as u64 * self.config.chunk_bytes
    }

    /// Cluster-wide borrowed bytes right now.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Highest cluster-wide borrowed bytes seen so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Time-weighted mean of cluster-wide borrowed bytes over `[0, end]`
    /// — or over `[0, last event]` when events were confirmed past `end`,
    /// so a too-short `end` can never inflate the mean beyond what was
    /// actually integrated.
    pub fn mean_bytes(&self, end: Time) -> u64 {
        let end = end.max(self.last_change_at);
        if end == Time::ZERO {
            return self.total_bytes;
        }
        let tail = end.saturating_sub(self.last_change_at);
        let integral = self.byte_ps_integral + self.total_bytes as u128 * tail.as_ps() as u128;
        (integral / end.as_ps() as u128) as u64
    }

    /// Successful grows so far.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Successful shrinks so far.
    pub fn shrinks(&self) -> u64 {
        self.shrinks
    }

    /// Denied grows so far.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// The full decision timeline.
    pub fn timeline(&self) -> &Timeline<LeaseEvent> {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            chunk_bytes: 64 << 20,
            min_chunks: 1,
            max_chunks: 4,
            high_watermark: 8,
            low_watermark: 2,
            grow_cooldown_ticks: 2,
            release_cooldown_ticks: 3,
            tick_interval: Time::from_ms(1),
        }
    }

    /// Applies every action immediately, confirming grows.
    fn apply_all(m: &mut LeaseManager, now: Time, actions: &[LeaseAction]) {
        for a in actions {
            match *a {
                LeaseAction::Grow { node } => {
                    m.confirm_grow(now, node, Priority::Normal);
                }
                LeaseAction::Shrink { node } => m.confirm_shrink(now, node, Priority::Normal),
            }
        }
    }

    #[test]
    fn bootstrap_reaches_the_floor() {
        let mut m = LeaseManager::new(cfg(), 4);
        let boot = m.bootstrap();
        assert_eq!(boot.len(), 4);
        apply_all(&mut m, Time::ZERO, &boot);
        for n in 0..4 {
            assert_eq!(m.chunks(n), 1);
        }
        assert!(m.bootstrap().is_empty());
        assert_eq!(m.total_bytes(), 4 * (64 << 20));
    }

    #[test]
    fn sustained_pressure_grows_to_the_cap_with_cooldown() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        let mut grow_ticks = Vec::new();
        for t in 1..=20u64 {
            let now = Time::from_ms(t);
            let actions = m.tick(now, &[100]);
            if !actions.is_empty() {
                grow_ticks.push(t);
            }
            apply_all(&mut m, now, &actions);
        }
        // 1 (floor) + 3 grows to reach max_chunks = 4.
        assert_eq!(m.chunks(0), 4);
        assert_eq!(grow_ticks.len(), 3);
        // Grows respect the cooldown spacing.
        for w in grow_ticks.windows(2) {
            assert!(w[1] - w[0] >= 2, "grows too close: {grow_ticks:?}");
        }
        // At the cap, pressure produces no further actions.
        assert!(m.tick(Time::from_ms(30), &[100]).is_empty());
    }

    #[test]
    fn calm_nodes_release_after_hysteresis_and_stop_at_floor() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        // Pump to the cap.
        for t in 1..=10u64 {
            let now = Time::from_ms(t);
            let a = m.tick(now, &[50]);
            apply_all(&mut m, now, &a);
        }
        assert_eq!(m.chunks(0), 4);
        // Calm ticks: a release fires every `release_cooldown_ticks` calm
        // ticks until the floor.
        let mut shrink_ticks = Vec::new();
        for t in 11..=30u64 {
            let now = Time::from_ms(t);
            let a = m.tick(now, &[0]);
            if !a.is_empty() {
                assert_eq!(a, vec![LeaseAction::Shrink { node: 0 }]);
                shrink_ticks.push(t);
            }
            apply_all(&mut m, now, &a);
        }
        assert_eq!(m.chunks(0), 1, "released down to the floor");
        assert_eq!(shrink_ticks, vec![13, 16, 19]);
    }

    #[test]
    fn band_oscillation_causes_no_churn() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        // Depth oscillating strictly inside (low, high): no actions ever.
        for t in 1..=100u64 {
            let depth = if t % 2 == 0 { 3 } else { 7 };
            assert!(m.tick(Time::from_ms(t), &[depth]).is_empty());
        }
        // Even calm ticks interleaved with in-band ticks never release:
        // the calm counter resets inside the band.
        for t in 101..=200u64 {
            let depth = if t % 2 == 0 { 0 } else { 5 };
            assert!(m.tick(Time::from_ms(t), &[depth]).is_empty());
        }
    }

    #[test]
    fn denied_grow_backs_off() {
        let mut m = LeaseManager::new(cfg(), 1);
        let boot = m.bootstrap();
        apply_all(&mut m, Time::ZERO, &boot);
        let a = m.tick(Time::from_ms(1), &[99]);
        assert_eq!(a.len(), 1);
        m.deny_grow(Time::from_ms(1), 0, Priority::Normal);
        // The very next tick must not retry (cooldown applies to the
        // decision, confirmed or not).
        assert!(m.tick(Time::from_ms(2), &[99]).is_empty());
        assert_eq!(m.denials(), 1);
        assert!(!m.tick(Time::from_ms(3), &[99]).is_empty());
    }

    #[test]
    fn accounting_tracks_peak_and_mean() {
        let mut m = LeaseManager::new(cfg(), 2);
        let c = 64 << 20u64;
        m.confirm_grow(Time::ZERO, 0, Priority::High);
        m.confirm_grow(Time::ZERO, 1, Priority::Low);
        // Hold 2 chunks for 10 ms, then drop to 1 for 10 ms.
        m.confirm_shrink(Time::from_ms(10), 1, Priority::Low);
        assert_eq!(m.peak_bytes(), 2 * c);
        assert_eq!(m.total_bytes(), c);
        let mean = m.mean_bytes(Time::from_ms(20));
        // Time-weighted: (2c*10 + 1c*10) / 20 = 1.5c.
        assert_eq!(mean, 3 * c / 2);
        let tl = m.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.events()[0].1.generation, 1);
        assert_eq!(tl.events()[1].1.generation, 2);
        assert_eq!(tl.events()[2].1.kind, LeaseEventKind::Shrank);
        assert_eq!(tl.events()[2].1.priority, Priority::Low);
    }

    #[test]
    fn identical_inputs_produce_identical_timelines() {
        let drive = || {
            let mut m = LeaseManager::new(cfg(), 3);
            let boot = m.bootstrap();
            apply_all(&mut m, Time::ZERO, &boot);
            for t in 1..=50u64 {
                let now = Time::from_ms(t);
                let depths = [
                    ((t * 7) % 13) as u32,
                    ((t * 3) % 11) as u32,
                    ((t * 5) % 17) as u32,
                ];
                let a = m.tick(now, &depths);
                apply_all(&mut m, now, &a);
            }
            m.timeline().clone()
        };
        assert_eq!(drive(), drive());
    }
}
