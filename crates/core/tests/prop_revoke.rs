//! Property test for the donor-side revoke path (ISSUE 3): under an
//! arbitrary interleaving of borrows, recipient releases, and
//! donor-demanded revokes, the donor's bump allocator never re-advertises
//! space under a live lease — every out-of-order reclaim is parked as a
//! hole until the stack above it unwinds — and the full lendable
//! capacity always returns once everything is back.
//!
//! Extended for ISSUE 5: a rotating subset of grants is annotated with
//! sublease chains. A chain must never outlive its grant (release and
//! revoke both retire it), the annotated-byte view must track exactly the
//! live annotated grants, and revoking a *subleased* grant obeys the same
//! hole-parking guarantees as any other.

use proptest::prelude::*;
use venice::cluster::{Cluster, ShareError};
use venice::NodeId;

const CHUNK: u64 = 64 << 20;
const LENDABLE: u64 = 512 << 20;

proptest! {
    #[test]
    fn revocation_never_leaves_a_reclaim_hole_unparked(
        ops in proptest::collection::vec(0u8..6, 1..40),
        borrowers in 1u16..4,
    ) {
        // A 2x2 mesh: borrowers 0..borrowers, every node a candidate
        // donor of its top 512 MB.
        let mut c = Cluster::mesh(2, 2, 1, 1 << 30, LENDABLE);
        let mut held: Vec<venice::MemoryLease> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                // Borrow one chunk for a rotating recipient; every
                // third borrow is annotated as a market sublease.
                0..=2 => {
                    let r = NodeId((step as u16) % borrowers);
                    match c.borrow_memory(r, CHUNK) {
                        Ok(lease) => {
                            if step % 3 == 0 {
                                let lessor = (step % 5) as u32;
                                let tenant = (step % 7) as u32 + 10;
                                c.mark_sublease(lease.grant_id, lessor, tenant).unwrap();
                                // One chunk, one paying tenant.
                                prop_assert_eq!(
                                    c.mark_sublease(lease.grant_id, lessor, tenant),
                                    Err(ShareError::AlreadySubleased)
                                );
                            }
                            held.push(lease);
                        }
                        Err(ShareError::Alloc(_)) => {} // capacity exhausted: fine
                        Err(e) => prop_assert!(false, "borrow failed oddly: {e}"),
                    }
                }
                // Recipient voluntarily releases its *oldest* lease —
                // deliberately out of order (LIFO would unwind cleanly;
                // FIFO forces holes to park).
                3 => {
                    if !held.is_empty() {
                        let lease = held.remove(0);
                        c.release(lease).unwrap();
                    }
                }
                // A donor demands its newest grant back.
                4 => {
                    let donor = NodeId((step as u16) % c.len() as u16);
                    match c.revoke_newest(donor) {
                        Ok(lease) => {
                            held.retain(|l| l.grant_id != lease.grant_id);
                        }
                        Err(ShareError::NoLease) => {}
                        Err(e) => prop_assert!(false, "revoke failed oddly: {e}"),
                    }
                }
                // A donor revokes a specific mid-stack grant.
                _ => {
                    if let Some(lease) = held.first().copied() {
                        c.revoke(lease.donor, lease.grant_id).unwrap();
                        held.retain(|l| l.grant_id != lease.grant_id);
                    }
                }
            }
            // The single-subscriber invariant survives every step: no
            // donor region is simultaneously online locally and mapped
            // remotely, revokes included.
            prop_assert!(c.memory_consistent(), "inconsistent after step {step}");
            // Sublease chains track exactly the live annotated grants:
            // no chain without its grant, and the annotated-byte view
            // sums the chained grants' real sizes.
            let mut chained_bytes = 0u64;
            for s in c.active_subleases() {
                let lease = c
                    .active_leases()
                    .iter()
                    .find(|l| l.grant_id == s.grant_id);
                prop_assert!(
                    lease.is_some(),
                    "chain {:?} outlived its grant at step {}",
                    s,
                    step
                );
                chained_bytes += lease.unwrap().bytes;
            }
            prop_assert_eq!(chained_bytes, c.subleased_bytes());
            // A fresh borrow can never land inside a still-lent window
            // of the same donor (the hole-parking guarantee, observed
            // through the public API).
            let leases: Vec<_> = c.active_leases().to_vec();
            for a in &leases {
                for b in &leases {
                    if a.grant_id != b.grant_id && a.donor == b.donor {
                        let disjoint = a.donor_base + a.bytes <= b.donor_base
                            || b.donor_base + b.bytes <= a.donor_base;
                        prop_assert!(
                            disjoint,
                            "donor {:?}: grants {:#x}+{} and {:#x}+{} overlap",
                            a.donor,
                            a.donor_base,
                            a.bytes,
                            b.donor_base,
                            b.bytes
                        );
                    }
                }
            }
        }
        // Unwind everything (newest first, the clean direction) and
        // verify the full lendable capacity is grantable again — a
        // parked hole that never re-joined the pool would break this.
        while let Some(lease) = held.pop() {
            c.release(lease).unwrap();
        }
        prop_assert_eq!(c.borrowed_bytes(), 0);
        prop_assert_eq!(c.subleased_bytes(), 0, "a chain survived full teardown");
        prop_assert!(c.active_subleases().is_empty());
        let big = c.borrow_memory(NodeId(0), LENDABLE).unwrap();
        prop_assert_eq!(big.bytes, LENDABLE);
        prop_assert!(c.memory_consistent());
        c.release(big).unwrap();
    }
}
