//! The prototype platform configuration (paper Table 1).

use serde::{Deserialize, Serialize};
use venice_fabric::{LinkParams, Mesh3d};
use venice_memnode::{CpuModel, DramModel};
use venice_sim::Time;

/// Table 1's platform parameters, collected in one place so scenarios and
/// reports agree on the constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of nodes.
    pub nodes: u16,
    /// Topology description.
    pub topology: &'static str,
    /// Board / OS description.
    pub node_description: &'static str,
    /// CPU description.
    pub processor: &'static str,
    /// CPU clock in MHz.
    pub cpu_mhz: f64,
    /// Active memory per node in bytes.
    pub memory_bytes: u64,
    /// Fabric parallel clock in MHz.
    pub fabric_parallel_mhz: f64,
    /// Fabric serial clock in GHz.
    pub fabric_serial_ghz: f64,
    /// Point-to-point fabric latency.
    pub p2p_latency: Time,
    /// Per-link bandwidth in Gbps.
    pub link_gbps: f64,
    /// Links per node.
    pub links_per_node: u8,
}

impl PlatformConfig {
    /// The paper's prototype (Table 1).
    pub fn venice_prototype() -> Self {
        PlatformConfig {
            nodes: 8,
            topology: "3D mesh",
            node_description: "Xilinx ZC706, Linux (Linaro 13.09)",
            processor: "ARM Cortex-A9",
            cpu_mhz: 667.0,
            memory_bytes: 1 << 30,
            fabric_parallel_mhz: 125.0,
            fabric_serial_ghz: 5.0,
            p2p_latency: Time::from_ns(1_400),
            link_gbps: 5.0,
            links_per_node: 6,
        }
    }

    /// The mesh this configuration describes.
    pub fn mesh(&self) -> Mesh3d {
        debug_assert_eq!(self.nodes, 8, "prototype mesh is 2x2x2");
        Mesh3d::prototype()
    }

    /// CPU model for the nodes.
    pub fn cpu(&self) -> CpuModel {
        CpuModel {
            mhz: self.cpu_mhz,
            ..CpuModel::venice_prototype()
        }
    }

    /// DRAM model for the nodes.
    pub fn dram(&self) -> DramModel {
        DramModel {
            capacity_bytes: self.memory_bytes,
            ..DramModel::venice_prototype()
        }
    }

    /// Link model for the fabric.
    pub fn link(&self) -> LinkParams {
        LinkParams::venice_prototype().with_gbps(self.link_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let c = PlatformConfig::venice_prototype();
        assert_eq!(c.nodes, 8);
        assert_eq!(c.memory_bytes, 1 << 30);
        assert_eq!(c.cpu_mhz, 667.0);
        assert_eq!(c.link_gbps, 5.0);
        assert_eq!(c.links_per_node, 6);
        assert_eq!(c.p2p_latency, Time::from_ns(1400));
    }

    #[test]
    fn derived_models_agree_with_table() {
        let c = PlatformConfig::venice_prototype();
        assert_eq!(c.mesh().len(), 8);
        assert_eq!(c.cpu().mhz, 667.0);
        assert_eq!(c.dram().capacity_bytes, 1 << 30);
        // The link's one-way latency for a cacheline packet matches the
        // published P2P figure within 10%.
        let one_way = c.link().one_way(80);
        let err = one_way.ratio(c.p2p_latency) - 1.0;
        assert!(err.abs() < 0.1, "one-way {one_way} vs 1.4us");
    }
}
