//! Fig 17: multi-modality — each access pattern has a dominant channel.
//!
//! Three representative transfers (random fine-grain lookups, contiguous
//! streaming, message passing) are executed over each of the three
//! channels; per pattern, results are normalized to the best channel
//! (=100). The paper's point: "none of the channels can be efficiently
//! replaced by another".

use venice_fabric::NodeId;
use venice_transport::{AccessPattern, AdaptiveLibrary, ChannelKind, PathModel, TransferRequest};

use crate::metrics::{Figure, Series};

const CHANNELS: [ChannelKind; 3] = [ChannelKind::Crma, ChannelKind::Rdma, ChannelKind::Qpair];

fn patterns() -> Vec<(&'static str, TransferRequest)> {
    vec![
        (
            "In-Mem DB random access",
            TransferRequest {
                bytes: 64 << 10,
                pattern: AccessPattern::RandomFineGrain,
            },
        ),
        (
            "CC contiguous access",
            TransferRequest {
                bytes: 4 << 20,
                pattern: AccessPattern::Contiguous,
            },
        ),
        (
            "Iperf msg passing",
            TransferRequest {
                bytes: 256,
                pattern: AccessPattern::MessagePassing,
            },
        ),
    ]
}

/// Generates Fig 17.
pub fn fig17() -> Figure {
    let lib = AdaptiveLibrary::with_defaults();
    let path = PathModel::direct_pair();
    let mut fig = Figure::new(
        "fig17",
        "Resource sharing over the three transport channels",
        "performance normalized to the best channel per pattern (=100)",
    );
    fig.columns = patterns().iter().map(|(n, _)| n.to_string()).collect();
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); CHANNELS.len()];
    for (_, req) in patterns() {
        let times: Vec<f64> = CHANNELS
            .iter()
            .map(|&c| {
                lib.estimate(&path, NodeId(0), NodeId(1), req, c)
                    .as_secs_f64()
            })
            .collect();
        let best = times.iter().cloned().fold(f64::MAX, f64::min);
        for (row, t) in rows.iter_mut().zip(&times) {
            row.push(best / t * 100.0);
        }
    }
    for (channel, row) in CHANNELS.iter().zip(rows) {
        fig.measured.push(Series::new(channel.to_string(), row));
    }
    fig.paper = vec![
        Series::new("CRMA", vec![100.0, 23.7, 57.7]),
        Series::new("RDMA", vec![14.5, 100.0, 12.0]),
        Series::new("QPair", vec![12.2, 4.2, 100.0]),
    ];
    fig.notes = "random = dependent 64 B lookups over 64 KB; contiguous = \
                 4 MB stream; messaging = 256 B packets"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(f: &'a Figure, label: &str) -> &'a [f64] {
        &f.measured.iter().find(|s| s.label == label).unwrap().values
    }

    #[test]
    fn each_pattern_has_its_winner() {
        let f = fig17();
        // CRMA wins random; RDMA wins contiguous; QPair wins messaging.
        assert_eq!(row(&f, "CRMA")[0], 100.0);
        assert_eq!(row(&f, "RDMA")[1], 100.0);
        assert_eq!(row(&f, "QPair")[2], 100.0);
    }

    #[test]
    fn mismatch_penalties_are_multiples() {
        let f = fig17();
        // The losing channels score far below 100 in every column.
        for col in 0..3 {
            let mut scores: Vec<f64> = f.measured.iter().map(|s| s.values[col]).collect();
            scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
            assert_eq!(scores[0], 100.0);
            assert!(scores[1] < 80.0, "col {col}: {scores:?}");
            assert!(scores[2] < 40.0, "col {col}: {scores:?}");
        }
    }

    #[test]
    fn crma_is_respectable_for_messaging() {
        // Paper: CRMA scores 57.7 for message passing (it can emulate
        // small sends tolerably), while RDMA scores 12.
        let f = fig17();
        let crma = row(&f, "CRMA")[2];
        let rdma = row(&f, "RDMA")[2];
        assert!(crma > 3.0 * rdma, "crma {crma:.1} rdma {rdma:.1}");
    }
}
