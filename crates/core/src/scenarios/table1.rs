//! Table 1 (platform configuration) and the §7.3 hardware-cost table.

use crate::config::PlatformConfig;
use crate::costmodel::CostModel;
use crate::metrics::{Figure, Series};

/// Generates Table 1 as a one-row-per-parameter figure (numeric
/// parameters only; string parameters go in the notes).
pub fn table1() -> Figure {
    let c = PlatformConfig::venice_prototype();
    let mut fig = Figure::new(
        "table1",
        "Platform configuration",
        "prototype hardware parameters",
    );
    fig.columns = vec![
        "nodes".into(),
        "CPU MHz".into(),
        "mem MB".into(),
        "parallel clk MHz".into(),
        "serial clk GHz".into(),
        "P2P latency us".into(),
        "link Gbps".into(),
        "links/node".into(),
    ];
    let row = vec![
        c.nodes as f64,
        c.cpu_mhz,
        (c.memory_bytes >> 20) as f64,
        c.fabric_parallel_mhz,
        c.fabric_serial_ghz,
        c.p2p_latency.as_us_f64(),
        c.link_gbps,
        c.links_per_node as f64,
    ];
    fig.measured = vec![Series::new("prototype", row.clone())];
    fig.paper = vec![Series::new("prototype", row)];
    fig.notes = format!(
        "{} | {} | {} | topology: {}",
        c.node_description, c.processor, "Linaro 13.09", c.topology
    );
    fig
}

/// Generates the §7.3 cost summary.
pub fn cost_table() -> Figure {
    let m = CostModel::venice_28nm();
    let mut fig = Figure::new(
        "cost",
        "Hardware cost of the Venice fabric support (28nm)",
        "areas in mm^2; SRAM in KB; die fraction in %",
    );
    fig.columns = vec![
        "logic mm2".into(),
        "SRAM KB".into(),
        "PHY mm2".into(),
        "total mm2".into(),
        "% of 300mm2 die".into(),
        "clock GHz".into(),
    ];
    let row = vec![
        m.logic_area_mm2,
        (m.sram_bytes >> 10) as f64,
        m.phy_area_mm2(),
        m.total_area_mm2(),
        m.die_fraction() * 100.0,
        m.clock_ghz,
    ];
    fig.measured = vec![Series::new("venice support", row)];
    fig.paper = vec![Series::new(
        "venice support",
        vec![2.73, 32.0, 3.5, 6.23, 2.08, 1.0],
    )];
    fig.notes = format!(
        "QPair/CRMA logic ratio {}x; QPair extra SRAM {} KB",
        CostModel::QPAIR_OVER_CRMA_LOGIC,
        CostModel::QPAIR_EXTRA_SRAM_BYTES >> 10
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        let f = table1();
        assert_eq!(f.measured, f.paper);
    }

    #[test]
    fn cost_close_to_published_arithmetic() {
        let f = cost_table();
        let m = &f.measured[0].values;
        let p = &f.paper[0].values;
        for (a, b) in m.iter().zip(p) {
            assert!((a - b).abs() / b < 0.05, "{a} vs {b}");
        }
    }
}
