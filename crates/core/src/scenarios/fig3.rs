//! Fig 3: remote-memory efficiency over commodity interconnects.
//!
//! The §4.1 feasibility study: a BerkeleyDB-style workload with a 6 GB
//! array and 4 GB of local memory on a legacy x86 cluster (80/20
//! read/write, random access). One third of the data lives beyond local
//! memory; each access to it pays the commodity path's full stack cost.
//! Paper result: Ethernet 42×, IB SRP 19×, PCIe RDMA 12×, PCIe LD/ST 13×
//! slower than all-local.

use venice_baselines::CommodityPath;
use venice_memnode::CpuModel;
use venice_sim::Time;
use venice_workloads::OltpWorkload;

use crate::metrics::{Figure, Series};

/// Fraction of the 6 GB dataset that exceeds the 4 GB of local memory
/// (the kernel's own footprint makes it a third in practice).
const REMOTE_FRACTION: f64 = 1.0 / 3.0;

/// Per-query CPU work on the x86 host (Xeon-class BerkeleyDB get/put:
/// hashing, locking, buffer management — a few thousand instructions).
const X86_QUERY_CPU: Time = Time::from_us(3);

/// Per-query slowdown of accessing the overflow through `path`.
fn slowdown(path: &CommodityPath, workload: &OltpWorkload, _cpu: &CpuModel) -> f64 {
    let query_cpu = X86_QUERY_CPU;
    let local = Time::from_ns(80);
    let misses = workload.misses_per_query();
    let op_local = query_cpu + local.scale(misses);
    // Swap paths fault per page touched beyond local memory; the LD/ST
    // path pays its per-line cost on the same accesses.
    let remote_cost = path.total();
    let op_remote = query_cpu
        + local.scale(misses * (1.0 - REMOTE_FRACTION))
        + remote_cost.scale(misses * REMOTE_FRACTION);
    op_remote.ratio(op_local)
}

/// Generates Fig 3.
pub fn fig3() -> Figure {
    let workload = OltpWorkload::fig3();
    let cpu = CpuModel::xeon_e5620();
    let mut fig = Figure::new(
        "fig3",
        "Remote memory efficiency with commodity interconnects",
        "execution time normalized to all-local memory (lower is better)",
    );
    let paths = CommodityPath::fig3_paths();
    fig.columns = paths.iter().map(|p| p.name.to_string()).collect();
    let measured: Vec<f64> = paths.iter().map(|p| slowdown(p, &workload, &cpu)).collect();
    fig.measured = vec![Series::new("BerkeleyDB 6GB/4GB", measured)];
    fig.paper = vec![Series::new(
        "BerkeleyDB 6GB/4GB",
        vec![42.0, 19.0, 12.0, 13.0],
    )];
    fig.notes = "x86 cluster modeled by per-component commodity stack costs; \
                 1/3 of accesses overflow local memory"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_slowdowns_are_order_of_magnitude() {
        let f = fig3();
        let m = &f.measured[0].values;
        // All paths at least 10x slower than local.
        assert!(m.iter().all(|&s| s > 9.0), "{m:?}");
        // Ethernet is the worst by a wide margin.
        assert!(m[0] > 2.0 * m[2], "{m:?}");
    }

    #[test]
    fn measured_within_factor_two_of_paper() {
        let f = fig3();
        for (m, p) in f.measured[0].values.iter().zip(&f.paper[0].values) {
            let ratio = m / p;
            assert!(
                (0.5..2.0).contains(&ratio),
                "measured {m:.1} vs paper {p:.1}"
            );
        }
    }

    #[test]
    fn ordering_matches_paper() {
        assert!(fig3().ordering_mismatches().is_empty());
    }
}
