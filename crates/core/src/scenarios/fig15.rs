//! Fig 15: remote memory vs local swapping, four workloads (§7.1).
//!
//! Configuration: the workload's footprint fits in 25 % local + 75 %
//! remote memory. Three ways to supply the missing 75 %:
//!
//! * **local swap** (baseline): a local storage device behind the kernel
//!   swap path (the prototype's SATA-class disk, with the slow 667 MHz
//!   core paying a heavyweight fault path);
//! * **CRMA**: hot-plug the remote memory and let hardware serve line
//!   fills (no faults at all);
//! * **RDMA swap**: the same kernel swap path, but pages come from remote
//!   memory over the RDMA channel (§5.2.1's virtual block device).
//!
//! The published series (normalized performance vs the swap baseline,
//! log scale) is: all-local 403.8 / 1.13 / 2.48 / 6.90, CRMA 159 / 0.65 /
//! 1.07 / 4.86, RDMA 3.30 / 1.10 / 2.07 / 3.22 for InMemDB / CC / Grep /
//! Graph500.

use venice_fabric::NodeId;
use venice_sim::Time;
use venice_transport::{CrmaChannel, CrmaConfig, PathModel};
use venice_workloads::{ConnectedComponents, Graph500, GrepWorkload, OltpWorkload};

use crate::metrics::{Figure, Series};

/// Fraction of the footprint that does not fit locally.
const REMOTE_FRACTION: f64 = 0.75;

/// Per-workload swap/CRMA behavior. The fault costs are per *page fault*
/// and bake in the pattern-dependent amortization (sequential readahead,
/// community locality) derived in the module docs of `venice-memnode` and
/// DESIGN.md.
struct W {
    name: &'static str,
    /// Compute per operation.
    compute: Time,
    /// Data-tier accesses per operation.
    misses: f64,
    /// MLP against local memory.
    ov_local: f64,
    /// MLP the CRMA interface sustains for this pattern.
    ov_crma: f64,
    /// Page faults per operation at full residency miss.
    pages: f64,
    /// Effective per-fault cost on the local-disk path.
    disk_fault: Time,
    /// Effective per-fault cost on the RDMA-swap path.
    rdma_fault: Time,
}

fn workloads() -> Vec<W> {
    let bdb = OltpWorkload::fig5();
    let cc = ConnectedComponents::new();
    let grep = GrepWorkload::table1();
    let g500 = Graph500::table1();
    // Fault-path components on the 667 MHz core: ~280 us of kernel fault +
    // block-layer work, 800 us disk service (random), 40 us/page disk
    // streaming, 28 us RDMA page transfer; sequential readahead amortizes
    // the kernel cost over 32 pages, community locality over 8.
    let kernel = Time::from_us(280);
    let disk_random = Time::from_us(800);
    let disk_stream = Time::from_us(40);
    let rdma_page = Time::from_us(28);
    vec![
        W {
            name: "In-Mem DB",
            compute: bdb.query_cpu,
            misses: bdb.misses_per_query(),
            ov_local: 1.0,
            ov_crma: 1.0,
            pages: bdb.misses_per_query(),
            disk_fault: kernel + disk_random,
            rdma_fault: kernel + rdma_page,
        },
        W {
            name: "CC",
            compute: cc.edge_cpu,
            misses: cc.profile(1 << 30).misses_per_op,
            ov_local: 1.0,
            ov_crma: 1.0,
            pages: cc.profile(1 << 30).pages_per_op,
            disk_fault: (kernel + disk_random) / 8,
            rdma_fault: (kernel + rdma_page) / 8,
        },
        W {
            name: "Grep",
            compute: grep.page_scan_time(),
            misses: 64.0,
            ov_local: 4.0,
            ov_crma: 4.0,
            pages: 1.0,
            disk_fault: disk_stream + kernel / 32,
            rdma_fault: kernel / 32 + rdma_page / 8,
        },
        W {
            name: "Graph500",
            compute: g500.edge_cpu,
            misses: 1.0,
            ov_local: 8.0,
            ov_crma: 8.0,
            pages: g500.profile().pages_per_op,
            disk_fault: kernel + disk_random,
            rdma_fault: kernel + rdma_page,
        },
    ]
}

fn crma_latency() -> Time {
    let mut ch = CrmaChannel::new(NodeId(0), CrmaConfig::default());
    ch.map_window(1 << 40, 1 << 30, NodeId(1), 0)
        .expect("window");
    let path = PathModel::prototype_mesh();
    let _ = ch.read_latency(&path, 1 << 40);
    ch.read_latency(&path, (1 << 40) + 64).expect("mapped")
}

/// Generates Fig 15.
pub fn fig15() -> Figure {
    let local = Time::from_ns(100);
    let crma = crma_latency();
    let mut fig = Figure::new(
        "fig15",
        "Remote memory access performance, 75% remote / 25% local",
        "performance normalized to local-disk swapping (higher is better)",
    );
    let ws = workloads();
    fig.columns = ws.iter().map(|w| w.name.to_string()).collect();
    let mut all_local = Vec::new();
    let mut via_crma = Vec::new();
    let mut via_rdma = Vec::new();
    for w in &ws {
        let op_local = w.compute + local.scale(w.misses / w.ov_local);
        let op_swap = op_local + w.disk_fault.scale(w.pages * REMOTE_FRACTION);
        let op_rdma = op_local + w.rdma_fault.scale(w.pages * REMOTE_FRACTION);
        let eff_latency = crma.scale(REMOTE_FRACTION) + local.scale(1.0 - REMOTE_FRACTION);
        let op_crma = w.compute + eff_latency.scale(w.misses / w.ov_crma);
        all_local.push(op_swap.ratio(op_local));
        via_crma.push(op_swap.ratio(op_crma));
        via_rdma.push(op_swap.ratio(op_rdma));
    }
    fig.measured = vec![
        Series::new("all local (ideal)", all_local),
        Series::new("remote access via CRMA", via_crma),
        Series::new("remote access via RDMA", via_rdma),
    ];
    fig.paper = vec![
        Series::new("all local (ideal)", vec![403.80, 1.13, 2.48, 6.90]),
        Series::new("remote access via CRMA", vec![159.00, 0.65, 1.07, 4.86]),
        Series::new("remote access via RDMA", vec![3.30, 1.10, 2.07, 3.22]),
    ];
    fig.notes = "fault costs derive from the 667 MHz core's kernel fault path \
                 plus the backend; sequential workloads amortize via readahead"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series<'a>(f: &'a Figure, label: &str) -> &'a [f64] {
        &f.measured.iter().find(|s| s.label == label).unwrap().values
    }

    #[test]
    fn memory_is_a_critical_resource() {
        // "If swapping is avoided ... performance can be orders of
        // magnitude higher" — for the random-access DB.
        let f = fig15();
        let ideal = series(&f, "all local (ideal)");
        assert!(ideal[0] > 100.0, "{ideal:?}");
        // Streaming CC barely cares.
        assert!(ideal[1] < 2.0, "{ideal:?}");
    }

    #[test]
    fn venice_slowdown_within_paper_band() {
        // "Relative to using all local memory, the slowdown is limited to
        // 1.03x to 2.5x" for the best mode per workload.
        let f = fig15();
        let ideal = series(&f, "all local (ideal)").to_vec();
        let crma = series(&f, "remote access via CRMA").to_vec();
        let rdma = series(&f, "remote access via RDMA").to_vec();
        for i in 0..4 {
            let best = crma[i].max(rdma[i]);
            let slowdown = ideal[i] / best;
            assert!(
                (1.0..2.8).contains(&slowdown),
                "workload {i}: slowdown {slowdown:.2}"
            );
        }
    }

    #[test]
    fn access_pattern_decides_the_mode() {
        let f = fig15();
        let crma = series(&f, "remote access via CRMA").to_vec();
        let rdma = series(&f, "remote access via RDMA").to_vec();
        // Random fine-grain (In-Mem DB): CRMA >> RDMA swap.
        assert!(crma[0] > 10.0 * rdma[0], "{crma:?} {rdma:?}");
        // Contiguous CC: page-level swapping wins; CRMA is even worse
        // than the local-disk baseline (value < 1).
        assert!(rdma[1] > crma[1]);
        assert!(crma[1] < 1.0, "{crma:?}");
        // Graph500 favors CRMA.
        assert!(crma[3] > rdma[3]);
    }

    #[test]
    fn within_factor_two_of_paper_values() {
        let f = fig15();
        for (m, p) in f.measured.iter().zip(&f.paper) {
            for (mv, pv) in m.values.iter().zip(&p.values) {
                let r = mv / pv;
                assert!(
                    (0.5..2.0).contains(&r),
                    "{}: measured {mv:.2} vs paper {pv:.2}",
                    m.label
                );
            }
        }
    }
}
