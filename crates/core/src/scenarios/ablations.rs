//! Ablation studies for the design choices the paper calls out.
//!
//! These go beyond the published figures: they vary one design parameter
//! at a time to show *why* the design point works. Each returns a
//! [`Figure`] with an empty paper series (there is nothing published to
//! compare against).
//!
//! * donor policy — distance vs first-fit vs most-free (§5.3 notes the
//!   allocator "should consider distance ... ours only considers
//!   distance");
//! * CRMA outstanding-request slots — how much MLP the channel needs;
//! * QPair credit window — the flow-control sizing behind Fig 18;
//! * TLTLB capacity — translation caching for scattered windows;
//! * path contention — flows crossing paths on the mesh (the paper's
//!   explicit future-work question), run on the packet-level simulator;
//! * RDMA completion coalescing — the §5.2.1 double-buffering choice.

use venice_fabric::netsim::{FlowSpec, NetworkSim};
use venice_fabric::{Mesh3d, NodeId};
use venice_runtime::tables::{ResourceKind, ResourceRecord};
use venice_runtime::{DistancePolicy, DonorPolicy, FirstFitPolicy, MostFreePolicy};
use venice_sim::{SimRng, Time};
use venice_transport::collab::{CreditReturnPath, FlowControlModel};
use venice_transport::{
    CrmaChannel, CrmaConfig, PathModel, QpairConfig, Ramt, RdmaConfig, RdmaEngine, Tltlb,
};

use crate::metrics::{Figure, Series};

/// Donor-policy ablation: mean fabric distance (hops) and mean remote
/// read latency of the chosen donors when every node requests once.
pub fn ablation_policy() -> Figure {
    let mesh = Mesh3d::prototype();
    let topo = venice_fabric::topology::Topology::Mesh(mesh.clone());
    // Heterogeneous free capacity: node id * 64 MB spare.
    let candidates: Vec<ResourceRecord> = mesh
        .nodes()
        .map(|n| ResourceRecord {
            node: n,
            kind: ResourceKind::Memory,
            amount: (n.0 as u64 + 1) * (64 << 20),
            addr: 0,
            reported_at: Time::ZERO,
        })
        .collect();
    let policies: Vec<Box<dyn DonorPolicy>> = vec![
        Box::new(DistancePolicy),
        Box::new(FirstFitPolicy),
        Box::new(MostFreePolicy),
    ];
    let path = PathModel::prototype_mesh();
    let mut fig = Figure::new(
        "ablation_policy",
        "Donor-selection policy ablation",
        "mean donor distance (hops); mean remote cacheline latency (us)",
    );
    fig.columns = vec!["mean hops".into(), "mean CRMA us".into()];
    for policy in policies {
        let mut hops = 0.0;
        let mut latency = 0.0;
        for recipient in mesh.nodes() {
            let cands: Vec<ResourceRecord> = candidates
                .iter()
                .filter(|c| c.node != recipient)
                .copied()
                .collect();
            let donor = policy.select(&topo, recipient, &cands).expect("candidates");
            hops += mesh.hops(recipient, donor) as f64;
            let mut ch = CrmaChannel::new(recipient, CrmaConfig::default());
            ch.map_window(1 << 40, 1 << 26, donor, 0).expect("window");
            let _ = ch.read_latency(&path, 1 << 40);
            latency += ch
                .read_latency(&path, (1 << 40) + 64)
                .expect("mapped")
                .as_us_f64();
        }
        let n = mesh.len() as f64;
        fig.measured
            .push(Series::new(policy.name(), vec![hops / n, latency / n]));
    }
    fig.notes = "8 requests (one per node) against heterogeneous spare capacity".into();
    fig
}

/// CRMA MSHR sweep: sustained remote-read bandwidth vs outstanding slots.
pub fn ablation_mshrs() -> Figure {
    let mut fig = Figure::new(
        "ablation_mshrs",
        "CRMA outstanding-request (MSHR) sweep",
        "sustained remote read bandwidth (Gbps) on a direct link",
    );
    let sweeps = [1usize, 2, 4, 8, 16, 32];
    fig.columns = sweeps.iter().map(|m| m.to_string()).collect();
    let path = PathModel::direct_pair();
    let values: Vec<f64> = sweeps
        .iter()
        .map(|&mshrs| {
            let mut ch = CrmaChannel::new(
                NodeId(0),
                CrmaConfig {
                    mshrs,
                    ..CrmaConfig::default()
                },
            );
            ch.map_window(1 << 40, 1 << 30, NodeId(1), 0)
                .expect("window");
            let _ = ch.read_latency(&path, 1 << 40);
            ch.sustained_read_gbps(&path, (1 << 40) + 64)
                .expect("mapped")
        })
        .collect();
    fig.measured = vec![Series::new("read bandwidth", values)];
    fig.notes = "bandwidth = slots x line / round-trip, capped by the link; \
                 32 slots saturate a 5 Gbps link at the prototype's RTT"
        .into();
    fig
}

/// QPair credit-window sweep at 64 B messages, with credits over CRMA.
pub fn ablation_credit_window() -> Figure {
    let mut fig = Figure::new(
        "ablation_credit_window",
        "QPair credit-window sweep (64 B messages)",
        "effective bandwidth (Gbps)",
    );
    let windows = [4u32, 8, 16, 32, 64];
    fig.columns = windows.iter().map(|w| w.to_string()).collect();
    for via in [CreditReturnPath::OverQpair, CreditReturnPath::OverCrma] {
        let values: Vec<f64> = windows
            .iter()
            .map(|&w| {
                let mut m = FlowControlModel::venice_default();
                m.qpair = QpairConfig {
                    credits: w,
                    ..QpairConfig::on_chip()
                };
                m.effective_gbps(64, via)
            })
            .collect();
        let label = match via {
            CreditReturnPath::OverQpair => "credits via QPair",
            CreditReturnPath::OverCrma => "credits via CRMA",
        };
        fig.measured.push(Series::new(label, values));
    }
    fig.notes = "larger windows amortize the credit loop; the CRMA return \
                 path keeps its edge until the link saturates"
        .into();
    fig
}

/// TLTLB capacity sweep: hit rate over a scattered-window access stream.
pub fn ablation_tltlb() -> Figure {
    let mut fig = Figure::new(
        "ablation_tltlb",
        "Transport-layer TLB capacity sweep",
        "TLTLB hit rate (%) over a 64-window scattered access stream",
    );
    let sizes = [4usize, 8, 16, 32, 64, 128];
    fig.columns = sizes.iter().map(|s| s.to_string()).collect();
    let values: Vec<f64> = sizes
        .iter()
        .map(|&entries| {
            let mut ramt = Ramt::new(64);
            for w in 0..64u64 {
                ramt.map(w << 30, 1 << 22, NodeId((w % 7) as u16 + 1), w << 22)
                    .expect("window");
            }
            let mut tlb = Tltlb::new(entries, 4096, Time::from_ns(30));
            let mut rng = SimRng::seed(42);
            // Zipf-ish reuse: 80% of accesses hit 4 hot windows x 8 hot
            // pages (32-page hot set); the rest scatter uniformly.
            for _ in 0..20_000 {
                let (w, page) = if rng.chance(0.8) {
                    (rng.gen_range(0..4u64), rng.gen_range(0..8u64))
                } else {
                    (rng.gen_range(0..64u64), rng.gen_range(0..16u64))
                };
                let addr = (w << 30) + page * 4096;
                let _ = tlb.translate(&mut ramt, addr);
            }
            tlb.hit_rate() * 100.0
        })
        .collect();
    fig.measured = vec![Series::new("hit rate", values)];
    fig.notes = "misses pay a 30 ns RAMT walk; the prototype's 64 entries \
                 cover the hot working set"
        .into();
    fig
}

/// Path-contention study on the packet-level simulator: per-flow goodput
/// as 1–4 line-rate flows share the same mesh link.
pub fn ablation_contention() -> Figure {
    let mut fig = Figure::new(
        "ablation_contention",
        "Flows crossing paths on the mesh (packet-level simulation)",
        "per-flow goodput (Gbps) when N flows share the 0->1 link",
    );
    let counts = [1usize, 2, 3, 4];
    fig.columns = counts.iter().map(|c| format!("{c} flows")).collect();
    // Destinations whose XYZ routes all start with the 0->1 hop.
    let dsts = [NodeId(1), NodeId(3), NodeId(5), NodeId(7)];
    let gap = venice_fabric::LinkParams::venice_prototype().serialize(4096 + 16);
    let values: Vec<f64> = counts
        .iter()
        .map(|&n| {
            let mut sim = NetworkSim::new(Mesh3d::prototype());
            for dst in dsts.iter().take(n) {
                sim = sim.flow(FlowSpec::new(NodeId(0), *dst, 4096, 300).paced(gap));
            }
            let run = sim.run();
            (0..n).map(|f| run.goodput_gbps(f)).sum::<f64>() / n as f64
        })
        .collect();
    fig.measured = vec![Series::new("per-flow goodput", values)];
    fig.notes = "the paper defers crossing-path effects to future work; \
                 FIFO links divide bandwidth near-evenly"
        .into();
    fig
}

/// RDMA completion-coalescing ablation: 32 x 4 KB swap-out batch with and
/// without the §5.2.1 double-buffered descriptors.
pub fn ablation_double_buffering() -> Figure {
    let mut fig = Figure::new(
        "ablation_double_buffering",
        "RDMA descriptor double-buffering (32 x 4 KB batch)",
        "batch completion time (us)",
    );
    fig.columns = vec!["coalesced".into(), "per-transfer completions".into()];
    let path = PathModel::direct_pair();
    let mut with = RdmaEngine::new(
        NodeId(0),
        RdmaConfig {
            double_buffering: true,
            ..RdmaConfig::default()
        },
    );
    let mut without = RdmaEngine::new(
        NodeId(0),
        RdmaConfig {
            double_buffering: false,
            ..RdmaConfig::default()
        },
    );
    let t_with = with.batch_latency(&path, NodeId(1), 4096, 32).as_us_f64();
    let t_without = without
        .batch_latency(&path, NodeId(1), 4096, 32)
        .as_us_f64();
    fig.measured = vec![Series::new("batch time", vec![t_with, t_without])];
    fig.notes = "double buffering shares one completion across the batch, \
                 'to reduce interrupt overheads' (§5.2.1)"
        .into();
    fig
}

/// All ablations, in a stable order.
pub fn all_ablations() -> Vec<Figure> {
    vec![
        ablation_policy(),
        ablation_mshrs(),
        ablation_credit_window(),
        ablation_tltlb(),
        ablation_contention(),
        ablation_double_buffering(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_policy_minimizes_hops_and_latency() {
        let f = ablation_policy();
        let by_label = |l: &str| {
            f.measured
                .iter()
                .find(|s| s.label == l)
                .unwrap()
                .values
                .clone()
        };
        let distance = by_label("distance");
        for other in ["first-fit", "most-free"] {
            let o = by_label(other);
            assert!(distance[0] <= o[0] + 1e-9, "{other}: hops");
            assert!(distance[1] <= o[1] + 1e-9, "{other}: latency");
        }
        // Distance policy picks direct neighbors: exactly 1 hop.
        assert!((distance[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mshr_bandwidth_saturates() {
        let f = ablation_mshrs();
        let v = &f.measured[0].values;
        // Monotone nondecreasing, then flat at the 5 Gbps link cap.
        assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{v:?}");
        assert!((v[5] - 5.0).abs() < 1e-6, "{v:?}");
        // One slot alone is far from saturation.
        assert!(v[0] < 1.0, "{v:?}");
    }

    #[test]
    fn credit_window_closes_the_gap() {
        let f = ablation_credit_window();
        let qpair = &f.measured[0].values;
        let crma = &f.measured[1].values;
        for (q, c) in qpair.iter().zip(crma) {
            assert!(c >= q, "CRMA credits never lose");
        }
        // Bigger windows help both paths.
        assert!(qpair.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }

    #[test]
    fn tltlb_hit_rate_grows_with_capacity() {
        let f = ablation_tltlb();
        let v = &f.measured[0].values;
        assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{v:?}");
        assert!(v[0] < v[5], "{v:?}");
        // 128 entries cover the 32-page hot set plus churn.
        assert!(v[5] > 70.0, "{v:?}");
    }

    #[test]
    fn contention_divides_bandwidth() {
        let f = ablation_contention();
        let v = &f.measured[0].values;
        assert!(v[0] > 4.5, "solo flow near line rate: {v:?}");
        // Per-flow goodput shrinks roughly as 1/N.
        assert!(v.windows(2).all(|w| w[1] < w[0]), "{v:?}");
        assert!(v[3] < v[0] / 2.5, "{v:?}");
    }

    #[test]
    fn coalescing_saves_completion_time() {
        let f = ablation_double_buffering();
        let v = &f.measured[0].values;
        assert!(v[0] < v[1]);
        // 31 completions + posts at ~2.25 us each.
        assert!((v[1] - v[0] - 31.0 * 2.25).abs() < 1.0, "{v:?}");
    }
}
