//! Fig 14: the mini-datacenter Redis study (§7.1).
//!
//! A Redis-style cache answers 10 000 random queries in front of a MySQL
//! backend (Fig 13); cache capacity is swept from 70 MB to 350 MB in
//! 70 MB increments, supplied either locally or by donor nodes over CRMA
//! (keeping only a 50 MB local floor). The paper measures an execution-
//! time drop from 11 900 s to 758 s (15.7×) and near-identical local vs
//! remote curves until the miss rate gets small.

use venice_fabric::NodeId;
use venice_transport::{CrmaChannel, CrmaConfig, PathModel};
use venice_workloads::kv::{CacheMemory, KvCache};

use crate::metrics::{Figure, Series};

const QUERIES: u64 = 10_000;

fn crma_line_latency() -> venice_sim::Time {
    let mut ch = CrmaChannel::new(NodeId(0), CrmaConfig::default());
    ch.map_window(1 << 40, 1 << 30, NodeId(1), 0)
        .expect("window");
    let path = PathModel::prototype_mesh();
    let _ = ch.read_latency(&path, 1 << 40);
    ch.read_latency(&path, (1 << 40) + 64).expect("mapped")
}

/// Generates Fig 14: execution time (a) and miss rate (b) per capacity.
pub fn fig14() -> Figure {
    let kv = KvCache::fig14();
    let remote = CacheMemory::RemoteCrma(crma_line_latency());
    let mut fig = Figure::new(
        "fig14",
        "Redis service performance vs cache capacity (mini data center)",
        "execution time for 10000 queries (s); miss rate (%)",
    );
    fig.columns = KvCache::FIG14_CAPACITIES
        .iter()
        .map(|c| format!("{}MB", c >> 20))
        .collect();
    let caps = KvCache::FIG14_CAPACITIES;
    fig.measured = vec![
        Series::new(
            "exec time local (s)",
            caps.iter()
                .map(|&c| kv.run(QUERIES, c, CacheMemory::Local).as_secs_f64())
                .collect(),
        ),
        Series::new(
            "exec time remote (s)",
            caps.iter()
                .map(|&c| kv.run(QUERIES, c, remote).as_secs_f64())
                .collect(),
        ),
        Series::new(
            "miss rate (%)",
            caps.iter().map(|&c| kv.miss_rate(c) * 100.0).collect(),
        ),
    ];
    // The paper reports the endpoints numerically; intermediate bars are
    // read off the figure, so only the anchors go in the reference rows.
    fig.paper = vec![Series::new(
        "exec time local (s)",
        vec![11_900.0, 8_700.0, 5_700.0, 2_900.0, 758.0],
    )];
    fig.notes = "remote config keeps a 50 MB local floor; donors reached over \
                 CRMA on the prototype mesh; paper intermediate points read \
                 off the published chart"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_band() {
        let f = fig14();
        let local = &f.measured[0].values;
        let improvement = local[0] / local[4];
        // Paper: 15.7x.
        assert!((10.0..20.0).contains(&improvement), "{improvement:.1}");
    }

    #[test]
    fn remote_tracks_local_until_miss_rate_small() {
        let f = fig14();
        let local = &f.measured[0].values;
        let remote = &f.measured[1].values;
        // First capacity point: indistinguishable (<1%).
        assert!((remote[0] / local[0] - 1.0) < 0.01);
        // Last point: a visible but single-digit-percent gap (paper: 7%).
        let gap = remote[4] / local[4] - 1.0;
        assert!((0.02..0.12).contains(&gap), "gap = {gap:.3}");
        // The gap grows monotonically as the miss rate falls.
        let gaps: Vec<f64> = local.iter().zip(remote).map(|(l, r)| r / l - 1.0).collect();
        assert!(gaps.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{gaps:?}");
    }

    #[test]
    fn miss_rate_declines_to_near_five_percent() {
        let f = fig14();
        let miss = &f.measured[2].values;
        assert!(miss.windows(2).all(|w| w[1] < w[0]));
        assert!((2.0..10.0).contains(&miss[4]), "{miss:?}");
    }
}
