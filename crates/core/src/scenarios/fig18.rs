//! Fig 18: bandwidth improvement from credit-over-CRMA collaboration.

use venice_transport::collab::FlowControlModel;

use crate::metrics::{Figure, Series};

/// Generates Fig 18: QPair effective-bandwidth improvement when SDP
/// credits return over the CRMA channel instead of the QPair itself.
pub fn fig18() -> Figure {
    let model = FlowControlModel::venice_default();
    let mut fig = Figure::new(
        "fig18",
        "Bandwidth improvement through synergistic operation",
        "% effective-bandwidth improvement of CRMA-carried credits",
    );
    fig.columns = FlowControlModel::FIG18_SIZES
        .iter()
        .map(|s| format!("{s}B"))
        .collect();
    let values: Vec<f64> = FlowControlModel::FIG18_SIZES
        .iter()
        .map(|&s| model.improvement(s) * 100.0)
        .collect();
    fig.measured = vec![Series::new("credit via CRMA", values)];
    // Paper: improvements from 28% (large packets) to 51% (small),
    // monotone in packet size; per-size bars read off the chart.
    fig.paper = vec![Series::new(
        "credit via CRMA",
        vec![51.0, 48.0, 44.0, 39.0, 33.0, 28.0],
    )];
    fig.notes = "SDP-style window of 16 credits; credit loop includes the \
                 window's serialization"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_band_and_monotonicity() {
        let f = fig18();
        let v = &f.measured[0].values;
        // Paper band: 28-51%.
        assert!(v.iter().all(|&x| (20.0..60.0).contains(&x)), "{v:?}");
        // Greater for small packets.
        assert!(v.windows(2).all(|w| w[1] <= w[0]), "{v:?}");
        // Span at least 15 points between extremes.
        assert!(v[0] - v[5] > 15.0, "{v:?}");
    }

    #[test]
    fn within_ten_points_of_paper() {
        let f = fig18();
        for (m, p) in f.measured[0].values.iter().zip(&f.paper[0].values) {
            assert!((m - p).abs() < 10.0, "measured {m:.1} vs paper {p:.1}");
        }
    }
}
