//! Figs 5 and 6: the architectural-support study (§4.2).
//!
//! Five configurations reach 1 GB of remote data on a directly connected
//! node (Fig 5), then the same pair is rejoined through one external
//! router (Fig 6). PageRank (latency-tolerant) and BerkeleyDB
//! (dependence-bound) bracket the workload space.

use venice_baselines::AsyncQpair;
use venice_workloads::{MemoryProfile, OltpWorkload, PageRank};

use crate::channels::{ChannelConfig, ChannelLatencies};
use crate::metrics::{Figure, Series};

struct Setup {
    profile: MemoryProfile,
    asynk: AsyncQpair,
    unit_bytes: u64,
}

fn setups() -> Vec<Setup> {
    vec![
        Setup {
            profile: PageRank::new().profile(1 << 30),
            asynk: AsyncQpair::latency_tolerant(),
            // PageRank's messaging library fetches small rank batches.
            unit_bytes: 256,
        },
        Setup {
            profile: OltpWorkload::fig5().profile(),
            asynk: AsyncQpair::dependence_bound(),
            // BerkeleyDB fetches whole 4 KB index nodes per access.
            unit_bytes: 4096,
        },
    ]
}

fn columns() -> Vec<String> {
    ChannelConfig::ALL
        .iter()
        .map(|c| c.label().to_string())
        .collect()
}

/// Generates Fig 5: normalized execution time per configuration.
pub fn fig5() -> Figure {
    let mut fig = Figure::new(
        "fig5",
        "Relative performance of system configurations (direct link)",
        "execution time normalized to all-local memory (lower is better)",
    );
    fig.columns = columns();
    for s in setups() {
        let lat = ChannelLatencies::fig5(s.unit_bytes);
        let values: Vec<f64> = ChannelConfig::ALL
            .iter()
            .map(|&c| lat.slowdown(&s.profile, c, &s.asynk))
            .collect();
        fig.measured.push(Series::new(s.profile.name, values));
    }
    fig.paper = vec![
        Series::new("PageRank", vec![7.69, 5.96, 3.12, 3.01, 2.12]),
        Series::new("BerkeleyDB", vec![11.92, 10.91, 10.83, 3.43, 2.48]),
    ];
    fig.notes = "1 GB of data on a directly connected donor".into();
    fig
}

/// Generates Fig 6: percentage overhead of inserting a one-level router.
pub fn fig6() -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "Performance impact of off-chip router delay",
        "% execution-time overhead vs the direct link (lower is better)",
    );
    fig.columns = columns();
    for s in setups() {
        let direct = ChannelLatencies::fig5(s.unit_bytes);
        let routed = ChannelLatencies::fig6(s.unit_bytes);
        let values: Vec<f64> = ChannelConfig::ALL
            .iter()
            .map(|&c| {
                let d = direct.op_time(&s.profile, c, &s.asynk);
                let r = routed.op_time(&s.profile, c, &s.asynk);
                (r.ratio(d) - 1.0) * 100.0
            })
            .collect();
        fig.measured.push(Series::new(s.profile.name, values));
    }
    fig.paper = vec![
        Series::new("PageRank", vec![11.70, 13.42, 2.02, 13.92, 22.72]),
        Series::new("BerkeleyDB", vec![7.66, 7.33, 7.39, 11.08, 16.13]),
    ];
    fig.notes = "router modeled inline on the same cable: a cut-through \
                 transit (buffering, lookup, arbitration, port conversion)"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_key_claims() {
        let f = fig5();
        let pr = &f.measured[0].values;
        let bdb = &f.measured[1].values;
        // On-chip CRMA is the best configuration for both workloads.
        assert!(pr[4] < pr.iter().take(4).cloned().fold(f64::MAX, f64::min));
        assert!(bdb[4] < bdb.iter().take(4).cloned().fold(f64::MAX, f64::min));
        // "Remote-access penalties down to much more tolerable levels
        // (e.g., 2-3x)".
        assert!((1.7..3.0).contains(&pr[4]), "{pr:?}");
        assert!((2.0..3.0).contains(&bdb[4]), "{bdb:?}");
        // The async rewrite helps PageRank (>35% better than sync QPair)
        // but not BerkeleyDB (<5%).
        assert!(pr[2] < pr[1] * 0.65, "{pr:?}");
        assert!((bdb[2] - bdb[1]).abs() / bdb[1] < 0.05, "{bdb:?}");
    }

    #[test]
    fn fig5_on_chip_crma_boost_over_off_chip() {
        // Paper: on-chip integration buys ~1.4x for PageRank CRMA.
        let f = fig5();
        let pr = &f.measured[0].values;
        let boost = pr[3] / pr[4];
        assert!((1.15..1.6).contains(&boost), "boost = {boost:.2}");
    }

    #[test]
    fn fig6_key_claims() {
        let f = fig6();
        let pr = &f.measured[0].values;
        let bdb = &f.measured[1].values;
        // "For configurations supporting CRMA, the impact ... is large
        // (over 20%)" — on-chip CRMA, PageRank.
        assert!(pr[4] > 15.0, "{pr:?}");
        // "The only exception is when the code already hides latency":
        // async sees almost nothing.
        assert!(pr[2] < 5.0, "{pr:?}");
        // Higher-performing configurations hurt more (CRMA > QPair).
        assert!(pr[4] > pr[1], "{pr:?}");
        assert!(bdb[4] > bdb[1], "{bdb:?}");
    }

    #[test]
    fn fig5_within_40_percent_of_paper() {
        let f = fig5();
        for (m, p) in f.measured.iter().zip(&f.paper) {
            for (mv, pv) in m.values.iter().zip(&p.values) {
                let ratio = mv / pv;
                assert!(
                    (0.6..1.67).contains(&ratio),
                    "{}: measured {mv:.2} vs paper {pv:.2}",
                    m.label
                );
            }
        }
    }
}
