//! Fig 16: sharing remote accelerators (a) and remote NICs (b).

use venice_accel::Dispatcher;
use venice_vnic::BondedInterface;
use venice_workloads::fft::FftDataset;
use venice_workloads::IperfStream;

use crate::metrics::{Figure, Series};

/// Generates Fig 16a: FFT speedup with 1 local + N remote accelerators.
pub fn fig16a() -> Figure {
    let mut fig = Figure::new(
        "fig16a",
        "Performance benefits of sharing remote accelerators",
        "speedup over one local accelerator (higher is better)",
    );
    fig.columns = vec!["LA+1RA".into(), "LA+2RA".into(), "LA+3RA".into()];
    for (label, dataset) in [
        ("8MB dataset", FftDataset::small()),
        ("512MB dataset", FftDataset::large()),
    ] {
        let values: Vec<f64> = (1..=3)
            .map(|remote| Dispatcher::fig16a(remote).speedup(dataset.bytes, dataset.task_bytes))
            .collect();
        fig.measured.push(Series::new(label, values));
    }
    // The paper shows near-linear bars; read off the chart.
    fig.paper = vec![
        Series::new("8MB dataset", vec![1.85, 2.65, 3.4]),
        Series::new("512MB dataset", vec![1.95, 2.85, 3.7]),
    ];
    fig.notes = "XFFT tasks dispatched through mailboxes; input/output moved \
                 by RDMA; paper values read off the published chart"
        .into();
    fig
}

/// Generates Fig 16b: bonded-NIC utilization for tiny and normal packets.
pub fn fig16b() -> Figure {
    let mut fig = Figure::new(
        "fig16b",
        "Performance benefits of sharing remote NICs",
        "utilization of aggregate line capacity (%)",
    );
    fig.columns = vec!["LN+1RN".into(), "LN+2RN".into(), "LN+3RN".into()];
    for &size in IperfStream::FIG16B_SIZES.iter() {
        let label = format!("{size}B packets");
        let values: Vec<f64> = (1..=3)
            .map(|remote| BondedInterface::fig16b(remote).utilization(size) * 100.0)
            .collect();
        fig.measured.push(Series::new(label, values));
    }
    // Anchors the paper states in prose: ~40% at LN+3RN for tiny packets,
    // ~85% for 256 B; nearer-linear at fewer remotes.
    fig.paper = vec![
        Series::new("4B packets", vec![62.0, 48.0, 40.0]),
        Series::new("256B packets", vec![92.0, 88.0, 85.0]),
    ];
    fig.notes = "IP-over-QPair VNICs bonded with the local gigabit NIC; \
                 iperf-style fixed-size streams"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerator_scaling_near_linear() {
        let f = fig16a();
        for s in &f.measured {
            // Monotone increasing and within 25% of ideal at 4 devices.
            assert!(s.values.windows(2).all(|w| w[1] > w[0]), "{:?}", s.values);
            assert!(s.values[2] > 3.0, "{:?}", s.values);
            assert!(s.values[2] <= 4.0);
        }
    }

    #[test]
    fn large_dataset_scales_at_least_as_well() {
        let f = fig16a();
        let small = &f.measured[0].values;
        let large = &f.measured[1].values;
        for i in 0..3 {
            assert!(large[i] >= small[i] - 1e-9);
        }
    }

    #[test]
    fn nic_utilization_anchors() {
        let f = fig16b();
        let tiny = &f.measured[0].values;
        let normal = &f.measured[1].values;
        // Paper prose: ~40% and ~85% at three remote NICs.
        assert!((30.0..55.0).contains(&tiny[2]), "{tiny:?}");
        assert!((75.0..95.0).contains(&normal[2]), "{normal:?}");
        // Utilization degrades as more (slower) remote NICs join.
        assert!(tiny.windows(2).all(|w| w[1] <= w[0]), "{tiny:?}");
    }
}
