//! One scenario per table/figure of the paper's evaluation.
//!
//! Each function is deterministic and returns a [`crate::Figure`] holding
//! our measured series next to the paper's published series. The bench
//! crate's `figures` binary prints them; integration tests assert the
//! *shape* targets from DESIGN.md (orderings, crossover positions,
//! factor bands) rather than absolute equality — our substrate is a
//! calibrated simulator, not the authors' FPGA rack.

pub mod ablations;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig3;
pub mod fig5;
pub mod table1;
pub mod validation;

pub use ablations::all_ablations;
pub use fig14::fig14;
pub use fig15::fig15;
pub use fig16::{fig16a, fig16b};
pub use fig17::fig17;
pub use fig18::fig18;
pub use fig3::fig3;
pub use fig5::{fig5, fig6};
pub use table1::{cost_table, table1};
pub use validation::validation;

use crate::Figure;

/// Every scenario in paper order; the harness iterates this.
pub fn all() -> Vec<Figure> {
    let mut figures = vec![
        fig3(),
        fig5(),
        fig6(),
        fig14(),
        fig15(),
        fig16a(),
        fig16b(),
        fig17(),
        fig18(),
        table1(),
        cost_table(),
        validation(),
    ];
    figures.extend(all_ablations());
    figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_produce_consistent_figures() {
        for fig in all() {
            assert!(!fig.id.is_empty());
            assert!(!fig.columns.is_empty(), "{} has no columns", fig.id);
            for s in fig.measured.iter().chain(fig.paper.iter()) {
                assert_eq!(
                    s.values.len(),
                    fig.columns.len(),
                    "{}: series {} width mismatch",
                    fig.id,
                    s.label
                );
                assert!(
                    s.values.iter().all(|v| v.is_finite()),
                    "{}: series {} has non-finite values",
                    fig.id,
                    s.label
                );
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = all();
        let b = all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "{} not deterministic", x.id);
        }
    }

    #[test]
    fn measured_orderings_match_paper() {
        // The weakest shape criterion: within every series the ranking of
        // configurations matches the paper.
        for fig in all() {
            let bad = fig.ordering_mismatches();
            assert!(bad.is_empty(), "{}: ordering mismatch in {:?}", fig.id, bad);
        }
    }
}
