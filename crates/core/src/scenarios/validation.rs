//! §4.2 prototype validation: "when validating our prototype against an
//! Intel Xeon E5620 server running the same workloads and software stack,
//! the wall-clock times we measure are consistently about 1/16th those on
//! the target machine (within 10% variation)."
//!
//! We reproduce the calibration arithmetic: the slowdown factor of the
//! prototype relative to the Xeon decomposes into a per-core compute
//! factor (clock × IPC) and a memory-system factor, and their product
//! must land at ~16× for the mix of compute- and memory-bound phases the
//! workloads present.

use venice_memnode::CpuModel;

use crate::metrics::{Figure, Series};

/// How much further the Zynq's memory path falls behind the Xeon's, on
/// top of the per-instruction compute factor: the PL-attached DRAM path
/// has no L3, little prefetching, and a narrow controller.
const MEMORY_EXPANSION: f64 = 2.4;

/// Scale factor for a workload spending `compute_fraction` of its Xeon
/// time core-bound: the per-instruction compute factor applies to all of
/// it, and memory-bound time expands by an additional factor.
fn scale_factor(compute_fraction: f64) -> f64 {
    let a9 = CpuModel::venice_prototype();
    let xeon = CpuModel::xeon_e5620();
    // Per-instruction time ratio: (cpi/mhz) over (cpi/mhz) ≈ 6.7.
    let compute_factor = (a9.cpi / a9.mhz) / (xeon.cpi / xeon.mhz);
    compute_factor * (compute_fraction + (1.0 - compute_fraction) * MEMORY_EXPANSION)
}

/// Generates the validation figure: scale factors for a range of
/// compute-boundedness, bracketing the published 16×.
pub fn validation() -> Figure {
    let mut fig = Figure::new(
        "validation",
        "Prototype-vs-Xeon wall-clock scale factor (§4.2)",
        "prototype time / Xeon time",
    );
    let mixes = [0.0, 0.1, 0.2, 0.3];
    fig.columns = mixes
        .iter()
        .map(|m| format!("{:.0}% compute", m * 100.0))
        .collect();
    fig.measured = vec![Series::new(
        "scale factor",
        mixes.iter().map(|&m| scale_factor(m)).collect(),
    )];
    // The paper reports one number (16, ±10%) for its memory-bound
    // data-center workload mix; the published point corresponds to the
    // memory-bound end of the range.
    fig.paper = vec![Series::new("scale factor", vec![16.0, 15.1, 14.2, 13.3])];
    fig.notes = "decomposition: clock x IPC compute factor, memory factor 2.4; \
                 paper reports 1/16th wall-clock within 10%"
        .into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_mix_lands_near_sixteen() {
        let f = validation();
        let s = f.measured[0].values[0];
        assert!((14.4..17.6).contains(&s), "scale factor {s:.1}");
    }

    #[test]
    fn factor_decreases_with_compute_boundedness() {
        let f = validation();
        let v = &f.measured[0].values;
        assert!(v.windows(2).all(|w| w[1] < w[0]), "{v:?}");
    }
}
