#![warn(missing_docs)]

//! # Venice: server architectures for effective resource sharing
//!
//! A full reproduction of *"Venice: Exploring Server Architectures for
//! Effective Resource Sharing"* (Dong et al., HPCA 2016) as a Rust
//! library. Venice makes the inter-node fabric a first-class on-chip
//! resource and layers three transport channels over it — CRMA (cacheline
//! loads/stores to remote memory), RDMA (bulk DMA), and QPair (user-level
//! messaging) — plus a Monitor-Node runtime that brokers memory,
//! accelerator, and NIC borrowing between nodes.
//!
//! The paper evaluates an 8-node FPGA prototype; this crate drives
//! calibrated models of the same stack (see `venice-fabric`,
//! `venice-transport`, `venice-memnode`, `venice-accel`, `venice-vnic`,
//! `venice-runtime`, `venice-baselines`, `venice-workloads`) and
//! regenerates every table and figure of the evaluation through
//! [`scenarios`].
//!
//! # Quickstart
//!
//! ```
//! use venice::cluster::Cluster;
//!
//! // Build the paper's 8-node prototype and borrow 256 MB of remote
//! // memory for node 0 through the Monitor Node.
//! let mut cluster = Cluster::prototype();
//! let lease = cluster.borrow_memory(venice::NodeId(0), 256 << 20).unwrap();
//! assert_ne!(lease.donor, venice::NodeId(0));
//!
//! // Node 0 can now read the borrowed region with plain loads; the
//! // simulator reports the end-to-end cacheline latency.
//! let latency = cluster.crma_read(venice::NodeId(0), lease.local_base).unwrap();
//! assert!(latency.as_us_f64() > 2.0);
//! cluster.release(lease).unwrap();
//! ```

pub mod channels;
pub mod cluster;
pub mod config;
pub mod costmodel;
pub mod metrics;
pub mod scenarios;

pub use channels::{ChannelConfig, ChannelLatencies};
pub use cluster::{Cluster, MemoryLease, ShareError, SubleaseChain};
pub use config::PlatformConfig;
pub use costmodel::CostModel;
pub use metrics::{Figure, Series};

pub use venice_fabric::NodeId;
pub use venice_sim::Time;
