//! End-to-end cluster composition: nodes + fabric + runtime.
//!
//! `Cluster` wires the substrate crates together and executes the paper's
//! Fig 2 memory-sharing flow against *real* state: agents heartbeat into
//! the Monitor Node, a request selects a donor by distance, the donor's
//! address space hot-removes the region, the recipient hot-plugs it and
//! programs a CRMA window, and subsequent reads translate through the
//! RAMT and pay the fabric round trip. The single-subscriber invariant is
//! enforced by construction and checked in tests.

use venice_fabric::topology::Topology;
use venice_fabric::{Mesh3d, NodeId};
use venice_memnode::AddressSpace;
use venice_runtime::flows::FlowTiming;
use venice_runtime::tables::ResourceKind;
use venice_runtime::{AllocError, DistancePolicy, MonitorNode, NodeAgent};
use venice_sim::Time;
use venice_transport::ramt::EntryId;
use venice_transport::{CrmaChannel, CrmaConfig, PathModel};

use crate::config::PlatformConfig;

/// Errors from cluster sharing operations.
#[derive(Debug, PartialEq, Eq)]
pub enum ShareError {
    /// The Monitor Node could not allocate.
    Alloc(
        /// Underlying allocation failure.
        AllocError,
    ),
    /// Address-space manipulation failed (hot-remove/hot-plug).
    Memory(
        /// Underlying memory error.
        venice_memnode::MemError,
    ),
    /// CRMA window programming failed.
    Window(
        /// Underlying RAMT error.
        venice_transport::RamtError,
    ),
    /// Unknown node.
    NoSuchNode,
    /// Address is not remote-mapped.
    NotRemote,
    /// The node holds no active lease to release.
    NoLease,
    /// The grant already carries a sublease annotation.
    AlreadySubleased,
}

impl std::fmt::Display for ShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareError::Alloc(e) => write!(f, "allocation failed: {e}"),
            ShareError::Memory(e) => write!(f, "memory operation failed: {e}"),
            ShareError::Window(e) => write!(f, "window programming failed: {e}"),
            ShareError::NoSuchNode => f.write_str("unknown node"),
            ShareError::NotRemote => f.write_str("address is not remote-mapped"),
            ShareError::NoLease => f.write_str("node holds no active lease"),
            ShareError::AlreadySubleased => f.write_str("grant is already subleased"),
        }
    }
}

impl std::error::Error for ShareError {}

/// One node's composed state.
#[derive(Debug)]
pub struct Node {
    /// Physical memory map.
    pub memory: AddressSpace,
    /// Availability-reporting daemon.
    pub agent: NodeAgent,
    /// CRMA channel hardware.
    pub crma: CrmaChannel,
    /// Next free address for hot-plugging borrowed regions (grows above
    /// the 4 GB line as in Fig 10).
    next_plug_base: u64,
    /// Regions this node reclaimed from out-of-order lease releases that
    /// cannot be re-advertised yet: the lendable space is a bump
    /// allocator growing from `agent.lendable_base`, so a reclaimed
    /// region below a still-lent one stays parked here until the stack
    /// above it unwinds (see [`Cluster::release`]).
    reclaim_holes: Vec<(u64, u64)>,
}

/// A sublease annotation on an active grant: the tenant-economy chain
/// behind the node-level loan. The cluster does not interpret tenant
/// ids; it guarantees the chain lives and dies with the grant, so a
/// teardown (voluntary release *or* donor-demanded revoke) can never
/// leave a dangling sublease — and the lease layer's market ledger has
/// an independent source of truth to reconcile against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubleaseChain {
    /// Monitor-Node allocation id of the annotated grant.
    pub grant_id: u64,
    /// Tenant whose quota headroom pays for the grant.
    pub lessor: u32,
    /// Tenant whose backlog the grant serves.
    pub tenant: u32,
}

/// An established memory loan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLease {
    /// Monitor-Node allocation id.
    pub grant_id: u64,
    /// Borrowing node.
    pub recipient: NodeId,
    /// Lending node.
    pub donor: NodeId,
    /// Size in bytes.
    pub bytes: u64,
    /// Recipient-side base address of the hot-plugged window.
    pub local_base: u64,
    /// Donor-side base address of the lent region.
    pub donor_base: u64,
    /// RAMT entry handle on the recipient.
    pub window: EntryId,
    /// Time spent establishing the share (the Fig 2 flow).
    pub setup_time: Time,
}

/// A composed Venice cluster.
pub struct Cluster {
    /// Per-node state, indexed by node id.
    pub nodes: Vec<Node>,
    /// The Monitor Node.
    pub monitor: MonitorNode,
    /// Fabric path model.
    pub path: PathModel,
    /// Fig 2 flow timing.
    pub flow: FlowTiming,
    now: Time,
    /// Ledger of leases established through [`Cluster::borrow_memory`] and
    /// not yet released — the cluster-wide accounting view
    /// ([`Cluster::borrowed_bytes`], [`Cluster::release_newest`]).
    /// Callers holding their own lease handles may release them directly
    /// through [`Cluster::release`]; the ledger tracks both styles.
    active: Vec<MemoryLease>,
    /// Sublease chains annotated onto active grants
    /// ([`Cluster::mark_sublease`]); cleared by the teardown path, so an
    /// annotation can never outlive its grant.
    subleases: Vec<SubleaseChain>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Cluster {
    /// Builds the paper's 8-node prototype: 1 GB per node, 3D mesh,
    /// distance-based donor policy, and every node lending its top 512 MB
    /// when idle.
    pub fn prototype() -> Self {
        let config = PlatformConfig::venice_prototype();
        Self::with_config(&config, 512 << 20)
    }

    /// Builds a cluster from `config`, with each node willing to lend
    /// `lendable_bytes` of its top memory.
    pub fn with_config(config: &PlatformConfig, lendable_bytes: u64) -> Self {
        Self::from_mesh(config.mesh(), config.memory_bytes, lendable_bytes)
    }

    /// Builds a `dx × dy × dz` mesh cluster with `memory_bytes` per node,
    /// each willing to lend `lendable_bytes`. This is the constructor the
    /// loadgen sweeps use to scale beyond the paper's fixed 8-node
    /// prototype.
    pub fn mesh(dx: u16, dy: u16, dz: u16, memory_bytes: u64, lendable_bytes: u64) -> Self {
        Self::from_mesh(Mesh3d::new(dx, dy, dz), memory_bytes, lendable_bytes)
    }

    fn from_mesh(mesh: Mesh3d, memory_bytes: u64, lendable_bytes: u64) -> Self {
        let topology = Topology::Mesh(mesh.clone());
        let monitor = MonitorNode::new(topology.clone(), Box::new(DistancePolicy));
        let mut nodes = Vec::new();
        for id in mesh.nodes() {
            let mut agent = NodeAgent::new(id);
            agent.idle_memory = lendable_bytes.min(memory_bytes);
            agent.lendable_base = memory_bytes - agent.idle_memory;
            agent.neighbors = mesh.neighbors(id);
            nodes.push(Node {
                memory: AddressSpace::with_memory(id, memory_bytes),
                agent,
                crma: CrmaChannel::new(id, CrmaConfig::default()),
                // Borrowed windows hot-plug above both the 4 GB line (Fig
                // 10) and the node's own online region — nodes larger than
                // 4 GB would otherwise collide with their own memory.
                next_plug_base: memory_bytes.next_power_of_two().max(1 << 32),
                reclaim_holes: Vec::new(),
            });
        }
        let mut cluster = Cluster {
            nodes,
            monitor,
            path: PathModel {
                topology,
                ..PathModel::prototype_mesh()
            },
            flow: FlowTiming::default(),
            now: Time::ZERO,
            active: Vec::new(),
            subleases: Vec::new(),
        };
        cluster.tick_heartbeats();
        cluster
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulated wall-clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances time and delivers one heartbeat round from every agent.
    pub fn tick_heartbeats(&mut self) {
        self.now += Time::from_ms(100);
        let now = self.now;
        for node in &mut self.nodes {
            let hb = node.agent.heartbeat(now, |_| true);
            self.monitor.on_heartbeat(&hb);
        }
    }

    fn node(&self, id: NodeId) -> Result<&Node, ShareError> {
        self.nodes.get(id.0 as usize).ok_or(ShareError::NoSuchNode)
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, ShareError> {
        self.nodes
            .get_mut(id.0 as usize)
            .ok_or(ShareError::NoSuchNode)
    }

    /// Executes the full Fig 2 flow: `recipient` borrows `bytes` of
    /// remote memory from the nearest capable donor.
    ///
    /// # Errors
    ///
    /// Propagates Monitor-Node allocation failures, hot-remove/hot-plug
    /// errors, and CRMA window errors (all rolled back on failure).
    pub fn borrow_memory(
        &mut self,
        recipient: NodeId,
        bytes: u64,
    ) -> Result<MemoryLease, ShareError> {
        self.borrow_memory_filtered(recipient, bytes, |_| true)
    }

    /// [`Cluster::borrow_memory`] with a caller-supplied donor veto:
    /// `donor_ok` is ANDed into the Monitor Node's handshake, so a
    /// vetoed donor is consumed from the candidate set and the MN's
    /// retry loop falls through to the next-nearest one. Callers use
    /// this to steer placement by criteria the MN cannot see — e.g.
    /// fabric congestion along the recipient↔donor path.
    ///
    /// # Errors
    ///
    /// Propagates Monitor-Node allocation failures, hot-remove/hot-plug
    /// errors, and CRMA window errors (all rolled back on failure).
    pub fn borrow_memory_filtered(
        &mut self,
        recipient: NodeId,
        bytes: u64,
        donor_ok: impl Fn(NodeId) -> bool,
    ) -> Result<MemoryLease, ShareError> {
        let bytes = bytes.next_power_of_two();
        self.node(recipient)?;
        // A heartbeat round first: donors re-report their current idle
        // amounts and lendable bases, so the MN's view is fresh (its
        // records can otherwise be stale; see §5.3's handshake/retry).
        self.tick_heartbeats();
        let now = self.now;
        // ②③: request + donor selection with handshake (the donor
        // accepts if its address space really has the online region).
        let nodes = &self.nodes;
        let grant = self
            .monitor
            .request(
                recipient,
                ResourceKind::Memory,
                bytes,
                now,
                4,
                |donor, amount| {
                    donor_ok(donor)
                        && nodes
                            .get(donor.0 as usize)
                            .map(|n| n.memory.online_bytes() >= amount)
                            .unwrap_or(false)
                },
            )
            .map_err(ShareError::Alloc)?;
        // ③: donor hot-removes. Align the donated window inside the
        // lendable region.
        let donor_base = grant.addr;
        if let Err(e) = self
            .node_mut(grant.donor)?
            .memory
            .hot_remove(donor_base, bytes, recipient)
        {
            self.monitor.release(grant.id);
            return Err(ShareError::Memory(e));
        }
        // The donor now advertises less idle memory.
        {
            let donor_node = self.node_mut(grant.donor)?;
            donor_node.agent.idle_memory = donor_node.agent.idle_memory.saturating_sub(bytes);
            donor_node.agent.lendable_base += bytes;
        }
        // ④: recipient hot-plugs and programs its CRMA window.
        let local_base = {
            let r = self.node_mut(recipient)?;
            let base = r.next_plug_base.next_multiple_of(bytes);
            r.memory
                .hot_plug(base, bytes, grant.donor)
                .map_err(ShareError::Memory)?;
            r.next_plug_base = base + bytes;
            base
        };
        let window = {
            let r = self.node_mut(recipient)?;
            match r
                .crma
                .map_window(local_base, bytes, grant.donor, donor_base)
            {
                Ok(w) => w,
                Err(e) => {
                    r.memory.unplug(local_base).expect("just plugged");
                    self.monitor.release(grant.id);
                    return Err(ShareError::Window(e));
                }
            }
        };
        let setup_time = self.flow.establish(bytes);
        self.now += setup_time;
        let lease = MemoryLease {
            grant_id: grant.id,
            recipient,
            donor: grant.donor,
            bytes,
            local_base,
            donor_base,
            window,
            setup_time,
        };
        self.active.push(lease);
        Ok(lease)
    }

    /// Stop-sharing: tears down `lease` on both sides.
    ///
    /// # Errors
    ///
    /// Propagates teardown failures (double release, unknown nodes).
    pub fn release(&mut self, lease: MemoryLease) -> Result<(), ShareError> {
        self.teardown(lease, true)
    }

    /// Purges `lease` after its donor died: the full ledger teardown of
    /// [`Cluster::release`] — recipient unmap/unplug, donor-side
    /// reclaim with holes parked exactly as a live release would (the
    /// dead donor's address space must be truthful the instant it
    /// recovers), monitor grant retired, sublease chain dropped —
    /// **without charging the teardown flow's latency**: there is no
    /// live donor to run the Fig. 2 teardown handshake, the Monitor
    /// Node simply declares the grant dead.
    ///
    /// # Errors
    ///
    /// [`ShareError::NoLease`] when no active grant has that id;
    /// otherwise propagates teardown failures.
    pub fn purge(&mut self, grant_id: u64) -> Result<MemoryLease, ShareError> {
        let lease = *self
            .active
            .iter()
            .find(|l| l.grant_id == grant_id)
            .ok_or(ShareError::NoLease)?;
        self.teardown(lease, false)?;
        Ok(lease)
    }

    /// Purges every active grant touching `node` (as donor *or*
    /// recipient) — the cluster-side half of crash failover. Grants are
    /// purged oldest-first; the purged leases come back in that order
    /// so the caller can re-establish or account for each. No teardown
    /// latency is charged ([`Cluster::purge`]).
    ///
    /// # Errors
    ///
    /// Propagates the first teardown failure (the ledger is left with
    /// the grants already purged removed).
    pub fn purge_node(&mut self, node: NodeId) -> Result<Vec<MemoryLease>, ShareError> {
        let doomed: Vec<MemoryLease> = self
            .active
            .iter()
            .filter(|l| l.donor == node || l.recipient == node)
            .copied()
            .collect();
        for lease in &doomed {
            self.teardown(*lease, false)?;
        }
        Ok(doomed)
    }

    /// The shared teardown path behind [`Cluster::release`] (which
    /// charges the teardown flow latency) and [`Cluster::purge`] (which
    /// does not — a dead donor cannot run the handshake).
    fn teardown(&mut self, lease: MemoryLease, charge_latency: bool) -> Result<(), ShareError> {
        {
            let r = self.node_mut(lease.recipient)?;
            r.crma
                .unmap_window(lease.window)
                .map_err(ShareError::Window)?;
            r.memory
                .unplug(lease.local_base)
                .map_err(ShareError::Memory)?;
        }
        {
            let d = self.node_mut(lease.donor)?;
            d.memory
                .reclaim(lease.donor_base)
                .map_err(ShareError::Memory)?;
            if lease.donor_base + lease.bytes == d.agent.lendable_base {
                // Top of the donor's lent stack: re-advertise directly,
                // then unwind any earlier out-of-order reclaims that are
                // now exposed at the top.
                d.agent.lendable_base -= lease.bytes;
                d.agent.idle_memory += lease.bytes;
                loop {
                    let top = d.agent.lendable_base;
                    let Some(pos) = d
                        .reclaim_holes
                        .iter()
                        .position(|&(base, len)| base + len == top)
                    else {
                        break;
                    };
                    let (base, len) = d.reclaim_holes.swap_remove(pos);
                    d.agent.lendable_base = base;
                    d.agent.idle_memory += len;
                }
            } else {
                // Out-of-order release (a region below a still-lent one):
                // reclaimed in the address space, but the bump allocator
                // can only lend from the top, so the region must not be
                // re-advertised yet — doing so would hand the next grant
                // an address inside a still-lent window.
                d.reclaim_holes.push((lease.donor_base, lease.bytes));
            }
        }
        self.monitor.release(lease.grant_id);
        if charge_latency {
            self.now += self.flow.teardown(lease.bytes);
        }
        self.active.retain(|l| l.grant_id != lease.grant_id);
        // The sublease chain dies with its grant — releases and revokes
        // route through here, so no annotation can dangle.
        self.subleases.retain(|s| s.grant_id != lease.grant_id);
        Ok(())
    }

    /// Releases `recipient`'s most recently established lease (LIFO — the
    /// order an elastic tier shrinks in, since the newest window sits
    /// highest in the hot-plug range).
    ///
    /// # Errors
    ///
    /// [`ShareError::NoLease`] when the node holds no active lease;
    /// otherwise propagates teardown failures from [`Cluster::release`].
    pub fn release_newest(&mut self, recipient: NodeId) -> Result<MemoryLease, ShareError> {
        let lease = *self
            .active
            .iter()
            .rev()
            .find(|l| l.recipient == recipient)
            .ok_or(ShareError::NoLease)?;
        self.release(lease)?;
        Ok(lease)
    }

    /// Donor-demanded reclaim of a *specific* grant: `donor` pulls the
    /// lease identified by `grant_id` back from its recipient, through
    /// the same teardown path as a voluntary release (recipient unmaps
    /// its CRMA window and hot-unplugs; the donor reclaims — parking the
    /// region as a hole when it sits below a still-lent one, so the bump
    /// allocator never re-advertises space under a live lease).
    ///
    /// # Errors
    ///
    /// [`ShareError::NoLease`] when `donor` holds no active grant of
    /// that id (already released, or lent by someone else); otherwise
    /// propagates teardown failures from [`Cluster::release`].
    pub fn revoke(&mut self, donor: NodeId, grant_id: u64) -> Result<MemoryLease, ShareError> {
        let lease = *self
            .active
            .iter()
            .find(|l| l.donor == donor && l.grant_id == grant_id)
            .ok_or(ShareError::NoLease)?;
        self.release(lease)?;
        Ok(lease)
    }

    /// Donor-demanded reclaim of `donor`'s most recently established
    /// outgoing lease (LIFO: the newest grant unwinds the donor's bump
    /// allocator directly, so it is the cheapest to take back).
    ///
    /// # Errors
    ///
    /// [`ShareError::NoLease`] when `donor` has nothing lent out;
    /// otherwise propagates teardown failures from [`Cluster::release`].
    pub fn revoke_newest(&mut self, donor: NodeId) -> Result<MemoryLease, ShareError> {
        let grant_id = self
            .active
            .iter()
            .rev()
            .find(|l| l.donor == donor)
            .ok_or(ShareError::NoLease)?
            .grant_id;
        self.revoke(donor, grant_id)
    }

    /// Annotates the active grant `grant_id` with a sublease chain: the
    /// chunk serves `tenant` but `lessor`'s quota pays for it. The
    /// cluster keeps the chain on the active-lease ledger so teardown —
    /// voluntary release or donor revoke, holes parked and all — also
    /// retires the chain, and so the lease layer's market ledger can be
    /// reconciled against an independent accounting view.
    ///
    /// # Errors
    ///
    /// [`ShareError::NoLease`] when no active grant has that id;
    /// [`ShareError::AlreadySubleased`] when the grant already carries a
    /// chain (one chunk, one paying tenant).
    pub fn mark_sublease(
        &mut self,
        grant_id: u64,
        lessor: u32,
        tenant: u32,
    ) -> Result<(), ShareError> {
        if !self.active.iter().any(|l| l.grant_id == grant_id) {
            return Err(ShareError::NoLease);
        }
        if self.subleases.iter().any(|s| s.grant_id == grant_id) {
            return Err(ShareError::AlreadySubleased);
        }
        self.subleases.push(SubleaseChain {
            grant_id,
            lessor,
            tenant,
        });
        Ok(())
    }

    /// The sublease chain annotated on `grant_id`, if any.
    pub fn sublease_of(&self, grant_id: u64) -> Option<SubleaseChain> {
        self.subleases
            .iter()
            .find(|s| s.grant_id == grant_id)
            .copied()
    }

    /// All live sublease chains, in annotation order.
    pub fn active_subleases(&self) -> &[SubleaseChain] {
        &self.subleases
    }

    /// Total bytes currently held under a sublease chain (the market
    /// half of [`Cluster::borrowed_bytes`]).
    pub fn subleased_bytes(&self) -> u64 {
        self.subleases
            .iter()
            .map(|s| {
                self.active
                    .iter()
                    .find(|l| l.grant_id == s.grant_id)
                    .map(|l| l.bytes)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Bytes of live grants charged against `lessor`'s quota through
    /// sublease chains.
    pub fn subleased_bytes_charged_to(&self, lessor: u32) -> u64 {
        self.subleases
            .iter()
            .filter(|s| s.lessor == lessor)
            .map(|s| {
                self.active
                    .iter()
                    .find(|l| l.grant_id == s.grant_id)
                    .map(|l| l.bytes)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Bytes `recipient` currently holds under sublease chains (the
    /// market-charged slice of [`Cluster::borrowed_bytes_of`]) — the
    /// per-node gauge the telemetry sampler reads.
    pub fn subleased_bytes_of(&self, recipient: NodeId) -> u64 {
        self.subleases
            .iter()
            .map(|s| {
                self.active
                    .iter()
                    .find(|l| l.grant_id == s.grant_id && l.recipient == recipient)
                    .map(|l| l.bytes)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// All leases established and not yet released, in establishment order.
    pub fn active_leases(&self) -> &[MemoryLease] {
        &self.active
    }

    /// Total bytes currently borrowed across the cluster.
    pub fn borrowed_bytes(&self) -> u64 {
        self.active.iter().map(|l| l.bytes).sum()
    }

    /// Bytes `recipient` currently borrows from the rest of the cluster.
    pub fn borrowed_bytes_of(&self, recipient: NodeId) -> u64 {
        self.active
            .iter()
            .filter(|l| l.recipient == recipient)
            .map(|l| l.bytes)
            .sum()
    }

    /// Bytes `donor` currently has lent out to the rest of the cluster
    /// (the donor-side pressure signal's memory half).
    pub fn lent_bytes_of(&self, donor: NodeId) -> u64 {
        self.active
            .iter()
            .filter(|l| l.donor == donor)
            .map(|l| l.bytes)
            .sum()
    }

    /// A remote cacheline read by `node` at `addr` (must be inside a
    /// borrowed window): returns the end-to-end latency.
    ///
    /// # Errors
    ///
    /// [`ShareError::NotRemote`] when `addr` is not remote-mapped.
    pub fn crma_read(&mut self, node: NodeId, addr: u64) -> Result<Time, ShareError> {
        let path = self.path.clone();
        let n = self.node_mut(node)?;
        n.crma
            .read_latency(&path, addr)
            .ok_or(ShareError::NotRemote)
    }

    /// Checks the single-subscriber invariant across all nodes.
    pub fn memory_consistent(&self) -> bool {
        let spaces: Vec<AddressSpace> = self.nodes.iter().map(|n| n.memory.clone()).collect();
        AddressSpace::pairwise_consistent(&spaces)
    }

    /// Total memory visible to `node`'s OS.
    pub fn visible_memory(&self, node: NodeId) -> u64 {
        self.nodes
            .get(node.0 as usize)
            .map(|n| n.memory.visible_bytes())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrow_grows_visible_memory_and_stays_consistent() {
        let mut c = Cluster::prototype();
        let before = c.visible_memory(NodeId(0));
        let lease = c.borrow_memory(NodeId(0), 256 << 20).unwrap();
        assert_eq!(c.visible_memory(NodeId(0)), before + (256 << 20));
        assert!(c.memory_consistent());
        // Donor is a direct mesh neighbor (distance policy).
        assert!(
            [1u16, 2, 4].contains(&lease.donor.0),
            "donor {:?}",
            lease.donor
        );
        c.release(lease).unwrap();
        assert_eq!(c.visible_memory(NodeId(0)), before);
        assert!(c.memory_consistent());
    }

    #[test]
    fn borrowed_window_is_readable_and_torn_down() {
        let mut c = Cluster::prototype();
        let lease = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let lat = c.crma_read(NodeId(0), lease.local_base + 4096).unwrap();
        assert!(lat.as_us_f64() > 2.0 && lat.as_us_f64() < 20.0, "lat {lat}");
        c.release(lease).unwrap();
        assert_eq!(
            c.crma_read(NodeId(0), lease.local_base + 4096),
            Err(ShareError::NotRemote)
        );
    }

    #[test]
    fn multiple_borrowers_draw_from_different_donors() {
        let mut c = Cluster::prototype();
        // Each node lends up to 512 MB; ask for 512 MB twice from node 0:
        // two different donors must serve.
        let a = c.borrow_memory(NodeId(0), 512 << 20).unwrap();
        let b = c.borrow_memory(NodeId(0), 512 << 20).unwrap();
        assert_ne!(a.donor, b.donor);
        assert!(c.memory_consistent());
        assert_eq!(c.visible_memory(NodeId(0)), (1 << 30) + (1 << 30));
    }

    #[test]
    fn exhaustion_reports_no_capacity() {
        let config = PlatformConfig::venice_prototype();
        let mut c = Cluster::with_config(&config, 64 << 20);
        // 7 donors x 64 MB each; the 8th request must fail.
        let mut leases = Vec::new();
        for _ in 0..7 {
            leases.push(c.borrow_memory(NodeId(0), 64 << 20).unwrap());
        }
        let err = c.borrow_memory(NodeId(0), 64 << 20).unwrap_err();
        assert!(matches!(err, ShareError::Alloc(_)), "{err:?}");
        for l in leases {
            c.release(l).unwrap();
        }
        assert!(c.memory_consistent());
    }

    #[test]
    fn setup_time_scales_with_size() {
        let mut c = Cluster::prototype();
        let small = c.borrow_memory(NodeId(0), 64 << 20).unwrap();
        let large = c.borrow_memory(NodeId(3), 512 << 20).unwrap();
        assert!(large.setup_time > small.setup_time);
    }

    #[test]
    fn large_memory_nodes_plug_above_their_own_region() {
        // 8 GB nodes: borrowed windows must land above 8 GB, not at the
        // 4 GB line inside the node's own online memory.
        let mut c = Cluster::mesh(2, 2, 1, 8 << 30, 2 << 30);
        let lease = c.borrow_memory(NodeId(0), 1 << 30).unwrap();
        assert!(lease.local_base >= 8 << 30, "base {:#x}", lease.local_base);
        assert!(c.memory_consistent());
        c.release(lease).unwrap();
    }

    #[test]
    fn arbitrary_mesh_clusters_share_memory() {
        // A 4x2x2 (16-node) cluster, beyond the paper's 8-node prototype.
        let mut c = Cluster::mesh(4, 2, 2, 1 << 30, 512 << 20);
        assert_eq!(c.len(), 16);
        let lease = c.borrow_memory(NodeId(5), 128 << 20).unwrap();
        assert!(c.memory_consistent());
        let lat = c.crma_read(NodeId(5), lease.local_base).unwrap();
        assert!(lat.as_us_f64() > 1.0, "lat {lat}");
        c.release(lease).unwrap();
    }

    #[test]
    fn ledger_tracks_borrow_and_release() {
        let mut c = Cluster::prototype();
        assert_eq!(c.borrowed_bytes(), 0);
        let a = c.borrow_memory(NodeId(0), 64 << 20).unwrap();
        let b = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let other = c.borrow_memory(NodeId(3), 64 << 20).unwrap();
        assert_eq!(c.active_leases().len(), 3);
        assert_eq!(c.borrowed_bytes(), (64 << 20) + (128 << 20) + (64 << 20));
        assert_eq!(c.borrowed_bytes_of(NodeId(0)), (64 << 20) + (128 << 20));
        // LIFO release pops the newest lease for the node.
        let popped = c.release_newest(NodeId(0)).unwrap();
        assert_eq!(popped, b);
        assert_eq!(c.borrowed_bytes_of(NodeId(0)), 64 << 20);
        let popped = c.release_newest(NodeId(0)).unwrap();
        assert_eq!(popped, a);
        assert_eq!(c.release_newest(NodeId(0)), Err(ShareError::NoLease));
        c.release(other).unwrap();
        assert_eq!(c.borrowed_bytes(), 0);
        assert!(c.memory_consistent());
    }

    #[test]
    fn purge_skips_teardown_latency_but_keeps_the_ledger_honest() {
        let mut c = Cluster::prototype();
        let lease = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let before = c.now();
        let purged = c.purge(lease.grant_id).unwrap();
        assert_eq!(purged, lease);
        assert_eq!(c.now(), before, "a dead donor cannot run teardown");
        assert_eq!(c.borrowed_bytes(), 0);
        assert!(c.active_leases().is_empty());
        assert!(c.memory_consistent());
        assert_eq!(c.purge(lease.grant_id), Err(ShareError::NoLease));
        // The donor's capacity is whole again: the same borrow succeeds.
        let again = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        assert_eq!(again.donor, lease.donor);
        c.release(again).unwrap();
    }

    #[test]
    fn purge_parks_out_of_order_holes_like_a_release() {
        // Same shape as the out-of-order release test, through the
        // purge path: the older grant's region must park as a hole, not
        // be re-advertised under the still-lent newer window.
        let mut c = Cluster::mesh(2, 1, 1, 1 << 30, 512 << 20);
        let l1 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let l2 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        c.purge(l1.grant_id).unwrap();
        assert!(c.memory_consistent());
        let l3 = c.borrow_memory(NodeId(0), 256 << 20).unwrap();
        assert!(
            l3.donor_base >= l2.donor_base + l2.bytes,
            "purge re-advertised a hole under the live window"
        );
        assert!(c.memory_consistent());
    }

    #[test]
    fn purge_node_retires_every_grant_touching_the_dead_node() {
        let mut c = Cluster::prototype();
        // Node 0 borrows (node 0 as recipient), and some donor lends to
        // node 3 — crash whichever node donated to node 0.
        let a = c.borrow_memory(NodeId(0), 64 << 20).unwrap();
        let b = c.borrow_memory(NodeId(3), 64 << 20).unwrap();
        let dead = a.donor;
        let purged = c.purge_node(dead).unwrap();
        assert!(purged.contains(&a));
        let survivors = c.active_leases().to_vec();
        if b.donor == dead || b.recipient == dead {
            assert!(purged.contains(&b));
            assert!(survivors.is_empty());
        } else {
            assert_eq!(survivors, vec![b]);
        }
        assert!(c.memory_consistent());
        assert!(c.purge_node(dead).unwrap().is_empty());
    }

    #[test]
    fn purge_drops_the_sublease_chain_with_the_grant() {
        let mut c = Cluster::prototype();
        let lease = c.borrow_memory(NodeId(0), 64 << 20).unwrap();
        c.mark_sublease(lease.grant_id, 2, 5).unwrap();
        assert_eq!(c.subleased_bytes(), 64 << 20);
        c.purge(lease.grant_id).unwrap();
        assert_eq!(c.subleased_bytes(), 0);
        assert!(c.active_subleases().is_empty());
    }

    #[test]
    fn out_of_order_release_keeps_donor_lendable_consistent() {
        // Two leases from the same donor (a 2-node mesh has only one
        // donor), released oldest-first — the order a bump allocator
        // cannot unwind directly. The donor's advertised capacity must
        // stay truthful throughout, and fully recover once both are back.
        let mut c = Cluster::mesh(2, 1, 1, 1 << 30, 512 << 20);
        let l1 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let l2 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        assert_eq!(l1.donor, l2.donor);
        // Out-of-order: release the older lease first. Its region parks
        // as a hole (l2 still occupies the space above it), but the
        // donor's untouched top space remains grantable — and the next
        // borrow must come from there, never from inside l2's window
        // (the pre-fix bump pointer pointed straight at it).
        c.release(l1).unwrap();
        assert!(c.memory_consistent());
        let l3 = c.borrow_memory(NodeId(0), 256 << 20).unwrap();
        assert!(
            l3.donor_base >= l2.donor_base + l2.bytes,
            "grant {:#x} collides with the still-lent window at {:#x}",
            l3.donor_base,
            l2.donor_base
        );
        assert!(c.memory_consistent());
        // The parked hole is not re-advertised while l2 is live: the
        // donor's remaining capacity is exhausted, so another 128 MB
        // borrow must be refused rather than mis-granted from the hole.
        let err = c.borrow_memory(NodeId(0), 128 << 20).unwrap_err();
        assert!(matches!(err, ShareError::Alloc(_)), "{err:?}");
        // Releasing the newer lease unwinds the stack and re-exposes the
        // hole: after all releases the full lendable capacity returns.
        c.release(l3).unwrap();
        c.release(l2).unwrap();
        assert_eq!(c.borrowed_bytes(), 0);
        let big = c.borrow_memory(NodeId(0), 512 << 20).unwrap();
        assert!(c.memory_consistent());
        c.release(big).unwrap();
    }

    #[test]
    fn donor_revokes_newest_grant_and_capacity_recovers() {
        // A 2-node mesh: node 1 is the only donor for node 0.
        let mut c = Cluster::mesh(2, 1, 1, 1 << 30, 512 << 20);
        let l1 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let l2 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        assert_eq!(c.lent_bytes_of(NodeId(1)), 256 << 20);
        assert_eq!(
            c.active_leases()
                .iter()
                .filter(|l| l.donor == NodeId(1))
                .count(),
            2
        );
        // The donor demands its newest grant back: LIFO picks l2.
        let revoked = c.revoke_newest(NodeId(1)).unwrap();
        assert_eq!(revoked, l2);
        assert_eq!(c.lent_bytes_of(NodeId(1)), 128 << 20);
        assert_eq!(c.borrowed_bytes_of(NodeId(0)), 128 << 20);
        assert!(c.memory_consistent());
        // The reclaimed window is no longer readable on the recipient.
        assert_eq!(
            c.crma_read(NodeId(0), revoked.local_base + 64),
            Err(ShareError::NotRemote)
        );
        // Revoking a specific mid-stack grant parks a hole (l1 sits
        // below nothing now, so here it unwinds directly) and the full
        // capacity is grantable again afterwards.
        c.revoke(NodeId(1), l1.grant_id).unwrap();
        assert_eq!(c.borrowed_bytes(), 0);
        let big = c.borrow_memory(NodeId(0), 512 << 20).unwrap();
        assert!(c.memory_consistent());
        c.release(big).unwrap();
        // Nothing lent: a revoke has nothing to take.
        assert_eq!(c.revoke_newest(NodeId(1)), Err(ShareError::NoLease));
        // A donor cannot revoke someone else's grant id.
        let l3 = c.borrow_memory(NodeId(0), 64 << 20).unwrap();
        assert_eq!(
            c.revoke(NodeId(0), l3.grant_id),
            Err(ShareError::NoLease),
            "only the lease's donor may revoke it"
        );
        c.release(l3).unwrap();
    }

    #[test]
    fn sublease_chains_live_and_die_with_their_grants() {
        // A 2-node mesh: node 1 is the only donor for node 0.
        let mut c = Cluster::mesh(2, 1, 1, 1 << 30, 512 << 20);
        let l1 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        let l2 = c.borrow_memory(NodeId(0), 128 << 20).unwrap();
        // Annotate the *older* grant: tenant 3 uses it, tenant 7 pays.
        c.mark_sublease(l1.grant_id, 7, 3).unwrap();
        assert_eq!(
            c.sublease_of(l1.grant_id),
            Some(SubleaseChain {
                grant_id: l1.grant_id,
                lessor: 7,
                tenant: 3
            })
        );
        assert_eq!(c.sublease_of(l2.grant_id), None);
        assert_eq!(c.subleased_bytes(), 128 << 20);
        assert_eq!(c.subleased_bytes_charged_to(7), 128 << 20);
        assert_eq!(c.subleased_bytes_charged_to(3), 0);
        // The per-node view attributes the chain to the recipient.
        assert_eq!(c.subleased_bytes_of(NodeId(0)), 128 << 20);
        assert_eq!(c.subleased_bytes_of(NodeId(1)), 0);
        // One chunk, one paying tenant: double-marking is refused, and
        // an unknown grant cannot be marked.
        assert_eq!(
            c.mark_sublease(l1.grant_id, 9, 3),
            Err(ShareError::AlreadySubleased)
        );
        assert_eq!(c.mark_sublease(0xDEAD, 7, 3), Err(ShareError::NoLease));
        // The donor revokes the subleased grant — mid-stack, so the
        // reclaimed region parks as a hole under the still-lent l2. The
        // chain must die with the grant and the hole must stay parked
        // (no mis-grant from inside l2's window).
        let revoked = c.revoke(NodeId(1), l1.grant_id).unwrap();
        assert_eq!(revoked.grant_id, l1.grant_id);
        assert_eq!(c.sublease_of(l1.grant_id), None);
        assert_eq!(c.subleased_bytes(), 0);
        assert!(c.memory_consistent());
        // The donor's remaining capacity excludes the parked hole: a
        // 384 MB grant (the untouched top) fits, the hole does not rejoin
        // until l2 unwinds.
        let l3 = c.borrow_memory(NodeId(0), 256 << 20).unwrap();
        assert!(
            l3.donor_base >= l2.donor_base + l2.bytes,
            "grant {:#x} collides with the still-lent window at {:#x}",
            l3.donor_base,
            l2.donor_base
        );
        // Voluntary release also retires a chain.
        c.mark_sublease(l3.grant_id, 1, 2).unwrap();
        assert_eq!(c.subleased_bytes(), 256 << 20);
        c.release(l3).unwrap();
        assert_eq!(c.sublease_of(l3.grant_id), None);
        assert_eq!(c.subleased_bytes(), 0);
        c.release(l2).unwrap();
        assert_eq!(c.borrowed_bytes(), 0);
        let big = c.borrow_memory(NodeId(0), 512 << 20).unwrap();
        assert!(c.memory_consistent());
        c.release(big).unwrap();
    }

    #[test]
    fn double_release_fails() {
        let mut c = Cluster::prototype();
        let lease = c.borrow_memory(NodeId(0), 64 << 20).unwrap();
        c.release(lease).unwrap();
        assert!(c.release(lease).is_err());
    }
}
