//! Figure/table data structures for the reproduction harness.
//!
//! Every scenario returns a [`Figure`]: labeled series over labeled
//! columns, carrying both our measured values and the paper's published
//! values so the bench harness can print them side by side and
//! EXPERIMENTS.md can be regenerated mechanically.

use serde::{Deserialize, Serialize};

/// One labeled data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. a workload or configuration name).
    pub label: String,
    /// One value per figure column.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }
}

/// A reproduced table or figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier ("fig5", "table1", ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Metric description (what the numbers mean).
    pub metric: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// Values measured by this reproduction.
    pub measured: Vec<Series>,
    /// The paper's published values (empty when the paper reports only a
    /// qualitative shape).
    pub paper: Vec<Series>,
    /// Free-form notes (substitutions, deviations).
    pub notes: String,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, metric: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            metric: metric.into(),
            columns: Vec::new(),
            measured: Vec::new(),
            paper: Vec::new(),
            notes: String::new(),
        }
    }

    /// Sets the column labels (builder style).
    pub fn with_columns<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a measured series.
    pub fn add_measured(&mut self, series: Series) {
        self.measured.push(series);
    }

    /// Renders an aligned text table (measured, then paper reference).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("metric: {}\n", self.metric));
        let width = self
            .columns
            .iter()
            .map(|c| c.len())
            .chain(self.all_series().map(|s| s.label.len()))
            .max()
            .unwrap_or(8)
            .max(10);
        let header: String = std::iter::once(format!("{:width$}", ""))
            .chain(self.columns.iter().map(|c| format!("{c:>width$}")))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&header);
        out.push('\n');
        for (tag, series) in self
            .measured
            .iter()
            .map(|s| ("measured", s))
            .chain(self.paper.iter().map(|s| ("paper", s)))
        {
            let label = format!("{} [{}]", series.label, tag);
            let row: String = std::iter::once(format!("{label:width$}"))
                .chain(series.values.iter().map(|v| format!("{v:>width$.2}")))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&row);
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str(&format!("note: {}\n", self.notes));
        }
        out
    }

    fn all_series(&self) -> impl Iterator<Item = &Series> {
        self.measured.iter().chain(self.paper.iter())
    }

    /// Checks that every measured series matches the paper series with
    /// the same label in *ordering*: wherever the paper separates two
    /// columns by more than 5 %, the measured values must order the same
    /// way (near-ties in the paper are not binding). Returns mismatching
    /// labels.
    pub fn ordering_mismatches(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for m in &self.measured {
            let Some(p) = self.paper.iter().find(|p| p.label == m.label) else {
                continue;
            };
            if p.values.len() != m.values.len() {
                bad.push(m.label.clone());
                continue;
            }
            let n = p.values.len();
            let mut ok = true;
            for i in 0..n {
                for j in 0..n {
                    // Binding constraint: the paper separates i and j by
                    // more than 5%.
                    if p.values[i] < p.values[j] * 0.95 && m.values[i] >= m.values[j] {
                        ok = false;
                    }
                }
            }
            if !ok {
                bad.push(m.label.clone());
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "Sample", "normalized time");
        f.columns = vec!["a".into(), "b".into()];
        f.measured = vec![Series::new("w", vec![1.0, 2.0])];
        f.paper = vec![Series::new("w", vec![1.5, 3.0])];
        f
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("figX"));
        assert!(s.contains("w [measured]"));
        assert!(s.contains("w [paper]"));
        assert!(s.contains("2.00"));
    }

    #[test]
    fn ordering_agreement_detected() {
        let f = sample();
        assert!(f.ordering_mismatches().is_empty());
        let mut bad = sample();
        bad.measured[0].values = vec![2.0, 1.0];
        assert_eq!(bad.ordering_mismatches(), vec!["w".to_string()]);
    }

    #[test]
    fn near_ties_in_paper_are_not_binding() {
        let mut f = sample();
        // Paper values within 5%: measured may order either way.
        f.paper[0].values = vec![1.00, 1.02];
        f.measured[0].values = vec![5.0, 4.9];
        assert!(f.ordering_mismatches().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let f = sample();
        let json = serde_json::to_string(&f).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
