//! Per-configuration remote-access latencies (the §4.2.1 study).
//!
//! Fig 5 compares five ways to reach 1 GB of remote data: QPair messaging
//! with off-chip and on-chip interfaces, an asynchronous (Scale-out-NUMA
//! style) rewrite over the on-chip QPair, and CRMA cacheline fills with
//! off-chip and on-chip interface logic. This module computes the
//! per-remote-operation latency of each configuration from the transport
//! models, so the figure's bars *emerge* from component costs (PHY,
//! adapter crossings, software posting, donor agent service, copies)
//! rather than being constants.

use venice_baselines::AsyncQpair;
use venice_fabric::{LinkParams, NodeId};
use venice_sim::Time;
use venice_transport::{CrmaChannel, CrmaConfig, PathModel, QpairConfig, QueuePair};
use venice_workloads::MemoryProfile;

/// The five Fig 5 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelConfig {
    /// Legacy: QPair over an I/O-attached (IB-class) interface.
    OffChipQpair,
    /// QPair support mechanisms moved on chip.
    OnChipQpair,
    /// The application rewritten for asynchronous communication over the
    /// on-chip QPair (Scale-out NUMA's model).
    AsyncOnChipQpair,
    /// Hardware cacheline fills with off-chip interface logic.
    OffChipCrma,
    /// Hardware cacheline fills integrated on chip — Venice's design
    /// point.
    OnChipCrma,
}

impl ChannelConfig {
    /// All five, in Fig 5's left-to-right order.
    pub const ALL: [ChannelConfig; 5] = [
        ChannelConfig::OffChipQpair,
        ChannelConfig::OnChipQpair,
        ChannelConfig::AsyncOnChipQpair,
        ChannelConfig::OffChipCrma,
        ChannelConfig::OnChipCrma,
    ];

    /// Display label matching the figure.
    pub fn label(self) -> &'static str {
        match self {
            ChannelConfig::OffChipQpair => "Off-Chip QPair",
            ChannelConfig::OnChipQpair => "On-Chip QPair",
            ChannelConfig::AsyncOnChipQpair => "Async On-Chip QPair",
            ChannelConfig::OffChipCrma => "Off-Chip CRMA",
            ChannelConfig::OnChipCrma => "On-Chip CRMA",
        }
    }
}

/// Computes remote-operation latencies for a workload whose remote reads
/// move `unit_bytes` per operation (BerkeleyDB fetches 4 KB index nodes;
/// PageRank fetches small rank batches).
#[derive(Debug, Clone)]
pub struct ChannelLatencies {
    /// Fabric path between requester and donor.
    pub path: PathModel,
    /// Same path with off-chip interface logic.
    pub path_off_chip: PathModel,
    /// Bytes a QPair remote read returns per operation.
    pub unit_bytes: u64,
    /// Donor-side agent service: mean polling delay + memory read.
    pub agent_service: Time,
    /// Requester-side copy rate out of the registered buffer (Gbps) —
    /// the 667 MHz core's memcpy.
    pub copy_gbps: f64,
    /// User-level library marshaling per operation.
    pub marshal: Time,
    /// Local memory latency (cache miss to local DRAM).
    pub local_latency: Time,
}

impl ChannelLatencies {
    /// The Fig 5 setup: two directly connected nodes.
    pub fn fig5(unit_bytes: u64) -> Self {
        ChannelLatencies {
            path: PathModel::direct_pair(),
            path_off_chip: PathModel::direct_pair()
                .with_link(LinkParams::venice_prototype_off_chip()),
            unit_bytes,
            agent_service: Time::from_us(5) + Time::from_ns(300),
            copy_gbps: 8.0,
            marshal: Time::from_us(1),
            local_latency: Time::from_ns(150),
        }
    }

    /// The Fig 6 setup: the same pair joined through one external router.
    pub fn fig6(unit_bytes: u64) -> Self {
        ChannelLatencies {
            path: PathModel::routed_pair(),
            path_off_chip: PathModel::routed_pair()
                .with_link(LinkParams::venice_prototype_off_chip()),
            ..Self::fig5(unit_bytes)
        }
    }

    fn crma_latency(&self, path: &PathModel) -> Time {
        let mut ch = CrmaChannel::new(NodeId(0), CrmaConfig::default());
        ch.map_window(1 << 40, 1 << 30, NodeId(1), 0)
            .expect("window fits");
        // Warm the TLTLB: steady-state accesses hit it.
        let _ = ch.read_latency(path, 1 << 40);
        ch.read_latency(path, (1 << 40) + 64).expect("mapped")
    }

    fn qpair_latency(&self, path: &PathModel, config: QpairConfig) -> Time {
        let mut qp = QueuePair::new(NodeId(0), NodeId(1), config);
        let rpc = qp
            .rpc_latency(path, 32, self.unit_bytes, self.agent_service)
            .expect("unit fits qpair buffers");
        let copy = Time::serialize_bytes(self.unit_bytes, self.copy_gbps);
        rpc + copy + self.marshal
    }

    /// Per-remote-operation latency under `config` (for the async
    /// configuration this is the same as on-chip QPair; the overlap is
    /// applied by [`Self::op_time`]).
    pub fn remote_latency(&self, config: ChannelConfig) -> Time {
        match config {
            ChannelConfig::OffChipQpair => {
                self.qpair_latency(&self.path_off_chip, QpairConfig::off_chip())
            }
            ChannelConfig::OnChipQpair | ChannelConfig::AsyncOnChipQpair => {
                self.qpair_latency(&self.path, QpairConfig::on_chip())
            }
            ChannelConfig::OffChipCrma => self.crma_latency(&self.path_off_chip),
            ChannelConfig::OnChipCrma => self.crma_latency(&self.path),
        }
    }

    /// Per-operation execution time of `profile` under `config`.
    /// `async_model` describes the rewrite used for the asynchronous
    /// configuration (workload-dependent overlap).
    pub fn op_time(
        &self,
        profile: &MemoryProfile,
        config: ChannelConfig,
        async_model: &AsyncQpair,
    ) -> Time {
        let latency = self.remote_latency(config);
        match config {
            ChannelConfig::AsyncOnChipQpair => async_model.op_time(profile, latency),
            _ => profile.op_time(latency),
        }
    }

    /// Normalized execution time (the Fig 5 metric): op time under
    /// `config` over the all-local op time.
    pub fn slowdown(
        &self,
        profile: &MemoryProfile,
        config: ChannelConfig,
        async_model: &AsyncQpair,
    ) -> f64 {
        self.op_time(profile, config, async_model)
            .ratio(profile.op_time(self.local_latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_workloads::{OltpWorkload, PageRank};

    #[test]
    fn crma_beats_qpair_everywhere() {
        let l = ChannelLatencies::fig5(4096);
        assert!(
            l.remote_latency(ChannelConfig::OnChipCrma)
                < l.remote_latency(ChannelConfig::OnChipQpair)
        );
        assert!(
            l.remote_latency(ChannelConfig::OffChipCrma)
                < l.remote_latency(ChannelConfig::OffChipQpair)
        );
    }

    #[test]
    fn on_chip_beats_off_chip() {
        let l = ChannelLatencies::fig5(4096);
        assert!(
            l.remote_latency(ChannelConfig::OnChipCrma)
                < l.remote_latency(ChannelConfig::OffChipCrma)
        );
        assert!(
            l.remote_latency(ChannelConfig::OnChipQpair)
                < l.remote_latency(ChannelConfig::OffChipQpair)
        );
    }

    #[test]
    fn fig5_berkeleydb_bands() {
        // Paper: 11.92 / 10.91 / 10.83 / 3.43 / 2.48.
        let l = ChannelLatencies::fig5(4096);
        let p = OltpWorkload::fig5().profile();
        let a = AsyncQpair::dependence_bound();
        let s: Vec<f64> = ChannelConfig::ALL
            .iter()
            .map(|&c| l.slowdown(&p, c, &a))
            .collect();
        assert!((9.0..16.0).contains(&s[0]), "off-qpair {s:?}");
        assert!((8.0..14.0).contains(&s[1]), "on-qpair {s:?}");
        // Async barely helps BerkeleyDB.
        assert!((s[2] - s[1]).abs() / s[1] < 0.05, "async {s:?}");
        assert!((2.7..4.2).contains(&s[3]), "off-crma {s:?}");
        assert!((2.0..3.0).contains(&s[4]), "on-crma {s:?}");
        // Strictly improving left to right (modulo the async tie).
        assert!(s[0] > s[1] && s[1] >= s[2] * 0.99 && s[2] > s[3] && s[3] > s[4]);
    }

    #[test]
    fn fig5_pagerank_bands() {
        // Paper: 7.69 / 5.96 / 3.12 / 3.01 / 2.12.
        let l = ChannelLatencies::fig5(256);
        let p = PageRank::new().profile(1 << 30);
        let a = AsyncQpair::latency_tolerant();
        let s: Vec<f64> = ChannelConfig::ALL
            .iter()
            .map(|&c| l.slowdown(&p, c, &a))
            .collect();
        assert!((5.5..9.5).contains(&s[0]), "off-qpair {s:?}");
        assert!((4.0..7.0).contains(&s[1]), "on-qpair {s:?}");
        // Async rescues PageRank decisively.
        assert!(s[2] < s[1] * 0.7, "async {s:?}");
        assert!((2.3..3.6).contains(&s[3]), "off-crma {s:?}");
        assert!((1.7..2.6).contains(&s[4]), "on-crma {s:?}");
        // On-chip CRMA is the best configuration.
        assert!(s[4] < s[2] && s[4] < s[3]);
    }

    #[test]
    fn fig6_router_hurts_crma_most() {
        // Paper Fig 6: >20% for on-chip CRMA (PageRank), ~2% for async.
        let direct = ChannelLatencies::fig5(256);
        let routed = ChannelLatencies::fig6(256);
        let p = PageRank::new().profile(1 << 30);
        let a = AsyncQpair::latency_tolerant();
        let overhead =
            |c: ChannelConfig| routed.op_time(&p, c, &a).ratio(direct.op_time(&p, c, &a)) - 1.0;
        let crma = overhead(ChannelConfig::OnChipCrma);
        let qpair = overhead(ChannelConfig::OnChipQpair);
        let asyn = overhead(ChannelConfig::AsyncOnChipQpair);
        assert!((0.15..0.30).contains(&crma), "crma {crma:.3}");
        assert!(qpair < crma, "qpair {qpair:.3} vs crma {crma:.3}");
        assert!(asyn < 0.05, "async {asyn:.3}");
    }
}
