//! Hardware cost model (paper §7.3).
//!
//! The prototype's fabric logic synthesizes in GlobalFoundries 28 nm at
//! 1 GHz: 2.73 mm² of logic, 32 KB of SRAM, plus ~0.5 mm² per PCIe-Gen4-x1
//! -class PHY lane — about 3.5 mm² total, roughly 2 % of a Haswell-EP die.
//! §4.2.1 also compares channel implementation costs: "A typical QPair
//! implementation supports hundreds of queue pairs, each requiring around
//! a dozen registers ... tens of kilobytes more SRAM than does CRMA. And
//! the logic complexity (in terms of LUT counts) of QPair is about twice
//! that of CRMA."

use serde::{Deserialize, Serialize};

/// The §7.3 cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Synthesized logic area of the switch + channels (mm², 28 nm).
    pub logic_area_mm2: f64,
    /// Channel SRAM (bytes).
    pub sram_bytes: u64,
    /// Area of one PHY lane (mm²).
    pub phy_lane_area_mm2: f64,
    /// Number of PHY lanes (one per fabric port).
    pub phy_lanes: u32,
    /// Comparison die area (Haswell-EP 8-core, mm²).
    pub reference_die_mm2: f64,
    /// Clock the logic closes at (GHz).
    pub clock_ghz: f64,
}

impl CostModel {
    /// The published numbers.
    pub fn venice_28nm() -> Self {
        CostModel {
            logic_area_mm2: 2.73,
            sram_bytes: 32 << 10,
            phy_lane_area_mm2: 0.5,
            // The paper budgets ~3.5 mm² of PHY total, i.e. a handful of
            // serial lanes at ~0.5 mm² each.
            phy_lanes: 7,
            reference_die_mm2: 300.0,
            clock_ghz: 1.0,
        }
    }

    /// Total PHY area.
    pub fn phy_area_mm2(&self) -> f64 {
        self.phy_lane_area_mm2 * self.phy_lanes as f64
    }

    /// Total area: logic + PHYs.
    pub fn total_area_mm2(&self) -> f64 {
        self.logic_area_mm2 + self.phy_area_mm2()
    }

    /// Fraction of the reference die the Venice support occupies.
    pub fn die_fraction(&self) -> f64 {
        self.total_area_mm2() / self.reference_die_mm2
    }

    /// Relative logic complexity of QPair vs CRMA (LUT counts; §4.2.1).
    pub const QPAIR_OVER_CRMA_LOGIC: f64 = 2.0;

    /// Extra SRAM a QPair implementation needs over CRMA (bytes):
    /// hundreds of queue pairs × a dozen registers ("tens of kilobytes").
    pub const QPAIR_EXTRA_SRAM_BYTES: u64 = 24 << 10;

    /// SRAM for a QPair implementation with `pairs` queue pairs of
    /// `registers` 8-byte registers each.
    pub fn qpair_sram_bytes(pairs: u32, registers: u32) -> u64 {
        pairs as u64 * registers as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_totals() {
        let c = CostModel::venice_28nm();
        assert_eq!(c.logic_area_mm2, 2.73);
        assert_eq!(c.sram_bytes, 32 << 10);
        // ~3.5 mm² of PHY.
        assert!((3.4..3.6).contains(&c.phy_area_mm2()));
        // Total ≈ 6.2 mm².
        assert!((6.0..6.5).contains(&c.total_area_mm2()));
    }

    #[test]
    fn about_two_percent_of_a_server_die() {
        let c = CostModel::venice_28nm();
        let f = c.die_fraction();
        assert!((0.015..0.025).contains(&f), "fraction = {f:.4}");
    }

    #[test]
    fn qpair_sram_is_tens_of_kilobytes() {
        // "hundreds of queue pairs, each requiring around a dozen
        // registers": 256 pairs x 12 x 8B = 24 KB.
        let sram = CostModel::qpair_sram_bytes(256, 12);
        assert_eq!(sram, 24 << 10);
        assert_eq!(sram, CostModel::QPAIR_EXTRA_SRAM_BYTES);
    }

    #[test]
    fn qpair_logic_twice_crma() {
        assert_eq!(CostModel::QPAIR_OVER_CRMA_LOGIC, 2.0);
    }
}
