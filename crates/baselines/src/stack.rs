//! Per-component cost breakdowns for commodity remote-memory paths.
//!
//! "Conventional networking interfaces are designed for environments with
//! long, often unreliable connection media. Error handling and other
//! protocol overheads coupled with relatively slow hardware interfaces"
//! (paper §1) — this module itemizes those overheads so each baseline's
//! total is auditable, and the Fig 3 ordering (Ethernet ≫ IB ≈ PCIe-RDMA
//! ≈ PCIe-LD/ST, all ≫ local) follows from the components.

use venice_sim::Time;

/// One itemized cost in a commodity path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackComponent {
    /// Component label (for reports).
    pub name: &'static str,
    /// Cost per operation.
    pub cost: Time,
}

/// A commodity remote-memory access path: an itemized per-operation cost
/// plus the unit the operation moves.
#[derive(Debug, Clone)]
pub struct CommodityPath {
    /// Path label as in Fig 3.
    pub name: &'static str,
    /// Itemized per-operation costs.
    pub components: Vec<StackComponent>,
    /// Bytes moved per operation (4 KB page for swap paths, 64 B line
    /// for load/store).
    pub unit_bytes: u64,
}

fn c(name: &'static str, cost: Time) -> StackComponent {
    StackComponent { name, cost }
}

impl CommodityPath {
    /// Total per-operation latency.
    pub fn total(&self) -> Time {
        self.components.iter().map(|x| x.cost).sum()
    }

    /// 10 Gb Ethernet remote-memory swap via a vDisk driver (the paper's
    /// first configuration): the full TCP/IP + block stack on both ends
    /// plus interrupts.
    pub fn ethernet_vdisk() -> Self {
        CommodityPath {
            name: "Ethernet",
            components: vec![
                c("page fault + block layer", Time::from_us(8)),
                c("vDisk driver + TCP/IP tx", Time::from_us(18)),
                c("NIC DMA + wire (4KB @ 10Gbps)", Time::from_us(5)),
                c("remote interrupt + server", Time::from_us(16)),
                c("TCP/IP rx + copy", Time::from_us(18)),
                c("response wire + completion interrupt", Time::from_us(14)),
                c("wakeup + return to user", Time::from_us(4)),
            ],
            unit_bytes: 4096,
        }
    }

    /// InfiniBand SRP virtual block device: verbs bypass TCP/IP but the
    /// block layer and SRP target remain.
    pub fn infiniband_srp() -> Self {
        CommodityPath {
            name: "InfiniBand SRP",
            components: vec![
                c("page fault + block layer", Time::from_us(8)),
                c("SRP initiator + verbs post", Time::from_us(6)),
                c("HCA DMA + wire", Time::from_us(4)),
                c("SRP target service", Time::from_us(9)),
                c("response + completion", Time::from_us(6)),
                c("wakeup + return to user", Time::from_us(4)),
            ],
            unit_bytes: 4096,
        }
    }

    /// Semi-custom PCIe interconnect, swap over DMA: no deep protocol
    /// stack, but block layer + doorbells + completion interrupts remain.
    pub fn pcie_rdma() -> Self {
        CommodityPath {
            name: "PCIe RDMA",
            components: vec![
                c("page fault + block layer", Time::from_us(8)),
                c("descriptor + doorbell", Time::from_us(2)),
                c("PCIe DMA 4KB (switch hops)", Time::from_us(5)),
                c("completion interrupt", Time::from_us(5)),
                c("wakeup + return to user", Time::from_us(4)),
            ],
            unit_bytes: 4096,
        }
    }

    /// Semi-custom PCIe direct load/store (CRMA over PCIe): the paper
    /// notes this "suffers from a crippling, but fixable, limit due to
    /// the commodity PCIe chip" — non-posted reads serialize in the
    /// switch chain, so each cacheline fill costs tens of microseconds.
    pub fn pcie_load_store() -> Self {
        CommodityPath {
            name: "PCIe LD/ST",
            components: vec![
                c("uncached load issue + capture", Time::from_ns(1_500)),
                c("PCIe non-posted read traversal", Time::from_us(11)),
                c("remote memory read", Time::from_us(1)),
                c("completion return traversal", Time::from_us(11)),
            ],
            unit_bytes: 64,
        }
    }

    /// All four Fig 3 paths in figure order.
    pub fn fig3_paths() -> Vec<CommodityPath> {
        vec![
            Self::ethernet_vdisk(),
            Self::infiniband_srp(),
            Self::pcie_rdma(),
            Self::pcie_load_store(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_slowest_page_path() {
        let e = CommodityPath::ethernet_vdisk().total();
        let ib = CommodityPath::infiniband_srp().total();
        let pcie = CommodityPath::pcie_rdma().total();
        assert!(e > ib && ib > pcie, "{e} vs {ib} vs {pcie}");
        // Roughly: Ethernet ~80+ us, IB ~35 us, PCIe ~25 us.
        assert!((70.0..100.0).contains(&e.as_us_f64()));
        assert!((30.0..45.0).contains(&ib.as_us_f64()));
        assert!((18.0..30.0).contains(&pcie.as_us_f64()));
    }

    #[test]
    fn pcie_load_store_per_line_cost() {
        let p = CommodityPath::pcie_load_store();
        assert_eq!(p.unit_bytes, 64);
        // The crippled commodity-chip path: ~24 us per line.
        assert!((20.0..28.0).contains(&p.total().as_us_f64()));
    }

    #[test]
    fn components_itemize_total() {
        for p in CommodityPath::fig3_paths() {
            let sum: Time = p.components.iter().map(|c| c.cost).sum();
            assert_eq!(sum, p.total());
            assert!(!p.components.is_empty());
        }
    }

    #[test]
    fn all_paths_orders_of_magnitude_over_local_dram() {
        let local = Time::from_ns(100);
        for p in CommodityPath::fig3_paths() {
            assert!(p.total().ratio(local) > 100.0, "{} too fast", p.name);
        }
    }
}
