//! `SwapBackend` adapters for the commodity paths.
//!
//! The Fig 3 swap-based configurations (Ethernet vDisk, IB SRP, PCIe
//! RDMA) plug into the node's swap device exactly like Venice's RDMA
//! backend does, so the same [`venice_memnode::SwapDevice`] machinery
//! drives all of them.

use venice_memnode::SwapBackend;
use venice_sim::Time;

use crate::stack::CommodityPath;

/// A swap backend whose page costs come from a commodity path breakdown.
#[derive(Debug, Clone)]
pub struct CommoditySwapBackend {
    path: CommodityPath,
    reads: u64,
    writes: u64,
}

impl CommoditySwapBackend {
    /// Wraps a commodity path (must be page-granular).
    ///
    /// # Panics
    ///
    /// Panics if the path is not page-granular (e.g. PCIe load/store).
    pub fn new(path: CommodityPath) -> Self {
        assert_eq!(path.unit_bytes, 4096, "swap backends move 4 KB pages");
        CommoditySwapBackend {
            path,
            reads: 0,
            writes: 0,
        }
    }

    /// The underlying path.
    pub fn path(&self) -> &CommodityPath {
        &self.path
    }

    /// Pages read so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Pages written so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl SwapBackend for CommoditySwapBackend {
    fn read_page(&mut self, bytes: u64) -> Time {
        self.reads += 1;
        // Larger-than-page requests scale the wire portion linearly; the
        // software components are per-operation.
        let scale = bytes as f64 / self.path.unit_bytes as f64;
        if scale <= 1.0 {
            self.path.total()
        } else {
            self.path.total().scale(scale.min(8.0))
        }
    }

    fn write_page(&mut self, bytes: u64) -> Time {
        self.writes += 1;
        let scale = bytes as f64 / self.path.unit_bytes as f64;
        if scale <= 1.0 {
            self.path.total()
        } else {
            self.path.total().scale(scale.min(8.0))
        }
    }

    fn name(&self) -> &'static str {
        self.path.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_memnode::SwapDevice;

    #[test]
    fn plugs_into_swap_device() {
        let be = CommoditySwapBackend::new(CommodityPath::infiniband_srp());
        let mut dev = SwapDevice::new(16, 4096, be);
        dev.touch(0, false);
        dev.touch(100, true);
        assert_eq!(dev.faults(), 2);
        assert!(dev.total_fault_time() > Time::from_us(60));
        assert_eq!(dev.backend().reads(), 2);
    }

    #[test]
    fn ethernet_swap_slower_than_ib_swap() {
        let mut e = CommoditySwapBackend::new(CommodityPath::ethernet_vdisk());
        let mut ib = CommoditySwapBackend::new(CommodityPath::infiniband_srp());
        assert!(e.read_page(4096) > ib.read_page(4096));
    }

    #[test]
    #[should_panic]
    fn line_granular_path_rejected() {
        CommoditySwapBackend::new(CommodityPath::pcie_load_store());
    }
}
