//! The Scale-out-NUMA-style asynchronous QPair comparator (paper §4.2.1).
//!
//! "We rewrite the application to orchestrate the software-based
//! asynchronous communication proposed in Scale-out NUMA": remote
//! operations are issued through user-level queue pairs and the program
//! overlaps multiple outstanding operations instead of blocking on each.
//! How much overlap is attainable is a property of the *workload*: "for
//! BerkeleyDB, the asynchronous QPair shows very few performance benefits
//! over legacy QPair ... because the client must check the return status
//! before processing the next query."

use venice_sim::Time;
use venice_workloads::MemoryProfile;

/// An asynchronous QPair execution of a workload: the same per-operation
/// remote latency as the synchronous QPair, hidden behind `overlap`
/// outstanding operations.
#[derive(Debug, Clone)]
pub struct AsyncQpair {
    /// Outstanding remote operations the rewrite sustains.
    pub overlap: f64,
    /// Extra per-operation software cost of the asynchronous runtime
    /// (request bookkeeping, status tracking).
    pub bookkeeping: Time,
}

impl AsyncQpair {
    /// Rewrite for a latency-tolerant workload (PageRank-class).
    pub fn latency_tolerant() -> Self {
        AsyncQpair {
            overlap: venice_workloads::PageRank::ASYNC_OVERLAP,
            // Issue + poll + stream state machine per request on the
            // 667 MHz core.
            bookkeeping: Time::from_us(5) + Time::from_ns(300),
        }
    }

    /// Rewrite for a dependence-bound workload (BerkeleyDB-class): the
    /// client checks each result before the next query, so overlap barely
    /// exceeds 1.
    pub fn dependence_bound() -> Self {
        AsyncQpair {
            overlap: 1.02,
            bookkeeping: Time::from_ns(300),
        }
    }

    /// Per-operation time for `profile` with remote ops served at
    /// `qpair_latency`.
    ///
    /// Two regimes: a genuinely pipelined rewrite (overlap well above 1)
    /// overlaps compute with communication, so the op time is the *max*
    /// of the compute side (including per-request bookkeeping) and the
    /// exposed communication side. A dependence-bound workload cannot
    /// overlap either, so costs stay additive.
    pub fn op_time(&self, profile: &MemoryProfile, qpair_latency: Time) -> Time {
        let ov = self.overlap.max(1.0);
        let book = self.bookkeeping.scale(profile.misses_per_op);
        let mem = qpair_latency.scale(profile.misses_per_op / ov);
        if ov > 1.5 {
            (profile.compute + book).max(mem)
        } else {
            profile.compute + mem + book
        }
    }

    /// Slowdown versus an all-local run of the same profile.
    pub fn slowdown(&self, profile: &MemoryProfile, qpair_latency: Time, local: Time) -> f64 {
        self.op_time(profile, qpair_latency)
            .ratio(profile.op_time(local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_workloads::{OltpWorkload, PageRank};

    #[test]
    fn pagerank_benefits_berkeleydb_does_not() {
        // The Fig 5 contrast in one test.
        let qpair_latency = Time::from_us(13);
        let local = Time::from_ns(150);

        let pr = PageRank::new().profile(1 << 30);
        let sync_pr = pr.slowdown(qpair_latency, local);
        let async_pr = AsyncQpair::latency_tolerant().slowdown(&pr, qpair_latency, local);
        assert!(
            async_pr < sync_pr * 0.6,
            "pr: {async_pr:.2} vs {sync_pr:.2}"
        );

        let bdb = OltpWorkload::fig5().profile();
        let bdb_latency = Time::from_us(19);
        let sync_bdb = bdb.slowdown(bdb_latency, local);
        let async_bdb = AsyncQpair::dependence_bound().slowdown(&bdb, bdb_latency, local);
        assert!(
            async_bdb > sync_bdb * 0.95,
            "bdb: {async_bdb:.2} vs {sync_bdb:.2}"
        );
    }

    #[test]
    fn bookkeeping_is_charged_in_dependent_regime() {
        let pr = PageRank::new().profile(1 << 30);
        let a = AsyncQpair {
            overlap: 1.0,
            bookkeeping: Time::from_us(1),
        };
        let t = a.op_time(&pr, Time::from_us(10));
        assert_eq!(t, pr.op_time(Time::from_us(10)) + Time::from_us(1));
    }

    #[test]
    fn pipelined_regime_overlaps_compute_and_comm() {
        let pr = PageRank::new().profile(1 << 30);
        let a = AsyncQpair::latency_tolerant();
        // With short remote latency the compute side dominates; latency
        // increases are absorbed until the comm side catches up (the
        // Fig 6 async-immunity effect).
        let t1 = a.op_time(&pr, Time::from_us(10));
        let t2 = a.op_time(&pr, Time::from_us(11));
        assert!(t2 <= t1.scale(1.05), "t1={t1} t2={t2}");
    }

    #[test]
    fn overlap_below_one_clamped() {
        let pr = PageRank::new().profile(1 << 30);
        let a = AsyncQpair {
            overlap: 0.5,
            bookkeeping: Time::ZERO,
        };
        // Must not panic; clamps to 1.
        let t = a.op_time(&pr, Time::from_us(10));
        assert!(t >= pr.op_time(Time::from_us(10)));
    }
}
