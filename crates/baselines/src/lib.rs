#![warn(missing_docs)]

//! Commodity-interconnect baselines (paper §4.1, Fig 3) and the
//! Scale-out-NUMA-style comparator (§4.2.1, Fig 5).
//!
//! The paper's feasibility study accesses remote memory over a legacy x86
//! cluster four ways: a vDisk swap device over 10 Gb Ethernet, an
//! InfiniBand SRP virtual block device, a semi-custom PCIe interconnect
//! doing either RDMA swap or direct load/store cacheline fills (CRMA).
//! All are an order of magnitude slower than local memory for the
//! BerkeleyDB random-access workload; the *stack* costs, not the wires,
//! dominate. Each baseline here is built from published per-component
//! costs so the Fig 3 ordering emerges rather than being hard-coded.
//!
//! * [`stack`] — per-operation software/hardware cost breakdowns;
//! * [`swap_backends`] — `SwapBackend` impls for the three swap-based
//!   baselines;
//! * [`sonuma`] — the asynchronous QPair programming model of Scale-out
//!   NUMA.

pub mod sonuma;
pub mod stack;
pub mod swap_backends;

pub use sonuma::AsyncQpair;
pub use stack::{CommodityPath, StackComponent};
pub use swap_backends::CommoditySwapBackend;
