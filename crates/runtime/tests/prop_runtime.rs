//! Property tests for the Monitor Node: capacity conservation and
//! policy sanity under arbitrary request/release interleavings.

use proptest::prelude::*;
use venice_fabric::topology::Topology;
use venice_fabric::{Mesh3d, NodeId};
use venice_runtime::tables::{ResourceKind, ResourceRecord};
use venice_runtime::{
    DistancePolicy, DonorPolicy, FirstFitPolicy, MonitorNode, MostFreePolicy, NodeAgent,
};
use venice_sim::Time;

fn monitor_with_capacity(per_node_mb: u64) -> MonitorNode {
    let mesh = Mesh3d::prototype();
    let mut mn = MonitorNode::new(Topology::Mesh(mesh.clone()), Box::new(DistancePolicy));
    for id in mesh.nodes() {
        let mut a = NodeAgent::new(id);
        a.idle_memory = per_node_mb << 20;
        a.lendable_base = 0xC000_0000;
        mn.on_heartbeat(&a.heartbeat(Time::ZERO, |_| true));
    }
    mn
}

proptest! {
    /// Grants never exceed advertised capacity, and release restores it
    /// exactly: after releasing everything, the full capacity is
    /// grantable again.
    #[test]
    fn capacity_is_conserved(requests in prop::collection::vec((0u16..8, 1u64..128), 1..40)) {
        let per_node = 256u64;
        let mut mn = monitor_with_capacity(per_node);
        let mut grants = Vec::new();
        let mut granted_total = 0u64;
        for (node, mb) in requests {
            let amount = mb << 20;
            if let Ok(g) = mn.request(NodeId(node), ResourceKind::Memory, amount, Time::ZERO, 8, |_, _| true) {
                granted_total += g.amount;
                grants.push(g);
            }
        }
        // Can never hand out more than the rack holds (8 donors, but a
        // recipient cannot donate to itself — still bounded by total).
        prop_assert!(granted_total <= 8 * (per_node << 20));
        for g in &grants {
            prop_assert_ne!(g.donor, g.recipient);
        }
        let count = grants.len();
        for g in grants {
            prop_assert!(mn.release(g.id).is_some());
        }
        prop_assert_eq!(mn.active_allocations(), 0);
        prop_assert_eq!(mn.grants_committed(), count as u64);
        // Full capacity is available again: 7 donors x 256 MB for node 0.
        for _ in 0..7 {
            prop_assert!(mn
                .request(NodeId(0), ResourceKind::Memory, per_node << 20, Time::ZERO, 8, |_, _| true)
                .is_ok());
        }
    }

    /// All policies pick only from the candidate set.
    #[test]
    fn policies_pick_real_candidates(
        amounts in prop::collection::vec(1u64..1024, 1..8),
        recipient in 0u16..8,
    ) {
        let topo = Topology::Mesh(Mesh3d::prototype());
        let candidates: Vec<ResourceRecord> = amounts
            .iter()
            .enumerate()
            .map(|(i, &mb)| ResourceRecord {
                node: NodeId(i as u16),
                kind: ResourceKind::Memory,
                amount: mb << 20,
                addr: 0,
                reported_at: Time::ZERO,
            })
            .collect();
        let nodes: Vec<NodeId> = candidates.iter().map(|c| c.node).collect();
        for policy in [
            &DistancePolicy as &dyn DonorPolicy,
            &FirstFitPolicy,
            &MostFreePolicy,
        ] {
            let pick = policy.select(&topo, NodeId(recipient), &candidates);
            let pick = pick.expect("non-empty candidates");
            prop_assert!(nodes.contains(&pick), "{} picked {pick}", policy.name());
        }
    }

    /// Distance policy never picks a strictly farther donor when a
    /// nearer one qualifies.
    #[test]
    fn distance_policy_is_greedy(present in prop::collection::vec(any::<bool>(), 8), recipient in 0u16..8) {
        let topo = Topology::Mesh(Mesh3d::prototype());
        let mesh = Mesh3d::prototype();
        let candidates: Vec<ResourceRecord> = present
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p && i as u16 != recipient)
            .map(|(i, _)| ResourceRecord {
                node: NodeId(i as u16),
                kind: ResourceKind::Memory,
                amount: 1 << 30,
                addr: 0,
                reported_at: Time::ZERO,
            })
            .collect();
        prop_assume!(!candidates.is_empty());
        let pick = DistancePolicy.select(&topo, NodeId(recipient), &candidates).unwrap();
        let best = candidates
            .iter()
            .map(|c| mesh.hops(NodeId(recipient), c.node))
            .min()
            .unwrap();
        prop_assert_eq!(mesh.hops(NodeId(recipient), pick), best);
    }
}
