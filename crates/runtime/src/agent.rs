//! The per-node daemon (paper §5.3).
//!
//! "A daemon process in each node collects availability information and
//! periodically reports to the MN, serving as a heartbeat for the MN to
//! infer node status. ... The daemon tests and reports the status of the
//! Venice fabric links on every heartbeat."

use venice_fabric::NodeId;
use venice_sim::Time;

use crate::tables::{ResourceKind, ResourceRecord};

/// One heartbeat report from an agent to the MN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heartbeat {
    /// Reporting node.
    pub node: NodeId,
    /// Report timestamp.
    pub at: Time,
    /// Spare resources (one record per kind).
    pub resources: Vec<ResourceRecord>,
    /// Link test results toward each direct neighbor.
    pub link_status: Vec<(NodeId, bool)>,
}

/// A node's resource-reporting daemon.
#[derive(Debug, Clone)]
pub struct NodeAgent {
    node: NodeId,
    /// Heartbeat period.
    pub period: Time,
    /// Spare memory the node is willing to lend (bytes).
    pub idle_memory: u64,
    /// Base address of the lendable region.
    pub lendable_base: u64,
    /// Idle accelerator units.
    pub idle_accelerators: u64,
    /// Idle NIC units.
    pub idle_nics: u64,
    /// Direct fabric neighbors to link-test.
    pub neighbors: Vec<NodeId>,
    heartbeats_sent: u64,
}

impl NodeAgent {
    /// Creates an agent with a 100 ms heartbeat (rack-management scale).
    pub fn new(node: NodeId) -> Self {
        NodeAgent {
            node,
            period: Time::from_ms(100),
            idle_memory: 0,
            lendable_base: 0,
            idle_accelerators: 0,
            idle_nics: 0,
            neighbors: Vec::new(),
            heartbeats_sent: 0,
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Heartbeats emitted so far.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent
    }

    /// Produces the heartbeat due at `now`. `links_up` answers whether the
    /// link to each neighbor currently passes the test (injected by the
    /// simulation so faults can be modeled).
    pub fn heartbeat(&mut self, now: Time, links_up: impl Fn(NodeId) -> bool) -> Heartbeat {
        self.heartbeats_sent += 1;
        let mut resources = Vec::new();
        resources.push(ResourceRecord {
            node: self.node,
            kind: ResourceKind::Memory,
            amount: self.idle_memory,
            addr: self.lendable_base,
            reported_at: now,
        });
        if self.idle_accelerators > 0 {
            resources.push(ResourceRecord {
                node: self.node,
                kind: ResourceKind::Accelerator,
                amount: self.idle_accelerators,
                addr: 0,
                reported_at: now,
            });
        }
        if self.idle_nics > 0 {
            resources.push(ResourceRecord {
                node: self.node,
                kind: ResourceKind::Nic,
                amount: self.idle_nics,
                addr: 0,
                reported_at: now,
            });
        }
        Heartbeat {
            node: self.node,
            at: now,
            resources,
            link_status: self.neighbors.iter().map(|&n| (n, links_up(n))).collect(),
        }
    }

    /// Next heartbeat time after `now`.
    pub fn next_heartbeat(&self, now: Time) -> Time {
        now + self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_reports_all_nonzero_kinds() {
        let mut a = NodeAgent::new(NodeId(3));
        a.idle_memory = 512 << 20;
        a.idle_accelerators = 2;
        a.neighbors = vec![NodeId(1), NodeId(2)];
        let hb = a.heartbeat(Time::from_secs(1), |_| true);
        assert_eq!(hb.node, NodeId(3));
        assert_eq!(hb.resources.len(), 2);
        assert_eq!(hb.link_status, vec![(NodeId(1), true), (NodeId(2), true)]);
        assert_eq!(a.heartbeats_sent(), 1);
    }

    #[test]
    fn memory_reported_even_when_zero() {
        // Zero idle memory is still a (refreshing) report so stale
        // positive records get overwritten.
        let mut a = NodeAgent::new(NodeId(0));
        let hb = a.heartbeat(Time::ZERO, |_| true);
        assert_eq!(hb.resources.len(), 1);
        assert_eq!(hb.resources[0].amount, 0);
    }

    #[test]
    fn link_faults_show_in_report() {
        let mut a = NodeAgent::new(NodeId(0));
        a.neighbors = vec![NodeId(1), NodeId(2)];
        let hb = a.heartbeat(Time::ZERO, |n| n != NodeId(2));
        assert_eq!(hb.link_status, vec![(NodeId(1), true), (NodeId(2), false)]);
    }

    #[test]
    fn heartbeat_cadence() {
        let a = NodeAgent::new(NodeId(0));
        assert_eq!(a.next_heartbeat(Time::from_ms(250)), Time::from_ms(350));
    }
}
