//! Donor-selection policies (paper §5.3).
//!
//! "The allocator should consider distance between potential donor and
//! recipient, the nature of the sharing (and thus bandwidth demand), and
//! existing traffic over involved links. Given the scale of our prototype,
//! our current algorithm only considers distance." [`DistancePolicy`] is
//! that algorithm; [`FirstFitPolicy`] and [`MostFreePolicy`] exist for the
//! ablation benches.

use venice_fabric::topology::Topology;
use venice_fabric::NodeId;

use crate::tables::ResourceRecord;

/// Chooses a donor among candidates that can satisfy a request.
pub trait DonorPolicy {
    /// Picks a donor from `candidates` (each with enough free capacity)
    /// for `recipient`. `None` when the slice is empty.
    fn select(
        &self,
        topology: &Topology,
        recipient: NodeId,
        candidates: &[ResourceRecord],
    ) -> Option<NodeId>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// The prototype's policy: nearest donor by fabric distance, node id as
/// tiebreak.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistancePolicy;

impl DonorPolicy for DistancePolicy {
    fn select(
        &self,
        topology: &Topology,
        recipient: NodeId,
        candidates: &[ResourceRecord],
    ) -> Option<NodeId> {
        candidates
            .iter()
            .min_by_key(|r| (topology.distance(recipient, r.node), r.node))
            .map(|r| r.node)
    }

    fn name(&self) -> &'static str {
        "distance"
    }
}

/// Takes the lowest-numbered capable donor regardless of distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFitPolicy;

impl DonorPolicy for FirstFitPolicy {
    fn select(
        &self,
        _topology: &Topology,
        _recipient: NodeId,
        candidates: &[ResourceRecord],
    ) -> Option<NodeId> {
        candidates.iter().map(|r| r.node).min()
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Takes the donor with the most free capacity (load balancing),
/// distance as tiebreak.
#[derive(Debug, Clone, Copy, Default)]
pub struct MostFreePolicy;

impl DonorPolicy for MostFreePolicy {
    fn select(
        &self,
        topology: &Topology,
        recipient: NodeId,
        candidates: &[ResourceRecord],
    ) -> Option<NodeId> {
        candidates
            .iter()
            .min_by_key(|r| {
                (
                    std::cmp::Reverse(r.amount),
                    topology.distance(recipient, r.node),
                    r.node,
                )
            })
            .map(|r| r.node)
    }

    fn name(&self) -> &'static str {
        "most-free"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::ResourceKind;
    use venice_fabric::Mesh3d;
    use venice_sim::Time;

    fn rec(node: u16, amount: u64) -> ResourceRecord {
        ResourceRecord {
            node: NodeId(node),
            kind: ResourceKind::Memory,
            amount,
            addr: 0,
            reported_at: Time::ZERO,
        }
    }

    fn mesh() -> Topology {
        Topology::Mesh(Mesh3d::prototype())
    }

    #[test]
    fn distance_prefers_neighbors() {
        // Node 0's neighbors in the 2x2x2 mesh are 1, 2, 4; node 7 is the
        // far corner.
        let cands = [rec(7, 1 << 30), rec(2, 1 << 30)];
        let pick = DistancePolicy.select(&mesh(), NodeId(0), &cands);
        assert_eq!(pick, Some(NodeId(2)));
    }

    #[test]
    fn distance_tiebreaks_by_id() {
        let cands = [rec(4, 1 << 30), rec(1, 1 << 30), rec(2, 1 << 30)];
        let pick = DistancePolicy.select(&mesh(), NodeId(0), &cands);
        assert_eq!(pick, Some(NodeId(1)));
    }

    #[test]
    fn most_free_prefers_capacity() {
        let cands = [rec(1, 1 << 30), rec(7, 4 << 30)];
        let pick = MostFreePolicy.select(&mesh(), NodeId(0), &cands);
        assert_eq!(pick, Some(NodeId(7)));
    }

    #[test]
    fn first_fit_ignores_distance() {
        let cands = [rec(7, 1 << 30), rec(5, 1 << 30)];
        let pick = FirstFitPolicy.select(&mesh(), NodeId(0), &cands);
        assert_eq!(pick, Some(NodeId(5)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(DistancePolicy.select(&mesh(), NodeId(0), &[]), None);
        assert_eq!(MostFreePolicy.select(&mesh(), NodeId(0), &[]), None);
        assert_eq!(FirstFitPolicy.select(&mesh(), NodeId(0), &[]), None);
    }
}
