#![warn(missing_docs)]

//! The Venice resource-management runtime (paper §3, §5.3, Fig 2).
//!
//! A Monitor Node (MN) keeps the global view in three tables: the
//! Resource Registration Table (RRT, what exists and is free), the
//! Resource Allocation Table (RAT, what is lent to whom), and the Topology
//! Status Table (TST, fabric link health). Per-node agents report
//! availability on every heartbeat, which doubles as a liveness signal and
//! a link test. Donor selection "only considers distance" in the
//! prototype; richer policies are pluggable here. MN records can be stale,
//! so grants go through a handshake-and-retry protocol with the donor.
//!
//! * [`tables`] — RRT / RAT / TST;
//! * [`agent`] — per-node daemon: heartbeats, availability, link tests;
//! * [`monitor`] — the MN: liveness, allocation, handshake + retry;
//! * [`policy`] — donor-selection policies (distance-based default);
//! * [`flows`] — the Fig 2 memory-sharing choreography as a timed state
//!   machine (request → select → hot-remove → interface setup → hot-plug
//!   → established → teardown).

pub mod agent;
pub mod flows;
pub mod monitor;
pub mod policy;
pub mod tables;

pub use agent::{Heartbeat, NodeAgent};
pub use monitor::{AllocError, Grant, MonitorNode};
pub use policy::{DistancePolicy, DonorPolicy, FirstFitPolicy, MostFreePolicy};
pub use tables::{AllocationRecord, ResourceKind, ResourceRecord};
