//! The Monitor Node's three tables (paper §5.3).
//!
//! 1. The **Resource Registration Table** (RRT) "tracks available
//!    resources in the rack", with metadata (address, size, capabilities)
//!    refreshed by each node's heartbeat.
//! 2. The **Resource Allocation Table** (RAT) "tracks all allocation
//!    records"; RRT + RAT give the MN its global view.
//! 3. The **Topology Status Table** (TST) "tracks fabric link status",
//!    fed by the agents' per-heartbeat link tests.

use std::collections::HashMap;

use venice_fabric::NodeId;
use venice_sim::Time;

/// What kind of resource a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Lendable memory (bytes).
    Memory,
    /// A hardware accelerator (units).
    Accelerator,
    /// A network interface (units).
    Nic,
}

/// One RRT entry: a node's spare capacity of one resource kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owning node.
    pub node: NodeId,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Free amount (bytes for memory, units otherwise).
    pub amount: u64,
    /// Base physical address of the lendable region (memory only).
    pub addr: u64,
    /// When the owning agent last refreshed this record.
    pub reported_at: Time,
}

/// The Resource Registration Table.
#[derive(Debug, Default)]
pub struct Rrt {
    records: HashMap<(NodeId, ResourceKind), ResourceRecord>,
}

impl Rrt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes a record (one per node × kind).
    pub fn register(&mut self, record: ResourceRecord) {
        self.records.insert((record.node, record.kind), record);
    }

    /// Removes a node's records entirely (heartbeat loss).
    pub fn deregister_node(&mut self, node: NodeId) -> usize {
        let before = self.records.len();
        self.records.retain(|(n, _), _| *n != node);
        before - self.records.len()
    }

    /// Record for `node` × `kind`.
    pub fn get(&self, node: NodeId, kind: ResourceKind) -> Option<&ResourceRecord> {
        self.records.get(&(node, kind))
    }

    /// All records of `kind` with nonzero free amount.
    pub fn available(&self, kind: ResourceKind) -> Vec<ResourceRecord> {
        let mut v: Vec<ResourceRecord> = self
            .records
            .values()
            .filter(|r| r.kind == kind && r.amount > 0)
            .copied()
            .collect();
        v.sort_by_key(|r| r.node);
        v
    }

    /// Decrements a record's free amount after a grant commits.
    ///
    /// Amounts saturate at zero: the MN's view may already be stale, which
    /// is exactly why grants are confirmed with the donor.
    pub fn consume(&mut self, node: NodeId, kind: ResourceKind, amount: u64) {
        if let Some(r) = self.records.get_mut(&(node, kind)) {
            r.amount = r.amount.saturating_sub(amount);
        }
    }

    /// Returns capacity to a record after a release.
    pub fn restore(&mut self, node: NodeId, kind: ResourceKind, amount: u64) {
        if let Some(r) = self.records.get_mut(&(node, kind)) {
            r.amount += amount;
        }
    }
}

/// One RAT entry: an in-force loan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationRecord {
    /// Allocation id.
    pub id: u64,
    /// Lending node.
    pub donor: NodeId,
    /// Borrowing node.
    pub recipient: NodeId,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Amount lent.
    pub amount: u64,
    /// Donor-side base address (memory only).
    pub addr: u64,
    /// When the loan was established.
    pub established_at: Time,
}

/// The Resource Allocation Table.
#[derive(Debug, Default)]
pub struct Rat {
    records: Vec<AllocationRecord>,
    next_id: u64,
}

impl Rat {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed loan, returning its id.
    pub fn allocate(
        &mut self,
        donor: NodeId,
        recipient: NodeId,
        kind: ResourceKind,
        amount: u64,
        addr: u64,
        now: Time,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.records.push(AllocationRecord {
            id,
            donor,
            recipient,
            kind,
            amount,
            addr,
            established_at: now,
        });
        id
    }

    /// Releases a loan, returning its record.
    pub fn release(&mut self, id: u64) -> Option<AllocationRecord> {
        let pos = self.records.iter().position(|r| r.id == id)?;
        Some(self.records.remove(pos))
    }

    /// All loans where `node` is the donor.
    pub fn donated_by(&self, node: NodeId) -> Vec<AllocationRecord> {
        self.records
            .iter()
            .filter(|r| r.donor == node)
            .copied()
            .collect()
    }

    /// All loans where `node` is the recipient.
    pub fn borrowed_by(&self, node: NodeId) -> Vec<AllocationRecord> {
        self.records
            .iter()
            .filter(|r| r.recipient == node)
            .copied()
            .collect()
    }

    /// Number of in-force loans.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no loans are in force.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The Topology Status Table: directed link health.
#[derive(Debug, Default)]
pub struct Tst {
    links: HashMap<(NodeId, NodeId), (bool, Time)>,
}

impl Tst {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a link test result from `from` toward `to`.
    pub fn report(&mut self, from: NodeId, to: NodeId, up: bool, at: Time) {
        self.links.insert((from, to), (up, at));
    }

    /// Whether the link is known up.
    pub fn is_up(&self, from: NodeId, to: NodeId) -> bool {
        self.links
            .get(&(from, to))
            .map(|&(up, _)| up)
            .unwrap_or(false)
    }

    /// Last test time, if any.
    pub fn last_tested(&self, from: NodeId, to: NodeId) -> Option<Time> {
        self.links.get(&(from, to)).map(|&(_, at)| at)
    }

    /// Number of down links.
    pub fn down_count(&self) -> usize {
        self.links.values().filter(|&&(up, _)| !up).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u16, amount: u64) -> ResourceRecord {
        ResourceRecord {
            node: NodeId(node),
            kind: ResourceKind::Memory,
            amount,
            addr: 0xC000_0000,
            reported_at: Time::ZERO,
        }
    }

    #[test]
    fn rrt_register_refreshes_in_place() {
        let mut rrt = Rrt::new();
        rrt.register(rec(1, 100));
        rrt.register(rec(1, 50));
        assert_eq!(rrt.get(NodeId(1), ResourceKind::Memory).unwrap().amount, 50);
        assert_eq!(rrt.available(ResourceKind::Memory).len(), 1);
    }

    #[test]
    fn rrt_available_filters_empty_and_sorts() {
        let mut rrt = Rrt::new();
        rrt.register(rec(3, 10));
        rrt.register(rec(1, 0));
        rrt.register(rec(2, 5));
        let avail = rrt.available(ResourceKind::Memory);
        let nodes: Vec<u16> = avail.iter().map(|r| r.node.0).collect();
        assert_eq!(nodes, vec![2, 3]);
    }

    #[test]
    fn rrt_consume_saturates() {
        let mut rrt = Rrt::new();
        rrt.register(rec(1, 100));
        rrt.consume(NodeId(1), ResourceKind::Memory, 150);
        assert_eq!(rrt.get(NodeId(1), ResourceKind::Memory).unwrap().amount, 0);
        rrt.restore(NodeId(1), ResourceKind::Memory, 70);
        assert_eq!(rrt.get(NodeId(1), ResourceKind::Memory).unwrap().amount, 70);
    }

    #[test]
    fn rrt_deregister_drops_all_kinds() {
        let mut rrt = Rrt::new();
        rrt.register(rec(1, 100));
        rrt.register(ResourceRecord {
            kind: ResourceKind::Nic,
            ..rec(1, 2)
        });
        assert_eq!(rrt.deregister_node(NodeId(1)), 2);
        assert!(rrt.available(ResourceKind::Memory).is_empty());
    }

    #[test]
    fn rat_lifecycle() {
        let mut rat = Rat::new();
        let id = rat.allocate(
            NodeId(1),
            NodeId(2),
            ResourceKind::Memory,
            1 << 30,
            0xC000_0000,
            Time::ZERO,
        );
        assert_eq!(rat.len(), 1);
        assert_eq!(rat.donated_by(NodeId(1)).len(), 1);
        assert_eq!(rat.borrowed_by(NodeId(2)).len(), 1);
        assert_eq!(rat.borrowed_by(NodeId(1)).len(), 0);
        let rec = rat.release(id).unwrap();
        assert_eq!(rec.amount, 1 << 30);
        assert!(rat.is_empty());
        assert!(rat.release(id).is_none());
    }

    #[test]
    fn tst_tracks_link_state() {
        let mut tst = Tst::new();
        assert!(!tst.is_up(NodeId(0), NodeId(1)));
        tst.report(NodeId(0), NodeId(1), true, Time::from_secs(1));
        assert!(tst.is_up(NodeId(0), NodeId(1)));
        assert_eq!(
            tst.last_tested(NodeId(0), NodeId(1)),
            Some(Time::from_secs(1))
        );
        tst.report(NodeId(0), NodeId(1), false, Time::from_secs(2));
        assert!(!tst.is_up(NodeId(0), NodeId(1)));
        assert_eq!(tst.down_count(), 1);
    }
}
