//! The memory-sharing choreography (paper Fig 2) as a timed state
//! machine.
//!
//! ① the agent reports availability to the MN; ② the kernel memory
//! manager sends the MN a request; ③ the MN picks a donor, whose agent
//! hot-removes the region and sets up its Venice interface; ④ the
//! recipient hot-plugs the region and sets up its own interface. Teardown
//! reverses the steps. Each transition carries a latency: management
//! messages across the fabric plus OS work (hot-remove is the expensive
//! step — Linux must migrate/free every page in the region).

use venice_sim::Time;

/// Steps of the Fig 2 flow, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStep {
    /// ② Recipient kernel → MN request.
    RequestToMn,
    /// ③ MN selects donor and messages its agent.
    MnToDonor,
    /// ③ Donor hot-removes the region.
    HotRemove,
    /// ③ Donor programs its Venice interface (mapping-table entry).
    DonorInterfaceSetup,
    /// ③→④ Donor ack + MN forwards grant to recipient.
    GrantToRecipient,
    /// ④ Recipient hot-plugs the region.
    HotPlug,
    /// ④ Recipient programs its Venice interface.
    RecipientInterfaceSetup,
}

/// Latency model for the flow.
#[derive(Debug, Clone)]
pub struct FlowTiming {
    /// One management message across the fabric (MN is rack-local).
    pub management_rtt: Time,
    /// MN request-handling software cost (table lookups, policy).
    pub mn_processing: Time,
    /// Linux memory hot-remove cost per gigabyte (page migration/free).
    pub hot_remove_per_gb: Time,
    /// Linux memory hot-plug cost per gigabyte (struct page init).
    pub hot_plug_per_gb: Time,
    /// Programming one RAMT window + TLB shootdown.
    pub interface_setup: Time,
}

impl Default for FlowTiming {
    fn default() -> Self {
        FlowTiming {
            management_rtt: Time::from_us(10),
            mn_processing: Time::from_us(50),
            hot_remove_per_gb: Time::from_ms(400),
            hot_plug_per_gb: Time::from_ms(120),
            interface_setup: Time::from_us(20),
        }
    }
}

impl FlowTiming {
    /// Total latency to establish a share of `bytes`, step by step.
    pub fn establish(&self, bytes: u64) -> Time {
        self.step_costs(bytes).into_iter().map(|(_, t)| t).sum()
    }

    /// Per-step costs for sharing `bytes` (for reports and tests).
    pub fn step_costs(&self, bytes: u64) -> Vec<(FlowStep, Time)> {
        let gb_scaled = |per_gb: Time| per_gb.scale(bytes as f64 / (1u64 << 30) as f64);
        vec![
            (FlowStep::RequestToMn, self.management_rtt),
            (
                FlowStep::MnToDonor,
                self.management_rtt + self.mn_processing,
            ),
            (FlowStep::HotRemove, gb_scaled(self.hot_remove_per_gb)),
            (FlowStep::DonorInterfaceSetup, self.interface_setup),
            (FlowStep::GrantToRecipient, self.management_rtt),
            (FlowStep::HotPlug, gb_scaled(self.hot_plug_per_gb)),
            (FlowStep::RecipientInterfaceSetup, self.interface_setup),
        ]
    }

    /// Teardown latency: stop-sharing request, unplug, reclaim, table
    /// cleanup on both sides.
    pub fn teardown(&self, bytes: u64) -> Time {
        let gb = bytes as f64 / (1u64 << 30) as f64;
        self.management_rtt * 2
            + self.interface_setup * 2
            // Unplug migrates the recipient's data back or drops caches.
            + self.hot_remove_per_gb.scale(gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn establishment_dominated_by_hot_remove() {
        let t = FlowTiming::default();
        let costs = t.step_costs(1 << 30);
        let total = t.establish(1 << 30);
        let hot_remove = costs
            .iter()
            .find(|(s, _)| *s == FlowStep::HotRemove)
            .unwrap()
            .1;
        assert!(hot_remove.ratio(total) > 0.5);
    }

    #[test]
    fn cost_scales_with_region_size() {
        let t = FlowTiming::default();
        let small = t.establish(64 << 20);
        let large = t.establish(1 << 30);
        assert!(large > small * 8);
    }

    #[test]
    fn all_steps_present_in_order() {
        let t = FlowTiming::default();
        let steps: Vec<FlowStep> = t.step_costs(1 << 20).into_iter().map(|(s, _)| s).collect();
        assert_eq!(steps.len(), 7);
        assert_eq!(steps[0], FlowStep::RequestToMn);
        assert_eq!(steps[6], FlowStep::RecipientInterfaceSetup);
    }

    #[test]
    fn establishment_is_milliseconds_scale_for_fig14_increments() {
        // Fig 14's 70 MB increments should set up in tens of ms — far
        // cheaper than the 10000-query measurement interval.
        let t = FlowTiming::default();
        let e = t.establish(70 << 20);
        assert!(e < Time::from_ms(60), "establish = {e}");
    }

    #[test]
    fn teardown_cheaper_than_establish_plus_nonzero() {
        let t = FlowTiming::default();
        assert!(t.teardown(1 << 30) > Time::ZERO);
        assert!(t.teardown(1 << 30) < t.establish(1 << 30) + Time::from_ms(500));
    }
}
