//! The Monitor Node (paper Fig 2, §5.3).
//!
//! The MN ingests heartbeats into its tables, infers node liveness from
//! missed heartbeats, and services resource requests: policy-driven donor
//! selection followed by a handshake with the donor. "Note that it is
//! possible for MN records to be stale, allowing it to ask for more idle
//! memory than are currently available. We employ handshake and retry
//! mechanisms to address this."

use venice_fabric::topology::Topology;
use venice_fabric::NodeId;
use venice_sim::Time;

use crate::agent::Heartbeat;
use crate::policy::DonorPolicy;
use crate::tables::{AllocationRecord, Rat, ResourceKind, Rrt, Tst};

/// A committed grant of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// RAT allocation id.
    pub id: u64,
    /// Lending node.
    pub donor: NodeId,
    /// Borrowing node.
    pub recipient: NodeId,
    /// Amount granted.
    pub amount: u64,
    /// Donor-side base address (memory).
    pub addr: u64,
}

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No donor currently advertises enough capacity.
    NoCapacity,
    /// Every candidate donor refused during the handshake (stale records)
    /// within the retry budget.
    RetriesExhausted {
        /// Donors attempted.
        attempts: u32,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NoCapacity => f.write_str("no donor advertises enough capacity"),
            AllocError::RetriesExhausted { attempts } => {
                write!(f, "all {attempts} candidate donors refused (stale records)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The Monitor Node.
pub struct MonitorNode {
    topology: Topology,
    policy: Box<dyn DonorPolicy>,
    rrt: Rrt,
    rat: Rat,
    tst: Tst,
    /// A node is presumed dead after this many missed heartbeat periods.
    pub liveness_multiplier: u32,
    /// Expected heartbeat period.
    pub heartbeat_period: Time,
    grants_committed: u64,
    handshake_refusals: u64,
}

impl std::fmt::Debug for MonitorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorNode")
            .field("policy", &self.policy.name())
            .field("allocations", &self.rat.len())
            .field("grants_committed", &self.grants_committed)
            .finish()
    }
}

impl MonitorNode {
    /// Creates an MN over `topology` with the given donor policy.
    pub fn new(topology: Topology, policy: Box<dyn DonorPolicy>) -> Self {
        MonitorNode {
            topology,
            policy,
            rrt: Rrt::new(),
            rat: Rat::new(),
            tst: Tst::new(),
            liveness_multiplier: 3,
            heartbeat_period: Time::from_ms(100),
            grants_committed: 0,
            handshake_refusals: 0,
        }
    }

    /// Ingests one heartbeat: refreshes the RRT and TST.
    pub fn on_heartbeat(&mut self, hb: &Heartbeat) {
        for r in &hb.resources {
            self.rrt.register(*r);
        }
        for &(to, up) in &hb.link_status {
            self.tst.report(hb.node, to, up, hb.at);
        }
    }

    /// Whether `node` has reported within the liveness window ending at
    /// `now`.
    pub fn node_alive(&self, node: NodeId, now: Time) -> bool {
        let window = self.heartbeat_period * self.liveness_multiplier as u64;
        all_resource_kinds()
            .into_iter()
            .filter_map(|k| self.rrt.get(node, k))
            .any(|r| now.saturating_sub(r.reported_at) <= window)
    }

    /// Declares `node` dead: removes its RRT records and returns the
    /// allocations that must be torn down (fault handling).
    pub fn evict_node(&mut self, node: NodeId) -> Vec<AllocationRecord> {
        self.rrt.deregister_node(node);
        let affected: Vec<AllocationRecord> = self
            .rat
            .donated_by(node)
            .into_iter()
            .chain(self.rat.borrowed_by(node))
            .collect();
        for rec in &affected {
            self.rat.release(rec.id);
            if rec.donor != node {
                // Capacity returns to surviving donors.
                self.rrt.restore(rec.donor, rec.kind, rec.amount);
            }
        }
        affected
    }

    /// Requests `amount` of `kind` for `recipient` at time `now`.
    ///
    /// `donor_accepts` is the handshake: it is asked whether the chosen
    /// donor can really honor the grant (its true free capacity may be
    /// smaller than the RRT's stale view). Refused donors are skipped and
    /// the next candidate is tried, up to `max_retries` attempts.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoCapacity`] when no candidate advertises enough;
    /// [`AllocError::RetriesExhausted`] when all tried donors refuse.
    pub fn request(
        &mut self,
        recipient: NodeId,
        kind: ResourceKind,
        amount: u64,
        now: Time,
        max_retries: u32,
        mut donor_accepts: impl FnMut(NodeId, u64) -> bool,
    ) -> Result<Grant, AllocError> {
        let mut excluded: Vec<NodeId> = vec![recipient];
        let mut attempts = 0;
        while attempts < max_retries {
            let candidates: Vec<_> = self
                .rrt
                .available(kind)
                .into_iter()
                .filter(|r| r.amount >= amount && !excluded.contains(&r.node))
                .filter(|r| self.node_alive(r.node, now))
                .collect();
            let Some(donor) = self.policy.select(&self.topology, recipient, &candidates) else {
                return if attempts == 0 {
                    Err(AllocError::NoCapacity)
                } else {
                    Err(AllocError::RetriesExhausted { attempts })
                };
            };
            attempts += 1;
            if donor_accepts(donor, amount) {
                let addr = candidates
                    .iter()
                    .find(|r| r.node == donor)
                    .map(|r| r.addr)
                    .unwrap_or(0);
                self.rrt.consume(donor, kind, amount);
                let id = self.rat.allocate(donor, recipient, kind, amount, addr, now);
                self.grants_committed += 1;
                return Ok(Grant {
                    id,
                    donor,
                    recipient,
                    amount,
                    addr,
                });
            }
            // Stale record: zero it out so the next heartbeat refreshes it,
            // and try the next candidate.
            self.handshake_refusals += 1;
            self.rrt.consume(donor, kind, amount);
            excluded.push(donor);
        }
        Err(AllocError::RetriesExhausted { attempts })
    }

    /// Releases a grant (stop-sharing), restoring RRT capacity.
    pub fn release(&mut self, id: u64) -> Option<AllocationRecord> {
        let rec = self.rat.release(id)?;
        self.rrt.restore(rec.donor, rec.kind, rec.amount);
        Some(rec)
    }

    /// Committed grants so far.
    pub fn grants_committed(&self) -> u64 {
        self.grants_committed
    }

    /// Handshake refusals observed (staleness events).
    pub fn handshake_refusals(&self) -> u64 {
        self.handshake_refusals
    }

    /// In-force allocation count.
    pub fn active_allocations(&self) -> usize {
        self.rat.len()
    }

    /// Whether the MN believes the directed link is healthy.
    pub fn link_up(&self, from: NodeId, to: NodeId) -> bool {
        self.tst.is_up(from, to)
    }
}

fn all_resource_kinds() -> [ResourceKind; 3] {
    [
        ResourceKind::Memory,
        ResourceKind::Accelerator,
        ResourceKind::Nic,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NodeAgent;
    use crate::policy::DistancePolicy;
    use venice_fabric::Mesh3d;

    fn mn() -> MonitorNode {
        MonitorNode::new(
            Topology::Mesh(Mesh3d::prototype()),
            Box::new(DistancePolicy),
        )
    }

    fn beat(mn: &mut MonitorNode, node: u16, idle: u64, at: Time) {
        let mut a = NodeAgent::new(NodeId(node));
        a.idle_memory = idle;
        a.lendable_base = 0xC000_0000;
        mn.on_heartbeat(&a.heartbeat(at, |_| true));
    }

    #[test]
    fn grant_picks_nearest_donor() {
        let mut m = mn();
        beat(&mut m, 7, 1 << 30, Time::ZERO);
        beat(&mut m, 1, 1 << 30, Time::ZERO);
        let g = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                512 << 20,
                Time::ZERO,
                3,
                |_, _| true,
            )
            .unwrap();
        assert_eq!(g.donor, NodeId(1));
        assert_eq!(g.addr, 0xC000_0000);
        assert_eq!(m.active_allocations(), 1);
    }

    #[test]
    fn no_capacity_reported() {
        let mut m = mn();
        beat(&mut m, 1, 100, Time::ZERO);
        let err = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 30,
                Time::ZERO,
                3,
                |_, _| true,
            )
            .unwrap_err();
        assert_eq!(err, AllocError::NoCapacity);
    }

    #[test]
    fn recipient_never_donates_to_itself() {
        let mut m = mn();
        beat(&mut m, 0, 1 << 30, Time::ZERO);
        let err = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 20,
                Time::ZERO,
                3,
                |_, _| true,
            )
            .unwrap_err();
        assert_eq!(err, AllocError::NoCapacity);
    }

    #[test]
    fn stale_record_triggers_retry_with_next_donor() {
        let mut m = mn();
        beat(&mut m, 1, 1 << 30, Time::ZERO); // nearest but actually full
        beat(&mut m, 2, 1 << 30, Time::ZERO);
        let g = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 20,
                Time::ZERO,
                3,
                |donor, _| donor != NodeId(1),
            )
            .unwrap();
        assert_eq!(g.donor, NodeId(2));
        assert_eq!(m.handshake_refusals(), 1);
    }

    #[test]
    fn retries_exhausted_when_all_refuse() {
        let mut m = mn();
        beat(&mut m, 1, 1 << 30, Time::ZERO);
        beat(&mut m, 2, 1 << 30, Time::ZERO);
        let err = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 20,
                Time::ZERO,
                5,
                |_, _| false,
            )
            .unwrap_err();
        assert_eq!(err, AllocError::RetriesExhausted { attempts: 2 });
    }

    #[test]
    fn dead_nodes_are_not_donors() {
        let mut m = mn();
        beat(&mut m, 1, 1 << 30, Time::ZERO);
        beat(&mut m, 7, 1 << 30, Time::from_secs(10));
        // At t=10s node 1's heartbeat (t=0) is long stale.
        let g = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 20,
                Time::from_secs(10),
                3,
                |_, _| true,
            )
            .unwrap();
        assert_eq!(g.donor, NodeId(7));
    }

    #[test]
    fn release_restores_capacity() {
        let mut m = mn();
        beat(&mut m, 1, 1 << 30, Time::ZERO);
        let g = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 30,
                Time::ZERO,
                3,
                |_, _| true,
            )
            .unwrap();
        // Fully consumed: a second request fails.
        assert!(m
            .request(
                NodeId(2),
                ResourceKind::Memory,
                1 << 30,
                Time::ZERO,
                3,
                |_, _| true
            )
            .is_err());
        m.release(g.id).unwrap();
        assert!(m
            .request(
                NodeId(2),
                ResourceKind::Memory,
                1 << 30,
                Time::ZERO,
                3,
                |_, _| true
            )
            .is_ok());
    }

    #[test]
    fn evict_node_tears_down_its_loans() {
        let mut m = mn();
        beat(&mut m, 1, 1 << 30, Time::ZERO);
        beat(&mut m, 2, 1 << 30, Time::ZERO);
        let g = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 20,
                Time::ZERO,
                3,
                |_, _| true,
            )
            .unwrap();
        assert_eq!(g.donor, NodeId(1));
        let affected = m.evict_node(NodeId(1));
        assert_eq!(affected.len(), 1);
        assert_eq!(m.active_allocations(), 0);
        // Node 1 no longer a candidate.
        let g2 = m
            .request(
                NodeId(0),
                ResourceKind::Memory,
                1 << 20,
                Time::ZERO,
                3,
                |_, _| true,
            )
            .unwrap();
        assert_eq!(g2.donor, NodeId(2));
    }

    #[test]
    fn heartbeats_update_link_table() {
        let mut m = mn();
        let mut a = NodeAgent::new(NodeId(0));
        a.neighbors = vec![NodeId(1), NodeId(2)];
        m.on_heartbeat(&a.heartbeat(Time::ZERO, |n| n != NodeId(2)));
        assert!(m.link_up(NodeId(0), NodeId(1)));
        assert!(!m.link_up(NodeId(0), NodeId(2)));
    }
}
