//! Compiled all-pairs path tables over a 3D mesh.
//!
//! The engine-facing query API of the fabric: [`PathTable::compile`]
//! walks every (src, dst) pair through the *table-driven* forwarding
//! path ([`crate::routing::forward_path`] over per-node
//! [`RoutingTable`]s — the same lookup a real embedded switch performs,
//! not the closed-form [`Mesh3d::route`]) and flattens the results into
//! dense arrays of directed-link indices. After compilation every query
//! is a slice borrow: no hashing, no allocation, no per-request
//! routing-table walk — the shape a discrete-event hot path needs.
//!
//! Links are *directed*: the a→b and b→a sides of one cable get
//! distinct [`LinkId`]s, so per-direction bandwidth accounting (upload
//! vs download congestion) falls out of indexing alone.

use std::collections::HashMap;

use venice_sim::Time;

use crate::phy::LinkParams;
use crate::routing::{forward_path, forward_path_with_fallback, RoutingTable};
use crate::topology::{Mesh3d, NodeId};

/// Index of one directed link in a [`PathTable`]; assigned densely in
/// deterministic (src, dst) scan order at compile time.
pub type LinkId = u32;

/// Flattened all-pairs forwarding paths of one mesh, as directed-link
/// index slices.
///
/// # Example
///
/// ```
/// use venice_fabric::paths::PathTable;
/// use venice_fabric::topology::{Mesh3d, NodeId};
///
/// let mesh = Mesh3d::prototype();
/// let table = PathTable::compile(&mesh);
/// // Opposite corners of the 2x2x2 cube: three directed links.
/// assert_eq!(table.links(NodeId(0), NodeId(7)).len(), 3);
/// assert!(table.links(NodeId(3), NodeId(3)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PathTable {
    nodes: u16,
    /// `(from, to)` endpoints of each directed link, indexed by
    /// [`LinkId`].
    link_ends: Vec<(NodeId, NodeId)>,
    /// `(offset, len)` into `links` per (src, dst) pair, src-major.
    ranges: Vec<(u32, u16)>,
    /// Concatenated per-pair link sequences.
    links: Vec<LinkId>,
}

impl PathTable {
    /// Compiles the all-pairs path table of `mesh` by building each
    /// node's dimension-ordered [`RoutingTable`] and walking every
    /// (src, dst) pair through table-driven forwarding.
    ///
    /// # Panics
    ///
    /// Panics if the mesh exceeds the `u16` node space or any pair's
    /// path exceeds `u16::MAX` hops (impossible for a mesh that fits
    /// the node space).
    pub fn compile(mesh: &Mesh3d) -> Self {
        let n = mesh.len();
        let nodes = u16::try_from(n).expect("mesh exceeds the u16 NodeId space");
        let tables: Vec<RoutingTable> = mesh
            .nodes()
            .map(|node| RoutingTable::for_mesh(mesh, node))
            .collect();
        let mut ids: HashMap<(u16, u16), LinkId> = HashMap::new();
        let mut link_ends = Vec::new();
        let mut ranges = Vec::with_capacity(n * n);
        let mut links = Vec::new();
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let off = u32::try_from(links.len()).expect("path table overflow");
                let mut prev = src;
                for hop in forward_path(mesh, &tables, src, dst) {
                    let id = *ids.entry((prev.0, hop.0)).or_insert_with(|| {
                        link_ends.push((prev, hop));
                        (link_ends.len() - 1) as LinkId
                    });
                    links.push(id);
                    prev = hop;
                }
                let len = u16::try_from(links.len() - off as usize).expect("path too long");
                ranges.push((off, len));
            }
        }
        PathTable {
            nodes,
            link_ends,
            ranges,
            links,
        }
    }

    /// Recompiles the per-pair routes with the given *directed* links
    /// marked down, detouring over the routing layer's productive
    /// fallback ([`crate::routing::forward_path_with_fallback`]).
    ///
    /// [`LinkId`] assignments are **stable**: every link keeps the id
    /// the original compile gave it, so per-link congestion windows and
    /// gauges survive the reroute untouched. Pairs the down set
    /// partitions along every minimal route keep their stale
    /// precompiled path (a partition-grade failure has no honest
    /// detour; the caller's loss model is the one still charging it).
    /// An empty `down` set reproduces the original table exactly.
    ///
    /// # Panics
    ///
    /// Panics if a down endpoint is out of the compiled node range.
    pub fn recompile_with_down(&self, mesh: &Mesh3d, down: &[(NodeId, NodeId)]) -> PathTable {
        let mut tables: Vec<RoutingTable> = mesh
            .nodes()
            .map(|node| RoutingTable::for_mesh(mesh, node))
            .collect();
        for &(from, to) in down {
            let port = tables[from.0 as usize]
                .lookup(to)
                .expect("down link endpoints must be mesh neighbors");
            tables[from.0 as usize].set_link_status(port, false);
        }
        let mut ids: HashMap<(u16, u16), LinkId> = self
            .link_ends
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ((a.0, b.0), i as LinkId))
            .collect();
        let mut link_ends = self.link_ends.clone();
        let mut ranges = Vec::with_capacity(self.ranges.len());
        let mut links = Vec::new();
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let off = u32::try_from(links.len()).expect("path table overflow");
                match forward_path_with_fallback(mesh, &tables, src, dst) {
                    Some(path) => {
                        let mut prev = src;
                        for hop in path {
                            let id = *ids.entry((prev.0, hop.0)).or_insert_with(|| {
                                link_ends.push((prev, hop));
                                (link_ends.len() - 1) as LinkId
                            });
                            links.push(id);
                            prev = hop;
                        }
                    }
                    None => links.extend_from_slice(self.links(src, dst)),
                }
                let len = u16::try_from(links.len() - off as usize).expect("path too long");
                ranges.push((off, len));
            }
        }
        PathTable {
            nodes: self.nodes,
            link_ends,
            ranges,
            links,
        }
    }

    /// Number of nodes the table was compiled for.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Number of distinct directed links any compiled path crosses.
    pub fn link_count(&self) -> usize {
        self.link_ends.len()
    }

    /// `(from, to)` endpoints of directed link `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        self.link_ends[link as usize]
    }

    /// The directed links crossed from `src` to `dst`, in traversal
    /// order; empty when `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn links(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        let (off, len) = self.ranges[src.0 as usize * self.nodes as usize + dst.0 as usize];
        &self.links[off as usize..off as usize + len as usize]
    }

    /// Hop count of the compiled path from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// As [`PathTable::links`].
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.links(src, dst).len() as u32
    }

    /// Uncongested one-way latency of a `wire_bytes` transfer from
    /// `src` to `dst` over links described by `params`: the first hop
    /// pays the endpoint cost ([`LinkParams::one_way`]), every further
    /// hop a store-and-forward transit ([`LinkParams::transit`]).
    /// Zero when `src == dst` (a local access never enters the fabric).
    ///
    /// # Panics
    ///
    /// As [`PathTable::links`].
    pub fn one_way(&self, params: &LinkParams, src: NodeId, dst: NodeId, wire_bytes: u64) -> Time {
        let hops = self.hops(src, dst);
        if hops == 0 {
            return Time::ZERO;
        }
        params.one_way(wire_bytes) + params.transit(wire_bytes) * u64::from(hops - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_paths_match_dimension_order_routes() {
        let mesh = Mesh3d::new(4, 2, 2);
        let table = PathTable::compile(&mesh);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                let route = mesh.route(a, b);
                let links = table.links(a, b);
                assert_eq!(links.len(), route.len(), "{a}->{b}");
                let mut prev = a;
                for (&link, &hop) in links.iter().zip(&route) {
                    assert_eq!(table.endpoints(link), (prev, hop));
                    prev = hop;
                }
            }
        }
    }

    #[test]
    fn directed_links_cover_every_cable_twice() {
        // A dx x dy x dz mesh has dx*dy*dz*3 - (dy*dz + dx*dz + dx*dy)
        // cables; dimension-ordered all-pairs routing crosses every one
        // of them in both directions.
        let mesh = Mesh3d::new(2, 2, 2);
        let table = PathTable::compile(&mesh);
        assert_eq!(table.link_count(), 2 * (8 * 3 - (4 + 4 + 4)));
    }

    #[test]
    fn link_ids_are_deterministic() {
        let mesh = Mesh3d::new(3, 3, 1);
        let a = PathTable::compile(&mesh);
        let b = PathTable::compile(&mesh);
        assert_eq!(a.link_ends, b.link_ends);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn recompile_with_no_down_links_is_identity() {
        let mesh = Mesh3d::new(4, 2, 2);
        let table = PathTable::compile(&mesh);
        let again = table.recompile_with_down(&mesh, &[]);
        assert_eq!(table.link_ends, again.link_ends);
        assert_eq!(table.ranges, again.ranges);
        assert_eq!(table.links, again.links);
    }

    #[test]
    fn recompile_detours_around_a_down_link_with_stable_ids() {
        let mesh = Mesh3d::prototype();
        let table = PathTable::compile(&mesh);
        // Down both directions of the 0<->1 cable (a flapped cable dies
        // whole). 0->1 itself is partitioned along its only minimal
        // route and keeps the stale path; 0->3 detours via +y.
        let down = [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))];
        let rerouted = table.recompile_with_down(&mesh, &down);
        let direct: Vec<_> = rerouted.links(NodeId(0), NodeId(1)).to_vec();
        assert_eq!(direct, table.links(NodeId(0), NodeId(1)).to_vec());
        let detour = rerouted.links(NodeId(0), NodeId(3));
        assert_eq!(detour.len(), 2, "productive detours stay minimal");
        assert_eq!(rerouted.endpoints(detour[0]), (NodeId(0), NodeId(2)));
        assert_eq!(rerouted.endpoints(detour[1]), (NodeId(2), NodeId(3)));
        // Ids survive the reroute: every original link keeps its slot.
        for id in 0..table.link_count() as LinkId {
            assert_eq!(table.endpoints(id), rerouted.endpoints(id));
        }
    }

    #[test]
    fn one_way_latency_telescopes_over_hops() {
        let mesh = Mesh3d::prototype();
        let table = PathTable::compile(&mesh);
        let link = LinkParams::venice_prototype();
        let one = table.one_way(&link, NodeId(0), NodeId(1), 64);
        let three = table.one_way(&link, NodeId(0), NodeId(7), 64);
        assert_eq!(one, link.one_way(64));
        assert_eq!(three, link.one_way(64) + link.transit(64) * 2);
        assert_eq!(
            table.one_way(&link, NodeId(5), NodeId(5), 64),
            Time::ZERO,
            "local access never enters the fabric"
        );
    }
}
