//! Fabric packet format.
//!
//! The Venice transport layer multiplexes three channels (CRMA, RDMA,
//! QPair) plus link-management traffic over one fabric. Packets carry a
//! channel kind, a per-flow sequence number (the paper notes that
//! inter-channel collaboration makes out-of-order arrival possible,
//! "necessitating a sequence number — something we learned the hard way"),
//! and a payload size used for serialization-delay accounting.

use crate::topology::NodeId;

/// Which transport-layer channel (or link-layer function) a packet belongs
/// to. Mirrors Fig 7's transport channels plus datalink control traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// CRMA cacheline fetch request (paper §5.1.2, "CRMA channel").
    CrmaReadReq,
    /// CRMA cacheline fill response carrying one cacheline.
    CrmaReadResp,
    /// CRMA writeback of a dirty cacheline.
    CrmaWrite,
    /// CRMA write acknowledgement.
    CrmaWriteAck,
    /// RDMA bulk-data segment.
    RdmaData,
    /// RDMA completion notification.
    RdmaCompletion,
    /// QPair message data.
    QpairData,
    /// QPair (SDP-style) credit update carried over the QPair channel.
    QpairCredit,
    /// QPair credit update re-routed over CRMA (inter-channel
    /// collaboration, Fig 9): an overwriteable one-cacheline store.
    CrmaCreditUpdate,
    /// Datalink acknowledgement (replay protocol).
    LinkAck,
    /// Datalink negative acknowledgement requesting replay.
    LinkNack,
    /// Runtime/management traffic (heartbeats, handshakes).
    Management,
}

impl PacketKind {
    /// Header overhead in bytes for this packet class. The Venice protocol
    /// is "ultra-lightweight" (paper §3): short headers for on-rack links.
    pub const fn header_bytes(self) -> u64 {
        match self {
            // Request/control packets are header-only, 16-byte envelope.
            PacketKind::CrmaReadReq
            | PacketKind::CrmaWriteAck
            | PacketKind::RdmaCompletion
            | PacketKind::QpairCredit
            | PacketKind::LinkAck
            | PacketKind::LinkNack => 16,
            // Data-bearing packets add routing + CRC + sequence fields.
            PacketKind::CrmaReadResp
            | PacketKind::CrmaWrite
            | PacketKind::CrmaCreditUpdate
            | PacketKind::RdmaData
            | PacketKind::QpairData
            | PacketKind::Management => 16,
        }
    }

    /// Whether this kind carries payload data (vs pure control).
    pub const fn carries_data(self) -> bool {
        matches!(
            self,
            PacketKind::CrmaReadResp
                | PacketKind::CrmaWrite
                | PacketKind::CrmaCreditUpdate
                | PacketKind::RdmaData
                | PacketKind::QpairData
                | PacketKind::Management
        )
    }
}

/// Arbitration priority. Control traffic (credits, acks) preempts bulk
/// data so flow-control latency stays low — the property Fig 18 exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk data.
    Bulk,
    /// Latency-sensitive cacheline traffic.
    Cacheline,
    /// Link control: acks, credits.
    Control,
}

/// A fabric packet.
///
/// `flow` distinguishes independent streams (e.g. one per QPair); `seq`
/// orders packets within a flow across channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Channel / function.
    pub kind: PacketKind,
    /// Flow identifier (channel connection id).
    pub flow: u32,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Payload bytes (excluding header).
    pub payload_bytes: u64,
}

impl Packet {
    /// Creates a packet; `seq` starts at 0 and is assigned by the sender's
    /// datalink or channel state machine.
    pub fn new(src: NodeId, dst: NodeId, kind: PacketKind, flow: u32, payload_bytes: u64) -> Self {
        Packet {
            src,
            dst,
            kind,
            flow,
            seq: 0,
            payload_bytes,
        }
    }

    /// Total bytes on the wire: header + payload.
    pub fn wire_bytes(&self) -> u64 {
        self.kind.header_bytes() + self.payload_bytes
    }

    /// Arbitration priority derived from the packet kind.
    pub fn priority(&self) -> Priority {
        match self.kind {
            PacketKind::LinkAck
            | PacketKind::LinkNack
            | PacketKind::QpairCredit
            | PacketKind::CrmaCreditUpdate => Priority::Control,
            PacketKind::CrmaReadReq
            | PacketKind::CrmaReadResp
            | PacketKind::CrmaWrite
            | PacketKind::CrmaWriteAck => Priority::Cacheline,
            PacketKind::RdmaData
            | PacketKind::RdmaCompletion
            | PacketKind::QpairData
            | PacketKind::Management => Priority::Bulk,
        }
    }
}

impl std::fmt::Display for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} {}->{} flow={} seq={} {}B",
            self.kind, self.src.0, self.dst.0, self.flow, self.seq, self.payload_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_header() {
        let p = Packet::new(NodeId(0), NodeId(1), PacketKind::CrmaReadResp, 0, 64);
        assert_eq!(p.wire_bytes(), 80);
    }

    #[test]
    fn control_packets_outrank_data() {
        let credit = Packet::new(NodeId(0), NodeId(1), PacketKind::QpairCredit, 0, 0);
        let data = Packet::new(NodeId(0), NodeId(1), PacketKind::QpairData, 0, 4096);
        let line = Packet::new(NodeId(0), NodeId(1), PacketKind::CrmaReadReq, 0, 0);
        assert!(credit.priority() > line.priority());
        assert!(line.priority() > data.priority());
    }

    #[test]
    fn crma_credit_update_is_control_priority() {
        // The Fig 9 optimization only helps if credit packets routed via
        // CRMA keep control priority.
        let p = Packet::new(NodeId(2), NodeId(3), PacketKind::CrmaCreditUpdate, 9, 64);
        assert_eq!(p.priority(), Priority::Control);
        assert!(p.kind.carries_data());
    }

    #[test]
    fn display_is_informative() {
        let p = Packet::new(NodeId(1), NodeId(2), PacketKind::RdmaData, 7, 4096);
        let s = p.to_string();
        assert!(s.contains("RdmaData") && s.contains("4096"));
    }
}
