//! Fabric topologies.
//!
//! The prototype (paper Fig 4) is an 8-node 3D mesh; §4.2.2 additionally
//! studies a one-level external router between two nodes, and §5.1.1 makes
//! "switchless" direct chip-to-chip connection a headline feature. All
//! three appear here: [`Mesh3d`], [`Topology::StarRouter`], and
//! [`Topology::Direct`].

use serde::{Deserialize, Serialize};

/// Identifier of a node in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// 3D coordinates of a node inside a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// X position.
    pub x: u16,
    /// Y position.
    pub y: u16,
    /// Z position.
    pub z: u16,
}

/// A 3D mesh of nodes, as in the 8-node (2×2×2) prototype.
///
/// # Example
///
/// ```
/// use venice_fabric::topology::{Mesh3d, NodeId};
/// let m = Mesh3d::new(2, 2, 2);
/// assert_eq!(m.hops(NodeId(0), NodeId(7)), 3);
/// assert_eq!(m.neighbors(NodeId(0)).len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh3d {
    dx: u16,
    dy: u16,
    dz: u16,
}

impl Mesh3d {
    /// Creates a mesh of `dx × dy × dz` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(dx: u16, dy: u16, dz: u16) -> Self {
        assert!(
            dx > 0 && dy > 0 && dz > 0,
            "mesh dimensions must be positive"
        );
        Mesh3d { dx, dy, dz }
    }

    /// The paper's 8-node 2×2×2 prototype mesh.
    pub fn prototype() -> Self {
        Mesh3d::new(2, 2, 2)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.dx as usize * self.dy as usize * self.dz as usize
    }

    /// Whether the mesh is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!((node.0 as usize) < self.len(), "node {node} out of range");
        let n = node.0;
        let x = n % self.dx;
        let y = (n / self.dx) % self.dy;
        let z = n / (self.dx * self.dy);
        Coord { x, y, z }
    }

    /// Node at coordinates.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.dx && c.y < self.dy && c.z < self.dz,
            "coordinate out of range"
        );
        NodeId(c.x + c.y * self.dx + c.z * self.dx * self.dy)
    }

    /// Manhattan hop count between two nodes (minimal-path length).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y) + ca.z.abs_diff(cb.z)) as u32
    }

    /// Dimension-ordered (XYZ) minimal path from `a` to `b`, excluding `a`
    /// and including `b`. Empty when `a == b`.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut cur = self.coord(a);
        let dst = self.coord(b);
        let mut path = Vec::with_capacity(self.hops(a, b) as usize);
        while cur.x != dst.x {
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(self.node_at(cur));
        }
        while cur.y != dst.y {
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(self.node_at(cur));
        }
        while cur.z != dst.z {
            cur.z = if dst.z > cur.z { cur.z + 1 } else { cur.z - 1 };
            path.push(self.node_at(cur));
        }
        path
    }

    /// Direct mesh neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let c = self.coord(node);
        let mut out = Vec::new();
        if c.x > 0 {
            out.push(self.node_at(Coord { x: c.x - 1, ..c }));
        }
        if c.x + 1 < self.dx {
            out.push(self.node_at(Coord { x: c.x + 1, ..c }));
        }
        if c.y > 0 {
            out.push(self.node_at(Coord { y: c.y - 1, ..c }));
        }
        if c.y + 1 < self.dy {
            out.push(self.node_at(Coord { y: c.y + 1, ..c }));
        }
        if c.z > 0 {
            out.push(self.node_at(Coord { z: c.z - 1, ..c }));
        }
        if c.z + 1 < self.dz {
            out.push(self.node_at(Coord { z: c.z + 1, ..c }));
        }
        out
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }
}

/// How nodes are wired together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Two (or more) nodes pairwise directly connected — the "switchless"
    /// chip-to-chip mode used in §4.2.1's latency study.
    Direct {
        /// Number of nodes, all mutually one hop apart.
        nodes: u16,
    },
    /// All nodes hang off one external router — §4.2.2's "one-level
    /// router" configuration. Every path is two link traversals plus a
    /// router transit.
    StarRouter {
        /// Number of leaf nodes.
        nodes: u16,
    },
    /// 3D mesh with per-hop embedded switches — the 8-node prototype.
    Mesh(Mesh3d),
}

impl Topology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            Topology::Direct { nodes } | Topology::StarRouter { nodes } => *nodes as usize,
            Topology::Mesh(m) => m.len(),
        }
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of node-to-node link traversals between `a` and `b`.
    pub fn link_hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match self {
            Topology::Direct { .. } => 1,
            Topology::StarRouter { .. } => 2,
            Topology::Mesh(m) => m.hops(a, b),
        }
    }

    /// Number of intermediate switch/router transits between `a` and `b`
    /// (not counting the embedded switches at the endpoints, whose cost is
    /// part of the channel interface latency).
    pub fn transit_switches(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match self {
            Topology::Direct { .. } => 0,
            Topology::StarRouter { .. } => 1,
            // Each intermediate mesh node's embedded switch forwards.
            Topology::Mesh(m) => m.hops(a, b).saturating_sub(1),
        }
    }

    /// Whether the path between `a` and `b` crosses an *external* router
    /// (vs only embedded on-chip switches).
    pub fn crosses_external_router(&self, a: NodeId, b: NodeId) -> bool {
        matches!(self, Topology::StarRouter { .. }) && a != b
    }

    /// Distance metric used by the runtime's donor-selection policy.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.link_hops(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let m = Mesh3d::new(3, 4, 5);
        for n in m.nodes() {
            assert_eq!(m.node_at(m.coord(n)), n);
        }
    }

    #[test]
    fn prototype_is_eight_nodes() {
        let m = Mesh3d::prototype();
        assert_eq!(m.len(), 8);
        // Opposite corners of a 2x2x2 cube are 3 hops apart.
        assert_eq!(m.hops(NodeId(0), NodeId(7)), 3);
        assert_eq!(m.hops(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn route_length_matches_hops() {
        let m = Mesh3d::new(4, 3, 2);
        for a in m.nodes() {
            for b in m.nodes() {
                let r = m.route(a, b);
                assert_eq!(r.len() as u32, m.hops(a, b));
                if a != b {
                    assert_eq!(*r.last().unwrap(), b);
                }
            }
        }
    }

    #[test]
    fn route_steps_are_adjacent() {
        let m = Mesh3d::new(4, 4, 4);
        let mut prev = NodeId(0);
        for step in m.route(NodeId(0), NodeId(63)) {
            assert_eq!(m.hops(prev, step), 1);
            prev = step;
        }
    }

    #[test]
    fn corner_has_three_neighbors_in_cube() {
        let m = Mesh3d::prototype();
        assert_eq!(m.neighbors(NodeId(0)).len(), 3);
        // Interior node of a 3x3x3 mesh has 6 neighbors.
        let m3 = Mesh3d::new(3, 3, 3);
        let center = m3.node_at(Coord { x: 1, y: 1, z: 1 });
        assert_eq!(m3.neighbors(center).len(), 6);
    }

    #[test]
    fn direct_vs_router_hop_counts() {
        let d = Topology::Direct { nodes: 2 };
        let r = Topology::StarRouter { nodes: 2 };
        assert_eq!(d.link_hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(r.link_hops(NodeId(0), NodeId(1)), 2);
        assert_eq!(d.transit_switches(NodeId(0), NodeId(1)), 0);
        assert_eq!(r.transit_switches(NodeId(0), NodeId(1)), 1);
        assert!(r.crosses_external_router(NodeId(0), NodeId(1)));
        assert!(!d.crosses_external_router(NodeId(0), NodeId(1)));
        assert!(!r.crosses_external_router(NodeId(1), NodeId(1)));
    }

    #[test]
    fn mesh_topology_transits() {
        let t = Topology::Mesh(Mesh3d::prototype());
        assert_eq!(t.link_hops(NodeId(0), NodeId(7)), 3);
        assert_eq!(t.transit_switches(NodeId(0), NodeId(7)), 2);
        assert_eq!(t.transit_switches(NodeId(0), NodeId(1)), 0);
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 3);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        Mesh3d::new(0, 2, 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_rejected() {
        Mesh3d::prototype().coord(NodeId(8));
    }
}
