//! Physical layer model: serdes, cable, serialization, and the
//! on-chip/off-chip integration distinction.
//!
//! Two findings of the paper live here. First, "the latency of the
//! physical layer (PHY) is a significant, and sometimes dominant,
//! component of overall transaction latency" (§4.2.2) — so PHY traversal
//! latency is explicit, not folded into a generic constant. Second, the
//! contrast between *on-chip* integration and *off-chip* interface logic
//! (§4.2.1's "off-chip CRMA" vs "on-chip CRMA") is a first-class knob:
//! off-chip integration pays an extra adapter/I/O-bus traversal on each
//! end.

use serde::{Deserialize, Serialize};
use venice_sim::Time;

/// Where the fabric interface logic sits relative to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integration {
    /// Fabric interface integrated on the processor die (Venice's design
    /// point): no adapter crossing.
    OnChip,
    /// Interface reached over an I/O bus / adapter (legacy designs): each
    /// crossing adds adapter latency at both the requester and the
    /// interface.
    OffChip,
}

/// Parameters of one physical link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Link bandwidth in gigabits per second (per direction).
    pub gbps: f64,
    /// Serdes + PHY traversal latency, paid once per endpoint.
    pub phy_latency: Time,
    /// Cable/board propagation delay.
    pub cable_delay: Time,
    /// Integration style of the fabric interface.
    pub integration: Integration,
    /// Extra latency per adapter crossing when `integration` is
    /// [`Integration::OffChip`] (I/O hub, bus arbitration, protocol
    /// conversion).
    pub adapter_latency: Time,
}

impl LinkParams {
    /// The paper's prototype link (Table 1): 5 Gbps serial lanes,
    /// point-to-point latency ≈ 1.4 µs dominated by the PHY, fabric
    /// integrated on chip (in programmable logic next to the ARM cores).
    pub fn venice_prototype() -> Self {
        LinkParams {
            gbps: 5.0,
            // Calibrated so a 64 B cacheline packet sees ~1.4 us one-way:
            // 2 x 635 ns PHY + 30 ns cable + 102.4 ns serialization.
            phy_latency: Time::from_ns(635),
            cable_delay: Time::from_ns(30),
            integration: Integration::OnChip,
            adapter_latency: Time::ZERO,
        }
    }

    /// Same link but with off-chip interface logic: models the "off-chip
    /// CRMA / off-chip QPair" configurations of §4.2.1, where requests
    /// cross an I/O bus and adapter before reaching the fabric.
    pub fn venice_prototype_off_chip() -> Self {
        LinkParams {
            integration: Integration::OffChip,
            // PCIe-class adapter crossing: DMA/bus arbitration + bridging.
            adapter_latency: Time::from_ns(500),
            ..Self::venice_prototype()
        }
    }

    /// Returns a copy with a different bandwidth.
    pub fn with_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        self.gbps = gbps;
        self
    }

    /// Adapter penalty paid per one-way traversal (both endpoints cross
    /// their adapter once).
    pub fn adapter_penalty(&self) -> Time {
        match self.integration {
            Integration::OnChip => Time::ZERO,
            Integration::OffChip => self.adapter_latency * 2,
        }
    }

    /// Serialization delay for `bytes` on this link.
    pub fn serialize(&self, bytes: u64) -> Time {
        Time::serialize_bytes(bytes, self.gbps)
    }

    /// One-way latency for a packet of `wire_bytes` total bytes over a
    /// single link traversal: PHY out + cable + PHY in + serialization +
    /// any adapter penalty.
    pub fn one_way(&self, wire_bytes: u64) -> Time {
        self.phy_latency * 2
            + self.cable_delay
            + self.serialize(wire_bytes)
            + self.adapter_penalty()
    }

    /// Latency of transiting an intermediate hop (store-and-forward at a
    /// mesh node): one extra PHY pair + cable + re-serialization.
    pub fn transit(&self, wire_bytes: u64) -> Time {
        self.phy_latency * 2 + self.cable_delay + self.serialize(wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_p2p_latency_near_table1() {
        // Table 1: P2P latency 1.4 us for the prototype fabric.
        let link = LinkParams::venice_prototype();
        let t = link.one_way(64 + 16); // cacheline + header
        let us = t.as_us_f64();
        assert!((1.3..1.5).contains(&us), "one-way = {us} us");
    }

    #[test]
    fn off_chip_adds_adapter_penalty() {
        let on = LinkParams::venice_prototype();
        let off = LinkParams::venice_prototype_off_chip();
        let d = off.one_way(80) - on.one_way(80);
        assert_eq!(d, Time::from_ns(1000));
    }

    #[test]
    fn serialization_scales_linearly() {
        let link = LinkParams::venice_prototype();
        let small = link.serialize(64);
        let large = link.serialize(4096);
        assert_eq!(large.as_ps(), small.as_ps() * 64);
    }

    #[test]
    fn transit_has_no_adapter_cost() {
        // Intermediate mesh hops stay inside the fabric; the adapter is
        // only crossed at the endpoints.
        let off = LinkParams::venice_prototype_off_chip();
        assert_eq!(off.transit(80) + off.adapter_penalty(), off.one_way(80));
    }

    #[test]
    #[should_panic]
    fn with_gbps_rejects_zero() {
        LinkParams::venice_prototype().with_gbps(0.0);
    }
}
