//! Network-layer routing table (paper Fig 8, right half).
//!
//! Each node's embedded switch forwards by destination node id through a
//! small table of `{valid, node id, out port, link status}` entries. We
//! also provide the generator that fills the tables for dimension-ordered
//! mesh routing, and a port-numbering convention for the radix-7 switch.

use std::collections::HashMap;

use crate::topology::{Mesh3d, NodeId};

/// Output port of the embedded switch.
///
/// Convention for the prototype's radix-7 switch: port 0 is the local
/// ejection port; ports 1–6 are −x, +x, −y, +y, −z, +z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutPort(pub u8);

/// The local ejection port (deliver to this node's transport layer).
pub const LOCAL_PORT: OutPort = OutPort(0);

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Entry is populated and usable.
    pub valid: bool,
    /// Output port toward the destination.
    pub out_port: OutPort,
    /// Link health as reported by the runtime's Topology Status Table;
    /// routing through a down link fails the lookup.
    pub link_up: bool,
}

/// Per-node forwarding table keyed by destination node.
///
/// # Example
///
/// ```
/// use venice_fabric::routing::RoutingTable;
/// use venice_fabric::topology::{Mesh3d, NodeId};
///
/// let mesh = Mesh3d::prototype();
/// let table = RoutingTable::for_mesh(&mesh, NodeId(0));
/// // Node 0 reaches itself on the local port.
/// assert_eq!(table.lookup(NodeId(0)).unwrap().0, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    node: NodeId,
    entries: HashMap<NodeId, RouteEntry>,
}

impl RoutingTable {
    /// Creates an empty table for `node`.
    pub fn new(node: NodeId) -> Self {
        RoutingTable {
            node,
            entries: HashMap::new(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs or replaces the route toward `dst`.
    pub fn install(&mut self, dst: NodeId, out_port: OutPort) {
        self.entries.insert(
            dst,
            RouteEntry {
                valid: true,
                out_port,
                link_up: true,
            },
        );
    }

    /// Marks the link behind `port` up or down (driven by the runtime's
    /// heartbeat link tests).
    pub fn set_link_status(&mut self, port: OutPort, up: bool) {
        for e in self.entries.values_mut() {
            if e.out_port == port {
                e.link_up = up;
            }
        }
    }

    /// Invalidates the route toward `dst`.
    pub fn invalidate(&mut self, dst: NodeId) {
        if let Some(e) = self.entries.get_mut(&dst) {
            e.valid = false;
        }
    }

    /// Looks up the output port toward `dst`; `None` when missing,
    /// invalidated, or the link is down.
    pub fn lookup(&self, dst: NodeId) -> Option<OutPort> {
        self.entries
            .get(&dst)
            .filter(|e| e.valid && e.link_up)
            .map(|e| e.out_port)
    }

    /// Number of installed (valid or not) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the dimension-ordered (XYZ) routing table of `node` for
    /// `mesh`: the out port toward each destination is the first axis on
    /// which the coordinates differ.
    pub fn for_mesh(mesh: &Mesh3d, node: NodeId) -> Self {
        let mut table = RoutingTable::new(node);
        let here = mesh.coord(node);
        for dst in mesh.nodes() {
            let port = if dst == node {
                LOCAL_PORT
            } else {
                let d = mesh.coord(dst);
                if d.x != here.x {
                    if d.x < here.x {
                        OutPort(1)
                    } else {
                        OutPort(2)
                    }
                } else if d.y != here.y {
                    if d.y < here.y {
                        OutPort(3)
                    } else {
                        OutPort(4)
                    }
                } else if d.z < here.z {
                    OutPort(5)
                } else {
                    OutPort(6)
                }
            };
            table.install(dst, port);
        }
        table
    }
}

/// Walks packets across mesh routing tables, returning the nodes visited
/// after `src` (including `dst`). Used by tests to prove table-driven
/// forwarding agrees with [`Mesh3d::route`].
pub fn forward_path(
    mesh: &Mesh3d,
    tables: &[RoutingTable],
    src: NodeId,
    dst: NodeId,
) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut cur = src;
    while cur != dst {
        let port = tables[cur.0 as usize]
            .lookup(dst)
            .expect("no route installed");
        assert_ne!(port, LOCAL_PORT, "premature local delivery");
        let here = mesh.coord(cur);
        let mut next = here;
        match port.0 {
            1 => next.x -= 1,
            2 => next.x += 1,
            3 => next.y -= 1,
            4 => next.y += 1,
            5 => next.z -= 1,
            6 => next.z += 1,
            p => panic!("bad port {p}"),
        }
        cur = mesh.node_at(next);
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tables(mesh: &Mesh3d) -> Vec<RoutingTable> {
        mesh.nodes()
            .map(|n| RoutingTable::for_mesh(mesh, n))
            .collect()
    }

    #[test]
    fn table_forwarding_matches_dimension_order_route() {
        let mesh = Mesh3d::prototype();
        let tables = all_tables(&mesh);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                assert_eq!(forward_path(&mesh, &tables, a, b), mesh.route(a, b));
            }
        }
    }

    #[test]
    fn local_delivery_uses_local_port() {
        let mesh = Mesh3d::prototype();
        let t = RoutingTable::for_mesh(&mesh, NodeId(5));
        assert_eq!(t.lookup(NodeId(5)), Some(LOCAL_PORT));
    }

    #[test]
    fn down_link_fails_lookup() {
        let mesh = Mesh3d::prototype();
        let mut t = RoutingTable::for_mesh(&mesh, NodeId(0));
        let port = t.lookup(NodeId(1)).unwrap();
        t.set_link_status(port, false);
        assert_eq!(t.lookup(NodeId(1)), None);
        t.set_link_status(port, true);
        assert!(t.lookup(NodeId(1)).is_some());
    }

    #[test]
    fn invalidate_removes_route() {
        let mesh = Mesh3d::prototype();
        let mut t = RoutingTable::for_mesh(&mesh, NodeId(0));
        t.invalidate(NodeId(3));
        assert_eq!(t.lookup(NodeId(3)), None);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn larger_mesh_routes_terminate() {
        let mesh = Mesh3d::new(4, 4, 2);
        let tables = all_tables(&mesh);
        let path = forward_path(&mesh, &tables, NodeId(0), NodeId(31));
        assert_eq!(path.len() as u32, mesh.hops(NodeId(0), NodeId(31)));
    }
}
