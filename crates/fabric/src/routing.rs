//! Network-layer routing table (paper Fig 8, right half).
//!
//! Each node's embedded switch forwards by destination node id through a
//! small table of `{valid, node id, out port, link status}` entries. We
//! also provide the generator that fills the tables for dimension-ordered
//! mesh routing, and a port-numbering convention for the radix-7 switch.

use std::collections::HashMap;

use crate::topology::{Mesh3d, NodeId};

/// Output port of the embedded switch.
///
/// Convention for the prototype's radix-7 switch: port 0 is the local
/// ejection port; ports 1–6 are −x, +x, −y, +y, −z, +z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutPort(pub u8);

/// The local ejection port (deliver to this node's transport layer).
pub const LOCAL_PORT: OutPort = OutPort(0);

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Entry is populated and usable.
    pub valid: bool,
    /// Output port toward the destination.
    pub out_port: OutPort,
    /// Link health as reported by the runtime's Topology Status Table;
    /// routing through a down link fails the lookup.
    pub link_up: bool,
}

/// Per-node forwarding table keyed by destination node.
///
/// # Example
///
/// ```
/// use venice_fabric::routing::RoutingTable;
/// use venice_fabric::topology::{Mesh3d, NodeId};
///
/// let mesh = Mesh3d::prototype();
/// let table = RoutingTable::for_mesh(&mesh, NodeId(0));
/// // Node 0 reaches itself on the local port.
/// assert_eq!(table.lookup(NodeId(0)).unwrap().0, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    node: NodeId,
    entries: HashMap<NodeId, RouteEntry>,
}

impl RoutingTable {
    /// Creates an empty table for `node`.
    pub fn new(node: NodeId) -> Self {
        RoutingTable {
            node,
            entries: HashMap::new(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs or replaces the route toward `dst`.
    pub fn install(&mut self, dst: NodeId, out_port: OutPort) {
        self.entries.insert(
            dst,
            RouteEntry {
                valid: true,
                out_port,
                link_up: true,
            },
        );
    }

    /// Marks the link behind `port` up or down (driven by the runtime's
    /// heartbeat link tests).
    pub fn set_link_status(&mut self, port: OutPort, up: bool) {
        for e in self.entries.values_mut() {
            if e.out_port == port {
                e.link_up = up;
            }
        }
    }

    /// Invalidates the route toward `dst`.
    pub fn invalidate(&mut self, dst: NodeId) {
        if let Some(e) = self.entries.get_mut(&dst) {
            e.valid = false;
        }
    }

    /// Looks up the output port toward `dst`; `None` when missing,
    /// invalidated, or the link is down.
    pub fn lookup(&self, dst: NodeId) -> Option<OutPort> {
        self.entries
            .get(&dst)
            .filter(|e| e.valid && e.link_up)
            .map(|e| e.out_port)
    }

    /// Whether the link behind `port` is up. A port no entry routes
    /// through reports down: there is no cable there to detour over.
    pub fn port_up(&self, port: OutPort) -> bool {
        self.entries
            .values()
            .any(|e| e.out_port == port && e.link_up)
    }

    /// Looks up the port toward `dst`, detouring around down links:
    /// when the primary dimension-ordered port fails, the first *other*
    /// axis (X, then Y, then Z order) whose coordinate still differs
    /// from `dst`'s and whose link is up is taken instead. Every
    /// candidate moves strictly closer to `dst`, so detoured forwarding
    /// is loop-free and preserves the minimal hop count; `None` means
    /// every productive link out of this node is down (partition-grade
    /// failure — callers keep their stale route or give up).
    pub fn lookup_with_fallback(&self, mesh: &Mesh3d, dst: NodeId) -> Option<OutPort> {
        if let Some(port) = self.lookup(dst) {
            return Some(port);
        }
        if dst == self.node {
            return None;
        }
        let here = mesh.coord(self.node);
        let d = mesh.coord(dst);
        let mut candidates = [None; 3];
        if d.x != here.x {
            candidates[0] = Some(if d.x < here.x { OutPort(1) } else { OutPort(2) });
        }
        if d.y != here.y {
            candidates[1] = Some(if d.y < here.y { OutPort(3) } else { OutPort(4) });
        }
        if d.z != here.z {
            candidates[2] = Some(if d.z < here.z { OutPort(5) } else { OutPort(6) });
        }
        candidates
            .into_iter()
            .flatten()
            .find(|&port| self.port_up(port))
    }

    /// Number of installed (valid or not) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the dimension-ordered (XYZ) routing table of `node` for
    /// `mesh`: the out port toward each destination is the first axis on
    /// which the coordinates differ.
    pub fn for_mesh(mesh: &Mesh3d, node: NodeId) -> Self {
        let mut table = RoutingTable::new(node);
        let here = mesh.coord(node);
        for dst in mesh.nodes() {
            let port = if dst == node {
                LOCAL_PORT
            } else {
                let d = mesh.coord(dst);
                if d.x != here.x {
                    if d.x < here.x {
                        OutPort(1)
                    } else {
                        OutPort(2)
                    }
                } else if d.y != here.y {
                    if d.y < here.y {
                        OutPort(3)
                    } else {
                        OutPort(4)
                    }
                } else if d.z < here.z {
                    OutPort(5)
                } else {
                    OutPort(6)
                }
            };
            table.install(dst, port);
        }
        table
    }
}

/// Walks packets across mesh routing tables, returning the nodes visited
/// after `src` (including `dst`). Used by tests to prove table-driven
/// forwarding agrees with [`Mesh3d::route`].
pub fn forward_path(
    mesh: &Mesh3d,
    tables: &[RoutingTable],
    src: NodeId,
    dst: NodeId,
) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut cur = src;
    while cur != dst {
        let port = tables[cur.0 as usize]
            .lookup(dst)
            .expect("no route installed");
        assert_ne!(port, LOCAL_PORT, "premature local delivery");
        let here = mesh.coord(cur);
        let mut next = here;
        match port.0 {
            1 => next.x -= 1,
            2 => next.x += 1,
            3 => next.y -= 1,
            4 => next.y += 1,
            5 => next.z -= 1,
            6 => next.z += 1,
            p => panic!("bad port {p}"),
        }
        cur = mesh.node_at(next);
        path.push(cur);
    }
    path
}

/// As [`forward_path`], but detours around down links via
/// [`RoutingTable::lookup_with_fallback`]. Returns `None` when some hop
/// has no up productive port left (the down set partitions `src` from
/// `dst` along every minimal route) — never panics on a down link, and
/// never visits more hops than the fault-free minimal route.
pub fn forward_path_with_fallback(
    mesh: &Mesh3d,
    tables: &[RoutingTable],
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    let mut path = Vec::new();
    let mut cur = src;
    while cur != dst {
        let port = tables[cur.0 as usize].lookup_with_fallback(mesh, dst)?;
        assert_ne!(port, LOCAL_PORT, "premature local delivery");
        let here = mesh.coord(cur);
        let mut next = here;
        match port.0 {
            1 => next.x -= 1,
            2 => next.x += 1,
            3 => next.y -= 1,
            4 => next.y += 1,
            5 => next.z -= 1,
            6 => next.z += 1,
            p => panic!("bad port {p}"),
        }
        cur = mesh.node_at(next);
        path.push(cur);
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tables(mesh: &Mesh3d) -> Vec<RoutingTable> {
        mesh.nodes()
            .map(|n| RoutingTable::for_mesh(mesh, n))
            .collect()
    }

    #[test]
    fn table_forwarding_matches_dimension_order_route() {
        let mesh = Mesh3d::prototype();
        let tables = all_tables(&mesh);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                assert_eq!(forward_path(&mesh, &tables, a, b), mesh.route(a, b));
            }
        }
    }

    #[test]
    fn local_delivery_uses_local_port() {
        let mesh = Mesh3d::prototype();
        let t = RoutingTable::for_mesh(&mesh, NodeId(5));
        assert_eq!(t.lookup(NodeId(5)), Some(LOCAL_PORT));
    }

    #[test]
    fn down_link_fails_lookup() {
        let mesh = Mesh3d::prototype();
        let mut t = RoutingTable::for_mesh(&mesh, NodeId(0));
        let port = t.lookup(NodeId(1)).unwrap();
        t.set_link_status(port, false);
        assert_eq!(t.lookup(NodeId(1)), None);
        t.set_link_status(port, true);
        assert!(t.lookup(NodeId(1)).is_some());
    }

    #[test]
    fn invalidate_removes_route() {
        let mesh = Mesh3d::prototype();
        let mut t = RoutingTable::for_mesh(&mesh, NodeId(0));
        t.invalidate(NodeId(3));
        assert_eq!(t.lookup(NodeId(3)), None);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn fallback_detours_around_a_down_link() {
        let mesh = Mesh3d::prototype();
        let mut tables = all_tables(&mesh);
        // Node 0 -> node 3 differs in x and y; the primary XYZ route
        // leaves on +x. Kill that link: the fallback leaves on +y
        // instead and the path stays minimal.
        let primary = tables[0].lookup(NodeId(3)).unwrap();
        tables[0].set_link_status(primary, false);
        assert_eq!(tables[0].lookup(NodeId(3)), None);
        let path = forward_path_with_fallback(&mesh, &tables, NodeId(0), NodeId(3))
            .expect("a productive detour exists");
        assert_eq!(path.len() as u32, mesh.hops(NodeId(0), NodeId(3)));
        assert_eq!(*path.last().unwrap(), NodeId(3));
        assert_ne!(path[0], NodeId(1), "detour must avoid the down +x link");
    }

    #[test]
    fn fallback_reports_partition_when_every_productive_port_is_down() {
        let mesh = Mesh3d::prototype();
        let mut tables = all_tables(&mesh);
        // Node 0 -> node 1 differ on x only: downing that one link
        // leaves no productive alternative.
        let port = tables[0].lookup(NodeId(1)).unwrap();
        tables[0].set_link_status(port, false);
        assert_eq!(
            forward_path_with_fallback(&mesh, &tables, NodeId(0), NodeId(1)),
            None
        );
        // Unaffected pairs still route.
        assert!(forward_path_with_fallback(&mesh, &tables, NodeId(2), NodeId(3)).is_some());
    }

    #[test]
    fn larger_mesh_routes_terminate() {
        let mesh = Mesh3d::new(4, 4, 2);
        let tables = all_tables(&mesh);
        let path = forward_path(&mesh, &tables, NodeId(0), NodeId(31));
        assert_eq!(path.len() as u32, mesh.hops(NodeId(0), NodeId(31)));
    }
}
