//! Datalink layer: credit-based flow control and go-back-N replay.
//!
//! Paper §5.1.1: "The datalink is responsible for point-to-point reliable
//! transmission. We use credit-based flow control to prevent buffer
//! overflow at the receiver. Error detection with CRC on the receiver side
//! and a corresponding replay mechanism on the sender side guarantee packet
//! correctness."
//!
//! The sender ([`DatalinkTx`]) assigns link sequence numbers and keeps
//! unacknowledged packets in a replay buffer; the receiver ([`DatalinkRx`])
//! accepts only in-order, uncorrupted packets, acknowledging cumulatively
//! and NACKing on corruption or sequence gaps (go-back-N).

use std::collections::VecDeque;

use crate::packet::Packet;

/// Credit-based flow control for one direction of a link.
///
/// Credits represent free receive-buffer slots. The sender consumes one
/// credit per packet and stalls at zero; the receiver returns credits as it
/// drains its buffer. The invariant — in-flight packets never exceed the
/// receiver's buffer — is what the property tests in this module pin down.
///
/// # Example
///
/// ```
/// use venice_fabric::CreditCounter;
/// let mut c = CreditCounter::new(2);
/// assert!(c.try_consume());
/// assert!(c.try_consume());
/// assert!(!c.try_consume()); // stalled
/// c.grant(1);
/// assert!(c.try_consume());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditCounter {
    credits: u32,
    max: u32,
}

impl CreditCounter {
    /// Creates a counter with `max` credits, all initially available.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn new(max: u32) -> Self {
        assert!(max > 0, "credit pool must be non-empty");
        CreditCounter { credits: max, max }
    }

    /// Available credits.
    pub fn available(&self) -> u32 {
        self.credits
    }

    /// Pool size.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Consumes one credit if available; returns whether it succeeded.
    pub fn try_consume(&mut self) -> bool {
        if self.credits > 0 {
            self.credits -= 1;
            true
        } else {
            false
        }
    }

    /// Returns `n` credits to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the grant would exceed the pool size — that indicates a
    /// protocol bug (double-granting).
    pub fn grant(&mut self, n: u32) {
        assert!(
            self.credits + n <= self.max,
            "credit overflow: {} + {n} > {}",
            self.credits,
            self.max
        );
        self.credits += n;
    }

    /// Whether the sender is stalled.
    pub fn is_exhausted(&self) -> bool {
        self.credits == 0
    }
}

/// Sender-side reliable-delivery state: sequence numbering plus a replay
/// buffer (go-back-N).
#[derive(Debug)]
pub struct DatalinkTx {
    next_seq: u64,
    /// Sent but unacknowledged packets, oldest first.
    replay: VecDeque<Packet>,
    window: usize,
    retransmissions: u64,
}

impl DatalinkTx {
    /// Creates a sender with a replay window of `window` packets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "replay window must be non-empty");
        DatalinkTx {
            next_seq: 0,
            replay: VecDeque::new(),
            window,
            retransmissions: 0,
        }
    }

    /// Whether the replay window has room for another packet.
    pub fn can_send(&self) -> bool {
        self.replay.len() < self.window
    }

    /// Number of packets awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.replay.len()
    }

    /// Total retransmitted packets (for link statistics).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Stamps `packet` with the next link sequence number, stores a copy
    /// for replay, and returns the stamped packet for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the window is full; callers must check [`Self::can_send`]
    /// (upper layers stall on credits first, so this firing means a bug).
    pub fn send(&mut self, mut packet: Packet) -> Packet {
        assert!(self.can_send(), "replay window overflow");
        packet.seq = self.next_seq;
        self.next_seq += 1;
        self.replay.push_back(packet.clone());
        packet
    }

    /// Processes a cumulative acknowledgement: all packets with sequence
    /// `<= seq` are released from the replay buffer.
    pub fn on_ack(&mut self, seq: u64) {
        while matches!(self.replay.front(), Some(p) if p.seq <= seq) {
            self.replay.pop_front();
        }
    }

    /// Processes a NACK for `expected_seq`: every buffered packet with
    /// sequence `>= expected_seq` is retransmitted in order (go-back-N).
    /// Returns the packets to put back on the wire.
    pub fn on_nack(&mut self, expected_seq: u64) -> Vec<Packet> {
        // A NACK for seq n cumulatively acknowledges everything before n.
        if expected_seq > 0 {
            self.on_ack(expected_seq - 1);
        }
        let out: Vec<Packet> = self
            .replay
            .iter()
            .filter(|p| p.seq >= expected_seq)
            .cloned()
            .collect();
        self.retransmissions += out.len() as u64;
        out
    }
}

/// Receiver verdict for an arriving packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxVerdict {
    /// In-order, clean packet: deliver to the transport layer and send a
    /// cumulative ACK for `ack_seq`.
    Deliver {
        /// Sequence to acknowledge (the packet's own sequence).
        ack_seq: u64,
    },
    /// Corrupted or out-of-order packet: drop it and request replay from
    /// `expected_seq`.
    Nack {
        /// First missing sequence number.
        expected_seq: u64,
    },
    /// Duplicate of an already-delivered packet: drop, re-ACK so the
    /// sender can advance.
    Duplicate {
        /// Highest delivered sequence.
        ack_seq: u64,
    },
}

/// Receiver-side reliable-delivery state.
#[derive(Debug, Default)]
pub struct DatalinkRx {
    expected_seq: u64,
    crc_failures: u64,
    delivered: u64,
}

impl DatalinkRx {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next in-order sequence number.
    pub fn expected_seq(&self) -> u64 {
        self.expected_seq
    }

    /// Packets delivered up the stack.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// CRC failures observed.
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Classifies an arriving packet. `corrupted` is the outcome of the
    /// CRC check (modeled by [`crate::crc::ErrorInjector`]).
    pub fn receive(&mut self, packet: &Packet, corrupted: bool) -> RxVerdict {
        if corrupted {
            self.crc_failures += 1;
            return RxVerdict::Nack {
                expected_seq: self.expected_seq,
            };
        }
        if packet.seq == self.expected_seq {
            self.expected_seq += 1;
            self.delivered += 1;
            RxVerdict::Deliver {
                ack_seq: packet.seq,
            }
        } else if packet.seq < self.expected_seq {
            RxVerdict::Duplicate {
                ack_seq: self.expected_seq - 1,
            }
        } else {
            // Gap: an earlier packet was dropped; go-back-N.
            RxVerdict::Nack {
                expected_seq: self.expected_seq,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::topology::NodeId;

    fn pkt() -> Packet {
        Packet::new(NodeId(0), NodeId(1), PacketKind::QpairData, 0, 256)
    }

    #[test]
    fn credits_stall_and_resume() {
        let mut c = CreditCounter::new(3);
        assert_eq!(c.available(), 3);
        assert!(c.try_consume() && c.try_consume() && c.try_consume());
        assert!(c.is_exhausted());
        assert!(!c.try_consume());
        c.grant(2);
        assert_eq!(c.available(), 2);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn double_grant_is_a_bug() {
        let mut c = CreditCounter::new(2);
        c.grant(1);
    }

    #[test]
    fn tx_assigns_monotonic_seq() {
        let mut tx = DatalinkTx::new(16);
        for i in 0..5 {
            let p = tx.send(pkt());
            assert_eq!(p.seq, i);
        }
        assert_eq!(tx.in_flight(), 5);
    }

    #[test]
    fn cumulative_ack_releases_window() {
        let mut tx = DatalinkTx::new(8);
        for _ in 0..6 {
            tx.send(pkt());
        }
        tx.on_ack(3);
        assert_eq!(tx.in_flight(), 2);
        tx.on_ack(5);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn nack_replays_from_requested_seq() {
        let mut tx = DatalinkTx::new(8);
        for _ in 0..5 {
            tx.send(pkt());
        }
        let replayed = tx.on_nack(2);
        let seqs: Vec<u64> = replayed.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(tx.retransmissions(), 3);
        // NACK(2) cumulatively acked 0 and 1.
        assert_eq!(tx.in_flight(), 3);
    }

    #[test]
    fn rx_delivers_in_order() {
        let mut rx = DatalinkRx::new();
        let mut tx = DatalinkTx::new(8);
        for i in 0..4u64 {
            let p = tx.send(pkt());
            assert_eq!(rx.receive(&p, false), RxVerdict::Deliver { ack_seq: i });
        }
        assert_eq!(rx.delivered(), 4);
    }

    #[test]
    fn rx_nacks_corruption_then_accepts_replay() {
        let mut rx = DatalinkRx::new();
        let mut tx = DatalinkTx::new(8);
        let p0 = tx.send(pkt());
        let p1 = tx.send(pkt());
        assert_eq!(rx.receive(&p0, false), RxVerdict::Deliver { ack_seq: 0 });
        // p1 corrupted in flight.
        assert_eq!(rx.receive(&p1, true), RxVerdict::Nack { expected_seq: 1 });
        let replay = tx.on_nack(1);
        assert_eq!(replay.len(), 1);
        assert_eq!(
            rx.receive(&replay[0], false),
            RxVerdict::Deliver { ack_seq: 1 }
        );
    }

    #[test]
    fn rx_detects_gaps_and_duplicates() {
        let mut rx = DatalinkRx::new();
        let mut tx = DatalinkTx::new(8);
        let p0 = tx.send(pkt());
        let p1 = tx.send(pkt());
        // p0 lost; p1 arrives first -> gap.
        assert_eq!(rx.receive(&p1, false), RxVerdict::Nack { expected_seq: 0 });
        assert_eq!(rx.receive(&p0, false), RxVerdict::Deliver { ack_seq: 0 });
        // Late duplicate of p0.
        assert_eq!(rx.receive(&p0, false), RxVerdict::Duplicate { ack_seq: 0 });
    }

    #[test]
    fn full_window_blocks_send() {
        let mut tx = DatalinkTx::new(2);
        tx.send(pkt());
        tx.send(pkt());
        assert!(!tx.can_send());
        tx.on_ack(0);
        assert!(tx.can_send());
    }
}
