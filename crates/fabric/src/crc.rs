//! CRC-32 error detection and link-error injection.
//!
//! The Venice datalink guarantees packet correctness with "error detection
//! with Cyclic Redundancy Check (CRC) on the receiver side and a
//! corresponding replay mechanism on the sender side" (paper §5.1.1). We
//! implement the standard CRC-32 (IEEE 802.3, reflected polynomial
//! 0xEDB88320) and a Bernoulli bit-error channel model so the replay state
//! machine in [`crate::datalink`] can be exercised under injected faults.

use venice_sim::SimRng;

/// Table-driven CRC-32 (IEEE) engine.
///
/// # Example
///
/// ```
/// use venice_fabric::crc::Crc32;
/// let crc = Crc32::new();
/// // Standard check value for "123456789".
/// assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Clone)]
pub struct Crc32 {
    table: [u32; 256],
}

impl Crc32 {
    /// Builds the lookup table for the IEEE polynomial.
    pub fn new() -> Self {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        Crc32 { table }
    }

    /// CRC-32 of `data`.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = self.table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    /// Incremental update: feed more data into a running CRC state.
    ///
    /// Start with `state = 0xFFFF_FFFF`, call `update` per chunk, and
    /// finish with `state ^ 0xFFFF_FFFF`.
    pub fn update(&self, mut state: u32, data: &[u8]) -> u32 {
        for &b in data {
            state = self.table[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
        }
        state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Crc32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Crc32(ieee)")
    }
}

/// Bernoulli per-packet error injector modeling residual link errors.
///
/// Real links have a bit error rate; for packet-level simulation we
/// convert BER into a per-packet corruption probability
/// `1 - (1 - ber)^bits`.
#[derive(Debug, Clone)]
pub struct ErrorInjector {
    ber: f64,
}

impl ErrorInjector {
    /// Creates an injector with the given bit error rate.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not within `[0, 1]`.
    pub fn new(ber: f64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER must be in [0,1]");
        ErrorInjector { ber }
    }

    /// An injector that never corrupts (healthy data-center links).
    pub fn none() -> Self {
        ErrorInjector { ber: 0.0 }
    }

    /// Probability that a packet of `bytes` bytes arrives corrupted.
    pub fn packet_error_probability(&self, bytes: u64) -> f64 {
        if self.ber == 0.0 {
            return 0.0;
        }
        let bits = (bytes * 8) as f64;
        1.0 - (1.0 - self.ber).powf(bits)
    }

    /// Draws whether a packet of `bytes` bytes is corrupted in flight.
    pub fn corrupts(&self, rng: &mut SimRng, bytes: u64) -> bool {
        rng.chance(self.packet_error_probability(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        let crc = Crc32::new();
        assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc.checksum(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let crc = Crc32::new();
        let data = b"venice fabric datalink layer";
        let mut st = 0xFFFF_FFFFu32;
        st = crc.update(st, &data[..10]);
        st = crc.update(st, &data[10..]);
        assert_eq!(st ^ 0xFFFF_FFFF, crc.checksum(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let crc = Crc32::new();
        let mut data = *b"cacheline payload 64B xxxxxxxxx";
        let orig = crc.checksum(&data);
        data[5] ^= 0x01;
        assert_ne!(crc.checksum(&data), orig);
    }

    #[test]
    fn error_probability_scales_with_size() {
        let inj = ErrorInjector::new(1e-6);
        let small = inj.packet_error_probability(64);
        let large = inj.packet_error_probability(4096);
        assert!(small < large);
        assert!(small > 0.0 && large < 1.0);
    }

    #[test]
    fn zero_ber_never_corrupts() {
        let inj = ErrorInjector::none();
        let mut rng = SimRng::seed(1);
        assert!(!(0..1000).any(|_| inj.corrupts(&mut rng, 1500)));
    }

    #[test]
    fn high_ber_usually_corrupts_large_packets() {
        let inj = ErrorInjector::new(1e-3);
        let mut rng = SimRng::seed(2);
        let hits = (0..1000).filter(|_| inj.corrupts(&mut rng, 1500)).count();
        assert!(hits > 990, "hits={hits}");
    }

    #[test]
    #[should_panic]
    fn invalid_ber_rejected() {
        ErrorInjector::new(1.5);
    }
}
