#![warn(missing_docs)]

//! The Venice resource-sharing fabric (paper §5.1).
//!
//! This crate models the interconnect that Venice integrates directly on
//! chip: the physical layer ([`phy`]), the datalink layer with credit-based
//! flow control and CRC + replay ([`datalink`], [`crc`]), and the network
//! layer with an embedded low-radix switch, dimension-ordered routing over
//! a 3D mesh, and an optional external router hop ([`switch`], [`routing`],
//! [`topology`]).
//!
//! The models are deliberately *pure state machines*: they compute
//! latencies and accept/produce packets but do not own the event loop.
//! `venice-transport` and the `venice` core crate drive them from the
//! discrete-event kernel in `venice-sim`.
//!
//! # Example
//!
//! ```
//! use venice_fabric::{LinkParams, NodeId, topology::Mesh3d};
//!
//! // The paper's prototype: 8 nodes in a 2x2x2 mesh, 5 Gbps links,
//! // 1.4 us point-to-point latency.
//! let mesh = Mesh3d::new(2, 2, 2);
//! assert_eq!(mesh.len(), 8);
//! assert_eq!(mesh.hops(NodeId(0), NodeId(7)), 3);
//!
//! let link = LinkParams::venice_prototype();
//! // A 64-byte cacheline: propagation + serialization.
//! let t = link.one_way(64);
//! assert!(t > link.one_way(0));
//! ```

pub mod crc;
pub mod datalink;
pub mod netsim;
pub mod packet;
pub mod paths;
pub mod phy;
pub mod routing;
pub mod switch;
pub mod topology;

pub use datalink::{CreditCounter, DatalinkRx, DatalinkTx, RxVerdict};
pub use packet::{Packet, PacketKind, Priority};
pub use paths::{LinkId, PathTable};
pub use phy::{Integration, LinkParams};
pub use routing::RoutingTable;
pub use switch::{RouterParams, SwitchParams};
pub use topology::{Mesh3d, NodeId, Topology};
