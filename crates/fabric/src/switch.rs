//! Switch models: the embedded low-radix on-chip switch and the external
//! router.
//!
//! §5.1.1: "A main design decision was to make the fabric capable of
//! operating in a 'switchless' mode for direct chip-to-chip communication
//! ... We believe the on-chip switch will be of low dimension" — the
//! prototype uses "a custom radix-7 switch" (§7.3). §4.2.2 measures the
//! cost of inserting one external router between two nodes: >20 % slowdown
//! for CRMA configurations.

use serde::{Deserialize, Serialize};
use venice_sim::Time;

/// Parameters of the embedded on-chip switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchParams {
    /// Number of ports (the prototype's is radix 7: 6 mesh links + the
    /// local injection/ejection port).
    pub radix: u8,
    /// Fall-through latency of one transit (arbitration + crossbar).
    pub transit_latency: Time,
}

impl SwitchParams {
    /// The prototype's radix-7 embedded switch, synthesizable at 1 GHz
    /// (§7.3); we model a handful of pipeline stages per transit.
    pub fn venice_prototype() -> Self {
        SwitchParams {
            radix: 7,
            transit_latency: Time::from_ns(5),
        }
    }
}

/// Parameters of an external (top-of-rack-style) router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Router transit latency: buffering, table lookup, arbitration across
    /// a much larger crossbar, plus the extra optical/electrical
    /// conversions at its ports.
    pub transit_latency: Time,
}

impl RouterParams {
    /// A one-level external router as in §4.2.2's experiment. Calibrated
    /// against Fig 6: inserting the router on the same cable adds its
    /// buffering/arbitration transit plus a store-and-forward
    /// re-serialization, raising on-chip CRMA round trips by ~20 %.
    pub fn one_level() -> Self {
        RouterParams {
            transit_latency: Time::from_ns(600),
        }
    }
}

/// Round-robin arbiter over `n` requesters, as used at each switch output
/// port. Pure state machine; the winner of each grant round rotates.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    last_grant: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter {
            n,
            last_grant: n - 1,
        }
    }

    /// Grants one of the asserted requests (`true` entries), starting the
    /// search after the previous winner. Returns the granted index, or
    /// `None` if no request is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for off in 1..=self.n {
            let idx = (self.last_grant + off) % self.n;
            if requests[idx] {
                self.last_grant = idx;
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_switch_is_radix_seven() {
        let s = SwitchParams::venice_prototype();
        assert_eq!(s.radix, 7);
        assert!(s.transit_latency > Time::ZERO);
    }

    #[test]
    fn router_transit_dwarfs_switch_transit() {
        let s = SwitchParams::venice_prototype();
        let r = RouterParams::one_level();
        assert!(r.transit_latency > s.transit_latency * 10);
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let mut a = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        let grants: Vec<usize> = (0..6).map(|_| a.grant(&all).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_idle_requesters() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(&[false, true, false, true]), Some(1));
        assert_eq!(a.grant(&[false, true, false, true]), Some(3));
        assert_eq!(a.grant(&[false, true, false, true]), Some(1));
        assert_eq!(a.grant(&[false, false, false, false]), None);
    }

    #[test]
    fn starved_requester_eventually_wins() {
        let mut a = RoundRobinArbiter::new(2);
        // Requester 0 always wants; requester 1 joins later.
        assert_eq!(a.grant(&[true, false]), Some(0));
        assert_eq!(a.grant(&[true, true]), Some(1));
        assert_eq!(a.grant(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_is_a_bug() {
        RoundRobinArbiter::new(2).grant(&[true]);
    }
}
