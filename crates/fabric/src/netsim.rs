//! Packet-level network simulation on the DES kernel.
//!
//! The analytic [`crate::phy`]/[`crate::switch`] models cover unloaded
//! latencies; this module simulates actual packet flows through the mesh
//! — per-link FIFO occupancy, store-and-forward hops, and contention
//! where flows cross paths. The paper defers "the effects of sharing
//! multiple resources that may cross paths with one another" to future
//! work; this simulator is the vehicle for exactly that study (see the
//! contention ablation in the `venice` crate).
//!
//! # Example
//!
//! ```
//! use venice_fabric::netsim::{FlowSpec, NetworkSim};
//! use venice_fabric::{Mesh3d, NodeId};
//!
//! let mesh = Mesh3d::prototype();
//! let sim = NetworkSim::new(mesh)
//!     .flow(FlowSpec::new(NodeId(0), NodeId(1), 256, 100))
//!     .run();
//! assert_eq!(sim.delivered(0), 100);
//! ```

use std::collections::HashMap;

use venice_sim::{Kernel, Scheduler, Time, TokenBucket};

use crate::phy::LinkParams;
use crate::switch::SwitchParams;
use crate::topology::{Mesh3d, NodeId};

/// One unidirectional traffic flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes per packet (a 16-byte header is added on the wire).
    pub payload_bytes: u64,
    /// Number of packets to send.
    pub packets: u64,
    /// Inter-injection gap at the source (zero = saturate).
    pub inject_gap: Time,
    /// Injection start offset.
    pub start: Time,
    /// Optional flow-based QoS rate cap in Gbps (§5.1.1's "flow-based
    /// QoS" feature): injections are shaped by a token bucket.
    pub rate_cap_gbps: Option<f64>,
}

impl FlowSpec {
    /// A saturating flow of `packets` packets of `payload_bytes` each.
    pub fn new(src: NodeId, dst: NodeId, payload_bytes: u64, packets: u64) -> Self {
        FlowSpec {
            src,
            dst,
            payload_bytes,
            packets,
            inject_gap: Time::ZERO,
            start: Time::ZERO,
            rate_cap_gbps: None,
        }
    }

    /// Sets a fixed injection gap (paced flow).
    pub fn paced(mut self, gap: Time) -> Self {
        self.inject_gap = gap;
        self
    }

    /// Applies a flow-based QoS rate cap (token-bucket shaped at the
    /// injection port).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    pub fn rate_capped(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "rate cap must be positive");
        self.rate_cap_gbps = Some(gbps);
        self
    }

    fn wire_bytes(&self) -> u64 {
        self.payload_bytes + 16
    }
}

/// Per-flow results.
#[derive(Debug, Clone, Default)]
struct FlowStats {
    delivered: u64,
    first_delivery: Time,
    last_delivery: Time,
    total_latency: Time,
}

#[derive(Debug)]
struct NetState {
    /// Busy-until time of each directed link (a, b).
    link_busy: HashMap<(u16, u16), Time>,
    stats: Vec<FlowStats>,
}

/// A packet-level simulator over a 3D mesh with dimension-ordered
/// routing and per-link serialization occupancy.
pub struct NetworkSim {
    mesh: Mesh3d,
    link: LinkParams,
    switch: SwitchParams,
    flows: Vec<FlowSpec>,
}

/// Completed simulation results.
#[derive(Debug)]
pub struct NetworkRun {
    flows: Vec<FlowSpec>,
    stats: Vec<FlowStats>,
    end: Time,
}

impl NetworkSim {
    /// Creates a simulator over `mesh` with prototype link/switch
    /// parameters.
    pub fn new(mesh: Mesh3d) -> Self {
        NetworkSim {
            mesh,
            link: LinkParams::venice_prototype(),
            switch: SwitchParams::venice_prototype(),
            flows: Vec::new(),
        }
    }

    /// Overrides the link parameters.
    pub fn with_link(mut self, link: LinkParams) -> Self {
        self.link = link;
        self
    }

    /// Adds a flow.
    pub fn flow(mut self, spec: FlowSpec) -> Self {
        self.flows.push(spec);
        self
    }

    /// Runs to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if any flow's endpoints are outside the mesh, or if the
    /// simulation exceeds its event budget (indicates livelock).
    pub fn run(self) -> NetworkRun {
        let NetworkSim {
            mesh,
            link,
            switch,
            flows,
        } = self;
        for f in &flows {
            assert!((f.src.0 as usize) < mesh.len(), "flow src out of range");
            assert!((f.dst.0 as usize) < mesh.len(), "flow dst out of range");
            assert!(f.src != f.dst, "flow endpoints must differ");
        }
        let state = NetState {
            link_busy: HashMap::new(),
            stats: vec![FlowStats::default(); flows.len()],
        };
        let mut kernel = Kernel::new(state).with_event_limit(50_000_000);
        let mesh = std::rc::Rc::new(mesh);
        let link = std::rc::Rc::new(link);
        for (fid, f) in flows.iter().enumerate() {
            let route: Vec<NodeId> = std::iter::once(f.src)
                .chain(mesh.route(f.src, f.dst))
                .collect();
            let mut shaper = f
                .rate_cap_gbps
                .map(|gbps| TokenBucket::new(gbps, f.wire_bytes().max(1)));
            for pkt in 0..f.packets {
                let mut at = f.start + f.inject_gap * pkt;
                if let Some(tb) = shaper.as_mut() {
                    at = tb.reserve(at, f.wire_bytes());
                }
                let route = route.clone();
                let link = std::rc::Rc::clone(&link);
                let wire = f.wire_bytes();
                let switch_transit = switch.transit_latency;
                kernel.schedule(at, move |st: &mut NetState, s| {
                    forward(st, s, fid, route, 0, wire, &link, switch_transit, s.now());
                });
            }
        }
        let end = kernel.run();
        let stats = kernel.into_state().stats;
        NetworkRun { flows, stats, end }
    }
}

/// Advances one packet from `route[hop]` to `route[hop+1]`, modeling the
/// link as a serialization resource (FIFO occupancy) plus propagation.
#[allow(clippy::too_many_arguments)]
fn forward(
    st: &mut NetState,
    s: &mut Scheduler<NetState>,
    fid: usize,
    route: Vec<NodeId>,
    hop: usize,
    wire: u64,
    link: &std::rc::Rc<LinkParams>,
    switch_transit: Time,
    injected_at: Time,
) {
    if hop + 1 >= route.len() {
        // Delivered.
        let stats = &mut st.stats[fid];
        let now = s.now();
        if stats.delivered == 0 {
            stats.first_delivery = now;
        }
        stats.delivered += 1;
        stats.last_delivery = now;
        stats.total_latency += now.saturating_sub(injected_at);
        return;
    }
    let (a, b) = (route[hop].0, route[hop + 1].0);
    let now = s.now();
    let busy = st.link_busy.get(&(a, b)).copied().unwrap_or(Time::ZERO);
    let start = busy.max(now);
    let ser = link.serialize(wire);
    st.link_busy.insert((a, b), start + ser);
    // Arrival: queueing (start - now) + serialization + PHY/cable flight
    // (+ a switch transit at intermediate hops).
    let flight = link.phy_latency * 2 + link.cable_delay;
    let extra = if hop > 0 { switch_transit } else { Time::ZERO };
    let arrive_in = (start - now) + ser + flight + extra;
    let link = std::rc::Rc::clone(link);
    s.schedule_in(arrive_in, move |st: &mut NetState, s| {
        forward(
            st,
            s,
            fid,
            route,
            hop + 1,
            wire,
            &link,
            switch_transit,
            injected_at,
        );
    });
}

impl NetworkRun {
    /// Packets delivered for flow `fid`.
    pub fn delivered(&self, fid: usize) -> u64 {
        self.stats[fid].delivered
    }

    /// Mean end-to-end packet latency for flow `fid`.
    pub fn mean_latency(&self, fid: usize) -> Time {
        let s = &self.stats[fid];
        if s.delivered == 0 {
            Time::ZERO
        } else {
            s.total_latency / s.delivered
        }
    }

    /// Achieved goodput for flow `fid` in Gbps (payload bits over the
    /// flow's delivery window).
    pub fn goodput_gbps(&self, fid: usize) -> f64 {
        let s = &self.stats[fid];
        let f = &self.flows[fid];
        if s.delivered < 2 {
            return 0.0;
        }
        let window = s.last_delivery.saturating_sub(f.start);
        if window == Time::ZERO {
            return 0.0;
        }
        (s.delivered * f.payload_bytes * 8) as f64 / window.as_secs_f64() / 1e9
    }

    /// Simulation end time.
    pub fn end_time(&self) -> Time {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_matches_analytic_model() {
        let mesh = Mesh3d::prototype();
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 64, 1))
            .run();
        let link = LinkParams::venice_prototype();
        assert_eq!(run.mean_latency(0), link.one_way(64 + 16));
    }

    #[test]
    fn multi_hop_adds_transits() {
        let mesh = Mesh3d::prototype();
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(7), 64, 1))
            .run();
        let link = LinkParams::venice_prototype();
        let expect = link.one_way(80)
            + (link.serialize(80)
                + link.phy_latency * 2
                + link.cable_delay
                + SwitchParams::venice_prototype().transit_latency)
                * 2;
        assert_eq!(run.mean_latency(0), expect);
    }

    #[test]
    fn saturating_flow_approaches_link_rate() {
        let mesh = Mesh3d::prototype();
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 500))
            .run();
        let g = run.goodput_gbps(0);
        // 4096/4112 of 5 Gbps ≈ 4.98; allow a whisker for the first-packet
        // flight time inside the window.
        assert!(g > 4.7, "goodput = {g}");
    }

    #[test]
    fn crossing_flows_share_a_link_fairly() {
        // Under dimension-ordered (XYZ) routing, flows 0->1 and 0->3
        // (route 0->1->3) share the 0->1 link. Each is injected at line
        // rate, so the shared link is 2x oversubscribed.
        let mesh = Mesh3d::prototype();
        let line_gap = LinkParams::venice_prototype().serialize(4096 + 16);
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 400).paced(line_gap))
            .flow(FlowSpec::new(NodeId(0), NodeId(3), 4096, 400).paced(line_gap))
            .run();
        let g0 = run.goodput_gbps(0);
        let g1 = run.goodput_gbps(1);
        // Each gets roughly half the 5 Gbps link.
        assert!((2.0..3.0).contains(&g0), "g0 = {g0}");
        assert!((2.0..3.0).contains(&g1), "g1 = {g1}");
        assert!((g0 - g1).abs() < 0.5, "unfair: {g0} vs {g1}");
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let mesh = Mesh3d::prototype();
        let solo = NetworkSim::new(mesh.clone())
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 300))
            .run();
        let pair = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 300))
            .flow(FlowSpec::new(NodeId(6), NodeId(7), 4096, 300))
            .run();
        let a = solo.goodput_gbps(0);
        let b = pair.goodput_gbps(0);
        assert!((a - b).abs() / a < 0.02, "{a} vs {b}");
        assert!((pair.goodput_gbps(1) - a).abs() / a < 0.02);
    }

    #[test]
    fn paced_flow_sees_no_queueing() {
        let mesh = Mesh3d::prototype();
        let gap = Time::from_us(10); // far below line rate
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 256, 50).paced(gap))
            .run();
        let link = LinkParams::venice_prototype();
        assert_eq!(run.mean_latency(0), link.one_way(256 + 16));
    }

    #[test]
    fn contention_inflates_latency() {
        let mesh = Mesh3d::prototype();
        let line_gap = LinkParams::venice_prototype().serialize(4096 + 16);
        let solo = NetworkSim::new(mesh.clone())
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 200).paced(line_gap))
            .run();
        let contended = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 200).paced(line_gap))
            .flow(FlowSpec::new(NodeId(0), NodeId(3), 4096, 200).paced(line_gap))
            .run();
        assert!(
            contended.mean_latency(0) > solo.mean_latency(0) * 3 / 2,
            "contended {} vs solo {}",
            contended.mean_latency(0),
            solo.mean_latency(0)
        );
    }

    #[test]
    fn qos_cap_limits_goodput() {
        let mesh = Mesh3d::prototype();
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 300).rate_capped(1.0))
            .run();
        let g = run.goodput_gbps(0);
        assert!((0.85..1.05).contains(&g), "goodput = {g}");
    }

    #[test]
    fn qos_protects_capped_flow_from_greedy_neighbor() {
        // A capped flow and a saturating flow share link 0->1; the
        // capped flow still gets close to its allocation and the greedy
        // flow takes the rest.
        let mesh = Mesh3d::prototype();
        let line_gap = LinkParams::venice_prototype().serialize(4096 + 16);
        let run = NetworkSim::new(mesh)
            .flow(FlowSpec::new(NodeId(0), NodeId(3), 4096, 200).rate_capped(1.5))
            .flow(FlowSpec::new(NodeId(0), NodeId(1), 4096, 600).paced(line_gap))
            .run();
        let capped = run.goodput_gbps(0);
        let greedy = run.goodput_gbps(1);
        assert!((1.1..1.7).contains(&capped), "capped = {capped}");
        assert!(greedy > 2.5, "greedy = {greedy}");
        assert!(capped + greedy < 5.3, "over link rate");
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_flow_rejected() {
        let _ = NetworkSim::new(Mesh3d::prototype())
            .flow(FlowSpec::new(NodeId(2), NodeId(2), 64, 1))
            .run();
    }
}
