//! Property tests for fabric invariants: routing, flow control, and
//! reliable delivery.

use proptest::prelude::*;
use venice_fabric::datalink::{CreditCounter, DatalinkRx, DatalinkTx, RxVerdict};
use venice_fabric::routing::{forward_path, RoutingTable};
use venice_fabric::topology::{Mesh3d, NodeId};
use venice_fabric::{crc::Crc32, Packet, PacketKind};

proptest! {
    /// Dimension-ordered routing always reaches the destination in
    /// exactly the Manhattan hop count, for arbitrary mesh shapes.
    #[test]
    fn dimension_ordered_routing_is_minimal(
        dx in 1u16..5, dy in 1u16..5, dz in 1u16..4,
        a in 0u16..100, b in 0u16..100,
    ) {
        let mesh = Mesh3d::new(dx, dy, dz);
        let n = mesh.len() as u16;
        let a = NodeId(a % n);
        let b = NodeId(b % n);
        let tables: Vec<RoutingTable> =
            mesh.nodes().map(|v| RoutingTable::for_mesh(&mesh, v)).collect();
        let path = forward_path(&mesh, &tables, a, b);
        prop_assert_eq!(path.len() as u32, mesh.hops(a, b));
        if a != b {
            prop_assert_eq!(*path.last().unwrap(), b);
        }
        // Every step is a mesh neighbor of its predecessor.
        let mut prev = a;
        for &step in &path {
            prop_assert_eq!(mesh.hops(prev, step), 1);
            prev = step;
        }
    }

    /// Credits never go negative and never exceed the pool under any
    /// consume/grant interleaving that respects the protocol.
    #[test]
    fn credits_stay_in_bounds(max in 1u32..64, ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut c = CreditCounter::new(max);
        let mut outstanding = 0u32;
        for op in ops {
            if op {
                if c.try_consume() {
                    outstanding += 1;
                }
            } else if outstanding > 0 {
                c.grant(1);
                outstanding -= 1;
            }
            prop_assert!(c.available() <= max);
            prop_assert_eq!(c.available() + outstanding, max);
        }
    }

    /// Go-back-N delivers every packet exactly once, in order, under an
    /// arbitrary corruption pattern.
    #[test]
    fn go_back_n_exactly_once_in_order(corrupt in prop::collection::vec(any::<bool>(), 1..120)) {
        let total = 40u64;
        let mut tx = DatalinkTx::new(8);
        let mut rx = DatalinkRx::new();
        let mut wire: Vec<Packet> = Vec::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut next = 0u64;
        let mut corrupt_iter = corrupt.into_iter();
        let mut guard = 0;
        while (delivered.len() as u64) < total {
            guard += 1;
            prop_assert!(guard < 10_000, "protocol diverged");
            while tx.can_send() && next < total {
                let p = Packet::new(NodeId(0), NodeId(1), PacketKind::RdmaData, next as u32, 64);
                wire.push(tx.send(p));
                next += 1;
            }
            prop_assert!(!wire.is_empty());
            let p = wire.remove(0);
            let bad = corrupt_iter.next().unwrap_or(false);
            match rx.receive(&p, bad) {
                RxVerdict::Deliver { ack_seq } => {
                    delivered.push(p.flow);
                    tx.on_ack(ack_seq);
                }
                RxVerdict::Nack { expected_seq } => {
                    wire.retain(|w| w.seq < expected_seq);
                    wire.extend(tx.on_nack(expected_seq));
                }
                RxVerdict::Duplicate { ack_seq } => tx.on_ack(ack_seq),
            }
        }
        let expect: Vec<u32> = (0..total as u32).collect();
        prop_assert_eq!(delivered, expect);
    }

    /// CRC-32 detects any single bit flip (guaranteed by construction;
    /// checked over random payloads and positions).
    #[test]
    fn crc_detects_single_bit_flips(
        data in prop::collection::vec(any::<u8>(), 1..512),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let crc = Crc32::new();
        let reference = crc.checksum(&data);
        let mut corrupted = data.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(crc.checksum(&corrupted), reference);
    }

    /// Packet wire size is header + payload and priority is stable.
    #[test]
    fn packet_wire_accounting(payload in 0u64..65_536) {
        for kind in [
            PacketKind::CrmaReadReq,
            PacketKind::CrmaReadResp,
            PacketKind::RdmaData,
            PacketKind::QpairData,
            PacketKind::LinkAck,
        ] {
            let p = Packet::new(NodeId(0), NodeId(1), kind, 0, payload);
            prop_assert_eq!(p.wire_bytes(), kind.header_bytes() + payload);
            prop_assert_eq!(p.priority(), p.clone().priority());
        }
    }
}
