#![warn(missing_docs)]

//! # venice-loadgen: deterministic traffic generation for the Venice cluster
//!
//! The paper evaluates Venice with one-shot workload runs on an 8-node
//! prototype. This crate adds the layer a production-scale study needs:
//! a discrete-event **traffic engine** that drives a [`venice::cluster::Cluster`]
//! with sustained, multi-tenant load and reports tail latency per tenant.
//!
//! The pieces compose as follows:
//!
//! * [`arrival`] — open-loop Poisson and closed-loop think-time arrival
//!   processes, seeded through [`venice_sim::SimRng`] so identical seeds
//!   replay identical traces bit for bit;
//! * [`tenants`] — [`tenants::TenantMix`]: weighted tenant classes wrapping
//!   the calibrated `venice-workloads` request models (KV cache, OLTP,
//!   PageRank, iperf) over a Zipf-skewed population of millions of
//!   simulated users;
//! * [`admission`] — token-bucket rate policing plus in-flight caps, with
//!   QPair credit exhaustion acting as per-node transport backpressure;
//! * [`engine`] — the event loop on [`venice_sim::Kernel`]: requests
//!   transit a QPair from the edge gateway, queue on per-node service
//!   slots, and record completion latency into
//!   [`venice_sim::LogHistogram`]s (p50/p95/p99/p99.9 per tenant).
//!   Cluster setup borrows remote memory through the Monitor Node under
//!   contention and measures real CRMA read latency for the remote tier;
//! * [`sweep`] — a rayon-parallel grid runner over (mesh size, tenant mix,
//!   arrival rate) whose output is deterministic at any thread count;
//! * [`scenarios`] — the `loadgen` figure family layered beyond the
//!   paper's figures, consumed by the `figures` binary.
//!
//! # Example
//!
//! ```
//! use venice_loadgen::{engine, tenants::TenantMix, LoadgenConfig};
//!
//! let config = LoadgenConfig {
//!     requests: 2_000,
//!     ..LoadgenConfig::new(42, TenantMix::web_frontend())
//! };
//! let a = engine::run(&config);
//! let b = engine::run(&config);
//! assert_eq!(a, b); // same seed, same traffic, same tails
//! assert!(a.completed > 0);
//! ```

pub mod admission;
pub mod arrival;
pub mod engine;
pub mod report;
pub mod scenarios;
pub mod sweep;
pub mod tenants;

pub use admission::AdmissionConfig;
pub use arrival::ArrivalProcess;
pub use engine::LoadgenConfig;
pub use report::{LoadReport, TenantReport};
pub use sweep::{SweepPoint, SweepSpec};
pub use tenants::{RequestProfile, TenantClass, TenantMix};
