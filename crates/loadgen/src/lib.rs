#![warn(missing_docs)]

//! # venice-loadgen: deterministic traffic generation for the Venice cluster
//!
//! The paper evaluates Venice with one-shot workload runs on an 8-node
//! prototype. This crate adds the layer a production-scale study needs:
//! a discrete-event **traffic engine** that drives a [`venice::cluster::Cluster`]
//! with sustained, multi-tenant load and reports tail latency per tenant.
//!
//! The pieces compose as follows:
//!
//! * [`arrival`] — open-loop Poisson and closed-loop think-time arrival
//!   processes, seeded through [`venice_sim::SimRng`] so identical seeds
//!   replay identical traces bit for bit;
//! * [`tenants`] — [`tenants::TenantMix`]: weighted tenant classes wrapping
//!   the calibrated `venice-workloads` request models (KV cache, OLTP,
//!   PageRank, iperf) over a Zipf-skewed population of millions of
//!   simulated users;
//! * [`admission`] — **per-node** token-bucket policing plus
//!   priority-scaled in-flight caps (low-priority tenants shed first
//!   under contention), with QPair credit exhaustion acting as per-node
//!   transport backpressure;
//! * [`stacks`] — the remote-memory stacks a run can mount: Venice CRMA
//!   or the `venice-baselines` comparison systems (soNUMA-style
//!   messaging, swap-to-remote) under identical traffic;
//! * [`engine`] — the event loop on [`venice_sim::Kernel`]: requests
//!   transit a QPair from the edge gateway, queue on per-node service
//!   slots, and record completion latency into
//!   [`venice_sim::LogHistogram`]s (p50/p95/p99/p99.9 per tenant).
//!   The remote tier provisions either statically at setup or
//!   **elastically** through a [`venice_lease::LeaseManager`] that
//!   borrows and releases capacity mid-run as queue depth crosses its
//!   watermarks; routing is locality-aware (requests follow their
//!   tenant's lease). Every way of running the engine goes through one
//!   builder, [`engine::Run`]: `.traced()` exports per-request
//!   [`trace::Trace`] records, `.replay(&trace)` re-drives one,
//!   `.probe(p)` threads telemetry hooks through the run;
//! * [`remote`] — how remote transfers are priced: the measured
//!   per-node scalar (the frozen default) or [`remote::CongestedFabric`],
//!   which routes each request's bytes over compiled mesh paths with
//!   finite per-direction bandwidth so CRMA latency tracks live
//!   congestion and lease *placement* matters;
//! * [`sweep`] — a rayon-parallel grid runner over (mesh size, tenant mix,
//!   arrival rate, remote stack) whose output is deterministic at any
//!   thread count;
//! * [`faults`] — deterministic fault injection: [`faults::NoFaults`]
//!   compiles every chaos hook away (the frozen baseline), while a
//!   [`faults::FaultPlan`] armed through `Run::faults` injects a
//!   replayable schedule of node crashes, link flaps, and packet loss;
//!   leases on a dead donor fail over, in-flight requests on a crashed
//!   node shed with their own reason slot, and sessions re-route to
//!   survivors;
//! * [`scenarios`] / [`elastic`] — the `loadgen` and `loadgen-elastic`
//!   figure families layered beyond the paper's figures, consumed by the
//!   `figures` binary. [`failover`] adds the `loadgen-failover-8n`
//!   family: flash crowd plus a mid-run node crash, elastic-with-failover
//!   vs static.
//!
//! # Example
//!
//! ```
//! use venice_loadgen::{engine::Run, tenants::TenantMix, LoadgenConfig};
//!
//! let config = LoadgenConfig {
//!     requests: 2_000,
//!     ..LoadgenConfig::new(42, TenantMix::web_frontend())
//! };
//! let a = Run::new(&config).execute().report;
//! let b = Run::new(&config).execute().report;
//! assert_eq!(a, b); // same seed, same traffic, same tails
//! assert!(a.completed > 0);
//! ```

pub mod admission;
pub mod arrival;
pub mod congestion;
pub mod economy;
pub mod elastic;
pub mod elastic_v2;
pub mod engine;
pub mod failover;
pub mod faults;
pub mod legacy;
pub mod remote;
pub mod report;
pub mod scenarios;
mod sharded;
pub mod stacks;
pub mod sweep;
pub mod telemetry;
pub mod tenants;
pub mod trace;

pub use admission::AdmissionConfig;
pub use arrival::ArrivalProcess;
pub use engine::{EngineMetrics, LoadgenConfig, Run, RunOutput};
pub use faults::{FaultEvent, FaultModel, FaultPlan, NoFaults};
pub use remote::{FabricParams, PlacementPolicy, RemoteModelCfg};
pub use report::{LeaseSummary, LoadReport, TenantReport};
pub use stacks::RemoteStack;
pub use sweep::{SweepPoint, SweepSpec};
pub use tenants::{RequestProfile, TenantClass, TenantMix};
pub use trace::{RequestOutcome, RequestRecord, Trace};

pub use venice_lease::{LeaseConfig, Priority};

/// The canonical node identifier, shared by every layer: defined once
/// in `venice_fabric::topology`, re-exported by the `venice` core
/// crate, and re-exported here so loadgen callers never reach into a
/// lower crate for it. `venice_loadgen::NodeId`, `venice::NodeId`, and
/// `venice_fabric::NodeId` are the same type.
pub use venice::NodeId;
