//! Deterministic fault injection: the chaos analog of
//! [`crate::remote::RemoteModel`].
//!
//! The engine is generic over a [`FaultModel`] exactly like it is over
//! [`venice_telemetry::Probe`] and [`RemoteModel`]: [`NoFaults`] has
//! `ENABLED = false` and empty hook bodies, so every fault guard
//! monomorphizes away and the default entry points stay
//! instruction-for-instruction identical to the pre-chaos engine — the
//! frozen baseline holds by construction, which the `no_faults_identity`
//! property test pins down. [`FaultPlan`] arms the chaos path: an
//! explicit, validated schedule of [`FaultEvent`]s compiled into a
//! sorted timeline of atomic [`FaultTransition`]s that the engine
//! drains through its `FaultTick` event. The plan carries no RNG of its
//! own — a plan is plain data, so the same plan against the same seed
//! replays the same run bit for bit, and property tests can *generate*
//! plans from a proptest seed and still get deterministic replay.
//!
//! [`RemoteModel`]: crate::remote::RemoteModel

use venice_sim::Time;

/// One injected fault, as the experimenter writes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// `node` fail-stops at `at` and reboots empty at `recover_at`:
    /// its backlog and in-service requests are shed, its leases fail
    /// over, and routing steers around it for the whole outage.
    NodeCrash {
        /// The node that fail-stops.
        node: u16,
        /// Crash instant.
        at: Time,
        /// Reboot instant (must be after `at`).
        recover_at: Time,
    },
    /// The `a`↔`b` cable drops at `at` and carries nothing for
    /// `duration`: the congested fabric recompiles paths around it
    /// (both directions) and restores the original routes when it
    /// comes back.
    LinkFlap {
        /// One cable endpoint.
        a: u16,
        /// The other endpoint (must be a mesh neighbor of `a`).
        b: u16,
        /// Flap instant.
        at: Time,
        /// Outage length (must be positive).
        duration: Time,
    },
    /// From `at` on, the `a`↔`b` cable drops `per_mille`/1000 of its
    /// frames in each direction: the congested fabric charges go-back-N
    /// retransmit serialization for every byte crossing it. A later
    /// `PacketLoss` on the same cable replaces the rate; rate 0 heals
    /// the link.
    PacketLoss {
        /// One cable endpoint.
        a: u16,
        /// The other endpoint (must be a mesh neighbor of `a`).
        b: u16,
        /// Onset instant.
        at: Time,
        /// Loss rate in per-mille (0..=1000).
        per_mille: u16,
    },
}

/// One atomic state change compiled from a [`FaultEvent`] — what the
/// engine's `FaultTick` actually applies. A `NodeCrash` compiles to a
/// `NodeDown`/`NodeUp` pair, a `LinkFlap` to `LinkDown`/`LinkUp`, a
/// `PacketLoss` to a single `Loss` edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTransition {
    /// `node` fail-stops now.
    NodeDown(u16),
    /// `node` reboots (empty) now.
    NodeUp(u16),
    /// The `a`↔`b` cable goes dark (both directions).
    LinkDown(u16, u16),
    /// The `a`↔`b` cable comes back.
    LinkUp(u16, u16),
    /// The `a`↔`b` cable starts dropping `per_mille`/1000 of frames.
    Loss(u16, u16, u16),
}

impl FaultTransition {
    /// The instant-ordering tiebreak rank: at one instant, recoveries
    /// land before failures so a zero-gap recover/re-crash of the same
    /// node nets to "down", and link healing precedes link cutting for
    /// the same reason.
    fn rank(self) -> u8 {
        match self {
            FaultTransition::NodeUp(_) | FaultTransition::LinkUp(..) => 0,
            FaultTransition::Loss(..) => 1,
            FaultTransition::NodeDown(_) | FaultTransition::LinkDown(..) => 2,
        }
    }
}

/// Engine hook surface for fault injection, mirroring
/// [`crate::remote::RemoteModel`]: `ENABLED = false` compiles every
/// guard away; the enabled implementation is a drained transition
/// timeline plus live node-liveness state.
pub trait FaultModel {
    /// Whether faults participate at all. `false` removes every hook
    /// site at monomorphization time.
    const ENABLED: bool;

    /// Sizes liveness state and validates node ids against the mesh.
    /// Called once at engine setup, before any event fires.
    fn init(&mut self, nodes: u16) {
        let _ = nodes;
    }

    /// Whether `node` is currently serving (routing, admission, and
    /// donor placement all consult this).
    fn node_up(&self, node: u16) -> bool {
        let _ = node;
        true
    }

    /// The instant of the next unapplied transition, if any — where the
    /// engine schedules its next `FaultTick`.
    fn next_at(&self) -> Option<Time> {
        None
    }

    /// Pops the next transition due at or before `now`, updating the
    /// model's liveness state; `None` once everything due has been
    /// drained.
    fn pop_due(&mut self, now: Time) -> Option<FaultTransition> {
        let _ = now;
        None
    }
}

/// The no-chaos model: every hook is a no-op and `ENABLED` is `false`,
/// so the engine monomorphizes to exactly its pre-fault hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    const ENABLED: bool = false;
}

/// A validated, compiled fault schedule — plain data, fully determined
/// by its events, so a `(seed, plan)` pair replays bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The schedule as written (kept for display and round-tripping).
    events: Vec<FaultEvent>,
    /// The compiled transition timeline, sorted by `(time, rank,
    /// input order)`.
    transitions: Vec<(Time, FaultTransition)>,
    /// Drain cursor into `transitions`.
    cursor: usize,
    /// Per-node liveness, sized by [`FaultModel::init`].
    down: Vec<bool>,
}

impl FaultPlan {
    /// Compiles `events` into a transition timeline.
    ///
    /// # Panics
    ///
    /// Panics if a crash recovers at or before its onset, a flap has
    /// zero duration, a loss rate exceeds 1000 ‰, or a link names the
    /// same node twice.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        let mut transitions = Vec::with_capacity(events.len() * 2);
        for &event in &events {
            match event {
                FaultEvent::NodeCrash {
                    node,
                    at,
                    recover_at,
                } => {
                    assert!(
                        recover_at > at,
                        "node {node} must recover strictly after it crashes"
                    );
                    transitions.push((at, FaultTransition::NodeDown(node)));
                    transitions.push((recover_at, FaultTransition::NodeUp(node)));
                }
                FaultEvent::LinkFlap { a, b, at, duration } => {
                    assert!(a != b, "a link joins two distinct nodes");
                    assert!(duration > Time::ZERO, "a flap must have positive duration");
                    transitions.push((at, FaultTransition::LinkDown(a, b)));
                    transitions.push((at + duration, FaultTransition::LinkUp(a, b)));
                }
                FaultEvent::PacketLoss {
                    a,
                    b,
                    at,
                    per_mille,
                } => {
                    assert!(a != b, "a link joins two distinct nodes");
                    assert!(per_mille <= 1000, "loss rate is at most 1000 per mille");
                    transitions.push((at, FaultTransition::Loss(a, b, per_mille)));
                }
            }
        }
        // Stable sort: same-instant transitions keep input order within
        // one rank, so a plan is its own tiebreak authority.
        transitions.sort_by_key(|&(at, tr)| (at, tr.rank()));
        FaultPlan {
            events,
            transitions,
            cursor: 0,
            down: Vec::new(),
        }
    }

    /// The schedule as written.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Total crashes in the plan (the fault-span budget).
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::NodeCrash { .. }))
            .count()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }
}

impl FaultModel for FaultPlan {
    const ENABLED: bool = true;

    fn init(&mut self, nodes: u16) {
        let check = |id: u16| {
            assert!(
                id < nodes,
                "fault plan names node {id} but the mesh has {nodes} nodes"
            );
        };
        for &(_, tr) in &self.transitions {
            match tr {
                FaultTransition::NodeDown(n) | FaultTransition::NodeUp(n) => check(n),
                FaultTransition::LinkDown(a, b)
                | FaultTransition::LinkUp(a, b)
                | FaultTransition::Loss(a, b, _) => {
                    check(a);
                    check(b);
                }
            }
        }
        self.down = vec![false; nodes as usize];
        self.cursor = 0;
    }

    fn node_up(&self, node: u16) -> bool {
        !self.down.get(node as usize).copied().unwrap_or(false)
    }

    fn next_at(&self) -> Option<Time> {
        self.transitions.get(self.cursor).map(|&(at, _)| at)
    }

    fn pop_due(&mut self, now: Time) -> Option<FaultTransition> {
        let &(at, tr) = self.transitions.get(self.cursor)?;
        if at > now {
            return None;
        }
        self.cursor += 1;
        match tr {
            FaultTransition::NodeDown(n) => self.down[n as usize] = true,
            FaultTransition::NodeUp(n) => self.down[n as usize] = false,
            _ => {}
        }
        Some(tr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_crash_compiles_to_an_ordered_down_up_pair() {
        let mut plan = FaultPlan::new(vec![FaultEvent::NodeCrash {
            node: 3,
            at: Time::from_ms(10),
            recover_at: Time::from_ms(30),
        }]);
        plan.init(8);
        assert!(plan.node_up(3));
        assert_eq!(plan.next_at(), Some(Time::from_ms(10)));
        assert_eq!(
            plan.pop_due(Time::from_ms(10)),
            Some(FaultTransition::NodeDown(3))
        );
        assert!(!plan.node_up(3));
        // The recovery is scheduled but not yet due.
        assert_eq!(plan.pop_due(Time::from_ms(10)), None);
        assert_eq!(plan.next_at(), Some(Time::from_ms(30)));
        assert_eq!(
            plan.pop_due(Time::from_ms(30)),
            Some(FaultTransition::NodeUp(3))
        );
        assert!(plan.node_up(3));
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn same_instant_recovery_lands_before_the_next_crash() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent::NodeCrash {
                node: 1,
                at: Time::from_ms(5),
                recover_at: Time::from_ms(20),
            },
            FaultEvent::NodeCrash {
                node: 1,
                at: Time::from_ms(20),
                recover_at: Time::from_ms(40),
            },
        ]);
        plan.init(4);
        assert_eq!(
            plan.pop_due(Time::from_ms(20)),
            Some(FaultTransition::NodeDown(1))
        );
        // At t=20 the Up (rank 0) drains before the second Down (rank 2),
        // so the node nets to down.
        assert_eq!(
            plan.pop_due(Time::from_ms(20)),
            Some(FaultTransition::NodeUp(1))
        );
        assert_eq!(
            plan.pop_due(Time::from_ms(20)),
            Some(FaultTransition::NodeDown(1))
        );
        assert!(!plan.node_up(1));
    }

    #[test]
    fn flaps_and_loss_compile_and_validate() {
        let plan = FaultPlan::new(vec![
            FaultEvent::LinkFlap {
                a: 0,
                b: 1,
                at: Time::from_ms(1),
                duration: Time::from_ms(4),
            },
            FaultEvent::PacketLoss {
                a: 2,
                b: 3,
                at: Time::from_ms(2),
                per_mille: 50,
            },
        ]);
        assert_eq!(plan.crash_count(), 0);
        assert!(!plan.is_empty());
        assert_eq!(plan.events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "recover strictly after")]
    fn a_crash_that_never_recovers_later_is_rejected() {
        FaultPlan::new(vec![FaultEvent::NodeCrash {
            node: 0,
            at: Time::from_ms(5),
            recover_at: Time::from_ms(5),
        }]);
    }

    #[test]
    #[should_panic(expected = "names node 9")]
    fn init_rejects_out_of_mesh_nodes() {
        let mut plan = FaultPlan::new(vec![FaultEvent::NodeCrash {
            node: 9,
            at: Time::from_ms(1),
            recover_at: Time::from_ms(2),
        }]);
        plan.init(8);
    }
}
