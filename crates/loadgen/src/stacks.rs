//! Remote-memory stacks the engine can mount under a tenant mix.
//!
//! The paper's feasibility study (§4.1, Fig 3) shows that on commodity
//! interconnects the *software stack*, not the wire, dominates remote
//! access cost. `venice-baselines` models those stacks component by
//! component; this module mounts them under the load generator so the
//! sweep and the elastic figures compare Venice against
//! soNUMA-style messaging and the three swap-based baselines **under
//! identical traffic** — same seeds, same arrival trace, same tenant
//! mix, only the remote tier swapped out.
//!
//! Only [`RemoteStack::VeniceCrma`] supports elastic leases: growing a
//! tier mid-run requires the Monitor-Node borrow flow plus memory
//! hot-plug, which the baseline stacks (static partitions reached through
//! swap devices or message queues) do not have. That asymmetry is the
//! point — it is the paper's architectural contribution, measured.

use venice_baselines::{AsyncQpair, CommodityPath};
use venice_sim::Time;

/// Which remote-memory stack serves a node's borrowed tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteStack {
    /// Venice CRMA: cacheline loads through the RAMT window (latency
    /// measured from the composed cluster at setup).
    VeniceCrma,
    /// Scale-out-NUMA-style user-level messaging: each remote miss is a
    /// QPair round trip plus async-runtime bookkeeping.
    Sonuma,
    /// 10 Gb Ethernet vDisk swap (full TCP/IP + block stack per page).
    SwapEthernet,
    /// InfiniBand SRP virtual block device swap.
    SwapInfiniband,
    /// Semi-custom PCIe interconnect, swap over DMA.
    SwapPcieRdma,
}

impl RemoteStack {
    /// Figure/series label.
    pub fn label(&self) -> &'static str {
        match self {
            RemoteStack::VeniceCrma => "venice",
            RemoteStack::Sonuma => "sonuma",
            RemoteStack::SwapEthernet => "swap-eth",
            RemoteStack::SwapInfiniband => "swap-ib",
            RemoteStack::SwapPcieRdma => "swap-pcie",
        }
    }

    /// Whether the stack can grow and shrink its remote tier mid-run.
    pub fn supports_elastic(&self) -> bool {
        matches!(self, RemoteStack::VeniceCrma)
    }

    /// Per-miss latency of the stack, given the two quantities measured
    /// from the composed cluster at setup: the CRMA cacheline read
    /// latency and a 64 B QPair message latency to the same node.
    pub fn remote_miss(&self, crma_read: Time, qpair_64b: Time) -> Time {
        match self {
            RemoteStack::VeniceCrma => crma_read,
            // Request + response messages, plus the async runtime's
            // per-operation bookkeeping (issue, poll, status check).
            RemoteStack::Sonuma => {
                qpair_64b + qpair_64b + AsyncQpair::dependence_bound().bookkeeping
            }
            RemoteStack::SwapEthernet => CommodityPath::ethernet_vdisk().total(),
            RemoteStack::SwapInfiniband => CommodityPath::infiniband_srp().total(),
            RemoteStack::SwapPcieRdma => CommodityPath::pcie_rdma().total(),
        }
    }

    /// Every stack, Venice first (figure order).
    pub fn all() -> Vec<RemoteStack> {
        vec![
            RemoteStack::VeniceCrma,
            RemoteStack::Sonuma,
            RemoteStack::SwapEthernet,
            RemoteStack::SwapInfiniband,
            RemoteStack::SwapPcieRdma,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn venice_beats_every_baseline_per_miss() {
        let crma = Time::from_us(3);
        let qpair = Time::from_us(4);
        let v = RemoteStack::VeniceCrma.remote_miss(crma, qpair);
        for stack in RemoteStack::all().into_iter().skip(1) {
            let miss = stack.remote_miss(crma, qpair);
            assert!(miss > v, "{}: {miss} not above venice {v}", stack.label());
        }
        // And the Fig 3 ordering among the swap paths holds.
        let eth = RemoteStack::SwapEthernet.remote_miss(crma, qpair);
        let ib = RemoteStack::SwapInfiniband.remote_miss(crma, qpair);
        let pcie = RemoteStack::SwapPcieRdma.remote_miss(crma, qpair);
        assert!(eth > ib && ib > pcie);
    }

    #[test]
    fn only_venice_is_elastic() {
        for stack in RemoteStack::all() {
            assert_eq!(
                stack.supports_elastic(),
                stack == RemoteStack::VeniceCrma,
                "{}",
                stack.label()
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = RemoteStack::all().iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
