//! The traffic engine: a discrete-event load generator over the cluster.
//!
//! One [`run`] call builds a real [`Cluster`] (Monitor-Node memory
//! borrowing included), measures per-node CRMA latency for the borrowed
//! tier, and then drives the configured [`ArrivalProcess`] through the
//! admission controller, a per-node QPair (finite credits — transport
//! backpressure), and per-node service slots. Every stochastic draw comes
//! from one seeded [`SimRng`] consumed in event order, so a seed fully
//! determines the run: identical seeds produce identical [`LoadReport`]s,
//! bit for bit.

use std::collections::VecDeque;

use venice::cluster::Cluster;
use venice::NodeId;
use venice_sim::{Kernel, LogHistogram, Scheduler, SimRng, Time};
use venice_transport::qpair::QpairError;
use venice_transport::{PathModel, QpairConfig, QueuePair};
use venice_workloads::ZipfSampler;

use crate::admission::{AdmissionConfig, AdmissionControl, Decision, ShedReason};
use crate::arrival::{exponential, ArrivalProcess};
use crate::report::{LoadReport, TenantReport};
use crate::tenants::{NodeModel, TenantClass, TenantMix};

/// Local DRAM miss latency used for the non-borrowed tier.
const LOCAL_MISS: Time = Time::from_ns(100);

/// Full configuration of one loadgen run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Experiment seed; fully determines the run.
    pub seed: u64,
    /// Mesh dimensions (`dx`, `dy`, `dz`); the cluster has `dx*dy*dz`
    /// nodes.
    pub mesh: (u16, u16, u16),
    /// Tenant mix to generate.
    pub mix: TenantMix,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Total requests to generate (issued, whether or not admitted).
    pub requests: u64,
    /// Service slots per node (cores dedicated to request work).
    pub per_node_concurrency: u32,
    /// Front-door admission control.
    pub admission: AdmissionConfig,
    /// Remote memory each node tries to borrow at setup (0 disables the
    /// remote tier).
    pub remote_memory_per_node: u64,
}

impl LoadgenConfig {
    /// A sensible default configuration over `mix`: the paper's 8-node
    /// mesh, 20 krps open-loop Poisson arrivals, 50 k requests, 8 service
    /// slots per node, 256 MB borrowed per node.
    pub fn new(seed: u64, mix: TenantMix) -> Self {
        LoadgenConfig {
            seed,
            mesh: (2, 2, 2),
            mix,
            arrival: ArrivalProcess::OpenPoisson { rate_rps: 20_000.0 },
            requests: 50_000,
            per_node_concurrency: 8,
            admission: AdmissionConfig::default(),
            remote_memory_per_node: 256 << 20,
        }
    }

    /// Number of nodes described by `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the mesh exceeds the `u16` `NodeId` space.
    pub fn nodes(&self) -> u16 {
        let n = self.mesh.0 as u32 * self.mesh.1 as u32 * self.mesh.2 as u32;
        u16::try_from(n)
            .unwrap_or_else(|_| panic!("mesh {:?} exceeds the u16 NodeId space", self.mesh))
    }
}

/// One in-flight request (plain data so completion closures stay small).
#[derive(Debug, Clone, Copy)]
struct Request {
    class: u32,
    node: u16,
    arrival: Time,
    service: Time,
    req_bytes: u64,
    resp_bytes: u64,
}

/// Per-node server state.
struct Server {
    /// Edge-gateway → node messaging channel (finite credits).
    qp: QueuePair,
    /// Busy-until time of each service slot.
    slots: Vec<Time>,
    /// Requests waiting for a QPair credit.
    backlog: VecDeque<Request>,
    /// Measured latency context.
    model: NodeModel,
    /// Times a request found no credit and had to wait (or was shed).
    credit_waits: u64,
}

/// Per-tenant accumulators.
struct Stats {
    hist: LogHistogram,
    bytes: u64,
    admitted: u64,
    shed_rate: u64,
    shed_overload: u64,
    shed_backpressure: u64,
}

impl Stats {
    fn new() -> Self {
        Stats {
            hist: LogHistogram::new(),
            bytes: 0,
            admitted: 0,
            shed_rate: 0,
            shed_overload: 0,
            shed_backpressure: 0,
        }
    }
}

/// The simulated world threaded through every event.
struct World {
    rng: SimRng,
    classes: Vec<TenantClass>,
    weights: Vec<f64>,
    zipf: ZipfSampler,
    admission: AdmissionControl,
    servers: Vec<Server>,
    path: PathModel,
    stats: Vec<Stats>,
    issued: u64,
    target: u64,
    completed: u64,
    end: Time,
    /// Mean think time when the arrival process is closed-loop.
    think: Option<Time>,
    /// Mean interarrival gap when the arrival process is open-loop.
    mean_gap: Option<Time>,
    backlog_cap: usize,
}

/// Open-loop arrival event: issue one request, schedule the next.
fn open_arrival(w: &mut World, s: &mut Scheduler<World>) {
    let now = s.now();
    issue(w, s, now);
    if w.issued < w.target {
        let gap = exponential(&mut w.rng, w.mean_gap.expect("open loop"));
        s.schedule_in(gap, open_arrival);
    }
}

/// Closed-loop session event: issue the session's next request.
fn session_arrival(w: &mut World, s: &mut Scheduler<World>) {
    if w.issued >= w.target {
        return; // session retires
    }
    let now = s.now();
    issue(w, s, now);
}

/// Schedules the closed-loop session's next request, if any remain.
fn schedule_next_session(w: &mut World, s: &mut Scheduler<World>) {
    if let Some(think) = w.think {
        if w.issued < w.target {
            let gap = exponential(&mut w.rng, think);
            s.schedule_in(gap, session_arrival);
        }
    }
}

/// Generates one request and runs it through admission.
fn issue(w: &mut World, s: &mut Scheduler<World>, now: Time) {
    w.issued += 1;
    let class = w.rng.weighted_index(&w.weights);
    let user = w.zipf.sample(&mut w.rng);
    match w.admission.on_arrival(now) {
        Decision::Shed(reason) => {
            let st = &mut w.stats[class];
            match reason {
                ShedReason::RateLimit => st.shed_rate += 1,
                ShedReason::Overload => st.shed_overload += 1,
                ShedReason::Backpressure => st.shed_backpressure += 1,
            }
            // A shed closed-loop client backs off one think time and
            // retries with a fresh request.
            schedule_next_session(w, s);
        }
        Decision::Admit => {
            w.stats[class].admitted += 1;
            let node = (user % w.servers.len() as u64) as usize;
            let service = w.classes[class]
                .profile
                .service_time(&mut w.rng, &w.servers[node].model);
            let req = Request {
                class: class as u32,
                node: node as u16,
                arrival: now,
                service,
                req_bytes: w.classes[class].profile.request_bytes(),
                resp_bytes: w.classes[class].profile.response_bytes(),
            };
            dispatch(w, s, req);
        }
    }
}

/// Sends an admitted request toward its node, or parks it under
/// backpressure.
fn dispatch(w: &mut World, s: &mut Scheduler<World>, req: Request) {
    let now = s.now();
    let node = req.node as usize;
    match w.servers[node].qp.post_send(req.req_bytes) {
        Ok(()) => {
            let lat = w.servers[node]
                .qp
                .message_latency(&w.path, req.req_bytes)
                .expect("request payloads are bounded");
            let deliver = now + lat;
            let slot = {
                let slots = &w.servers[node].slots;
                let mut best = 0;
                for (i, &t) in slots.iter().enumerate() {
                    if t < slots[best] {
                        best = i;
                    }
                }
                best
            };
            let start = deliver.max(w.servers[node].slots[slot]);
            let comp = start + req.service;
            w.servers[node].slots[slot] = comp;
            s.schedule_at(comp, move |w: &mut World, s| finish(w, s, req));
        }
        Err(QpairError::NoCredit) | Err(QpairError::QueueFull) => {
            w.servers[node].credit_waits += 1;
            if w.servers[node].backlog.len() < w.backlog_cap {
                w.servers[node].backlog.push_back(req);
            } else {
                // The node is saturated beyond its backlog: drop the
                // request and free its in-flight slot.
                w.stats[req.class as usize].shed_backpressure += 1;
                w.admission.on_completion();
                schedule_next_session(w, s);
            }
        }
        Err(e) => unreachable!("unexpected qpair error: {e:?}"),
    }
}

/// Completion event: account the request, return the credit, and drain
/// the node's backlog.
fn finish(w: &mut World, s: &mut Scheduler<World>, req: Request) {
    let now = s.now();
    let st = &mut w.stats[req.class as usize];
    st.hist.record(now - req.arrival);
    st.bytes += req.req_bytes + req.resp_bytes;
    w.completed += 1;
    if now > w.end {
        w.end = now;
    }
    w.admission.on_completion();
    let node = req.node as usize;
    w.servers[node].qp.drain_one();
    w.servers[node].qp.credit_update(1);
    if let Some(next) = w.servers[node].backlog.pop_front() {
        dispatch(w, s, next);
    }
    schedule_next_session(w, s);
}

/// Runs one complete load-generation experiment.
///
/// # Panics
///
/// Panics if the configuration is internally inconsistent (zero requests,
/// zero concurrency, or an empty mesh).
pub fn run(config: &LoadgenConfig) -> LoadReport {
    assert!(config.requests > 0, "need at least one request");
    assert!(config.per_node_concurrency > 0, "need at least one slot");
    let (dx, dy, dz) = config.mesh;
    // Overflow-checked and bounded to the NodeId space; panics with a
    // clear message on a degenerate or oversized mesh.
    assert!(config.nodes() > 0, "mesh must be non-empty");

    // 1. Build the cluster and provision the remote tier through the real
    //    Fig 2 borrow flow; measure CRMA latency per node.
    let mut cluster = Cluster::mesh(dx, dy, dz, 1 << 30, 512 << 20);
    let n = cluster.len();
    let mut remote_leases = 0u64;
    let mut borrow_failures = 0u64;
    let mut models = Vec::with_capacity(n);
    for id in 0..n as u16 {
        let model = if config.remote_memory_per_node > 0 {
            match cluster.borrow_memory(NodeId(id), config.remote_memory_per_node) {
                Ok(lease) => {
                    // Warm the TLTLB with a throwaway read, then measure
                    // the steady-state latency — the cold first access
                    // pays a one-time translation-miss penalty that must
                    // not be charged to every request.
                    cluster
                        .crma_read(NodeId(id), lease.local_base + 64)
                        .expect("freshly mapped window is readable");
                    let lat = cluster
                        .crma_read(NodeId(id), lease.local_base + 64)
                        .expect("freshly mapped window is readable");
                    remote_leases += 1;
                    NodeModel {
                        local_miss: LOCAL_MISS,
                        remote_miss: lat,
                        has_remote: true,
                    }
                }
                Err(_) => {
                    borrow_failures += 1;
                    NodeModel::local_only(LOCAL_MISS)
                }
            }
        } else {
            NodeModel::local_only(LOCAL_MISS)
        };
        models.push(model);
    }

    // 2. Assemble the world.
    let gateway = NodeId(0);
    let servers = models
        .iter()
        .enumerate()
        .map(|(i, &model)| Server {
            qp: QueuePair::new(gateway, NodeId(i as u16), QpairConfig::on_chip()),
            slots: vec![Time::ZERO; config.per_node_concurrency as usize],
            backlog: VecDeque::new(),
            model,
            credit_waits: 0,
        })
        .collect();
    let mut rng = SimRng::seed(config.seed);
    let engine_rng = rng.fork(0x10AD);
    let (think, mean_gap) = match config.arrival {
        ArrivalProcess::OpenPoisson { rate_rps } => {
            (None, Some(Time::from_secs_f64(1.0 / rate_rps)))
        }
        ArrivalProcess::ClosedLoop { think, .. } => (Some(think), None),
    };
    let world = World {
        rng: engine_rng,
        classes: config.mix.classes.clone(),
        weights: config.mix.weights(),
        zipf: config.mix.user_sampler(),
        admission: AdmissionControl::new(config.admission),
        servers,
        path: cluster.path.clone(),
        stats: (0..config.mix.classes.len())
            .map(|_| Stats::new())
            .collect(),
        issued: 0,
        target: config.requests,
        completed: 0,
        end: Time::ZERO,
        think,
        mean_gap,
        backlog_cap: config.admission.backlog_per_node,
    };

    // 3. Seed the event queue and run to completion.
    let mut kernel =
        Kernel::new(world).with_event_limit(config.requests.saturating_mul(8) + 10_000);
    match config.arrival {
        ArrivalProcess::OpenPoisson { .. } => {
            kernel.schedule(Time::ZERO, open_arrival);
        }
        ArrivalProcess::ClosedLoop { sessions, think } => {
            assert!(sessions > 0, "closed loop needs at least one session");
            for _ in 0..sessions {
                let start = exponential(kernel.state_mut().rng_mut(), think);
                kernel.schedule(start, session_arrival);
            }
        }
    }
    kernel.run();

    // 4. Summarize.
    let w = kernel.into_state();
    let duration = w.end;
    let mut total_hist = LogHistogram::new();
    let mut total_bytes = 0u64;
    let mut admitted = 0u64;
    let (mut shed_rate, mut shed_overload, mut shed_backpressure) = (0u64, 0u64, 0u64);
    let mut tenants = Vec::with_capacity(w.classes.len());
    for (class, st) in w.classes.iter().zip(&w.stats) {
        total_hist.merge(&st.hist);
        total_bytes += st.bytes;
        admitted += st.admitted;
        shed_rate += st.shed_rate;
        shed_overload += st.shed_overload;
        shed_backpressure += st.shed_backpressure;
        tenants.push(TenantReport::from_stats(
            class.name.clone(),
            &st.hist,
            st.admitted,
            st.shed_rate + st.shed_overload + st.shed_backpressure,
            st.bytes,
            duration,
        ));
    }
    let total = TenantReport::from_stats(
        "all",
        &total_hist,
        admitted,
        shed_rate + shed_overload + shed_backpressure,
        total_bytes,
        duration,
    );
    LoadReport {
        mix: config.mix.name.clone(),
        seed: config.seed,
        nodes: n as u16,
        duration,
        issued: w.issued,
        admitted,
        completed: w.completed,
        shed_rate,
        shed_overload,
        shed_backpressure,
        credit_waits: w.servers.iter().map(|s| s.credit_waits).sum(),
        remote_leases,
        borrow_failures,
        total,
        tenants,
    }
}

impl World {
    /// Mutable access to the engine RNG (used to stagger closed-loop
    /// session starts).
    fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenants::TenantMix;

    fn small(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            requests: 3_000,
            ..LoadgenConfig::new(seed, TenantMix::web_frontend())
        }
    }

    #[test]
    fn runs_complete_and_conserve_requests() {
        let r = run(&small(1));
        assert_eq!(r.issued, 3_000);
        assert_eq!(r.issued, r.admitted + r.shed_rate + r.shed_overload);
        // Every admitted request either completed or was dropped under
        // backpressure.
        assert_eq!(r.admitted, r.completed + r.shed_backpressure);
        assert!(r.completed > 0);
        assert!(r.duration > Time::ZERO);
        assert_eq!(r.nodes, 8);
        assert_eq!(r.remote_leases + r.borrow_failures, 8);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let a = run(&small(42));
        let b = run(&small(42));
        assert_eq!(a, b);
        let c = run(&small(43));
        assert_ne!(a, c);
    }

    #[test]
    fn per_tenant_rows_cover_all_completions() {
        let r = run(&small(7));
        let sum: u64 = r.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(sum, r.completed);
        for t in &r.tenants {
            if t.completed > 0 {
                assert!(t.p50_us > 0.0);
                assert!(t.p50_us <= t.p99_us + 1e-9);
                assert!(t.p99_us <= t.p999_us + 1e-9);
            }
        }
    }

    #[test]
    fn closed_loop_self_limits() {
        let config = LoadgenConfig {
            arrival: ArrivalProcess::ClosedLoop {
                sessions: 64,
                think: Time::from_ms(1),
            },
            requests: 2_000,
            ..LoadgenConfig::new(5, TenantMix::messaging())
        };
        let r = run(&config);
        assert_eq!(r.issued, 2_000);
        // A 64-session closed loop cannot overload a 4096 in-flight cap.
        assert_eq!(r.shed_overload, 0);
        assert_eq!(r.completed, r.admitted);
    }

    #[test]
    fn overload_sheds_and_backpressure_engages() {
        let config = LoadgenConfig {
            arrival: ArrivalProcess::OpenPoisson {
                rate_rps: 2_000_000.0,
            },
            requests: 20_000,
            admission: AdmissionConfig {
                max_inflight: 256,
                backlog_per_node: 16,
                ..AdmissionConfig::default()
            },
            ..LoadgenConfig::new(11, TenantMix::web_frontend())
        };
        let r = run(&config);
        assert!(r.shed_overload > 0, "no overload shedding at 2 Mrps");
        assert!(r.credit_waits > 0, "qpair credits never exhausted");
    }

    #[test]
    fn remote_tier_disabled_falls_back_to_local() {
        let config = LoadgenConfig {
            remote_memory_per_node: 0,
            requests: 2_000,
            ..LoadgenConfig::new(3, TenantMix::web_frontend())
        };
        let r = run(&config);
        assert_eq!(r.remote_leases, 0);
        // Cold caches miss to the slow backend: the tail is much worse
        // than with the borrowed tier.
        let with_remote = run(&small(3));
        assert!(r.total.p99_us > with_remote.total.p99_us);
    }
}
