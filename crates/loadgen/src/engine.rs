//! The traffic engine: a discrete-event load generator over the cluster.
//!
//! One [`run`] call builds a real [`Cluster`] (Monitor-Node memory
//! borrowing included), provisions the remote tier — **statically** at
//! setup, or **elastically** through a [`venice_lease::LeaseManager`]
//! that borrows and releases capacity *during* the run as per-node queue
//! depth crosses its watermarks — and then drives the configured
//! [`ArrivalProcess`] through per-node admission (priority-scaled caps),
//! locality-aware routing, a per-node QPair (finite credits — transport
//! backpressure), and per-node service slots. Every stochastic draw comes
//! from one seeded [`SimRng`] consumed in event order, so a seed fully
//! determines the run: identical seeds produce identical [`LoadReport`]s
//! — and identical lease timelines — bit for bit.
//!
//! # The typed, zero-allocation event core
//!
//! The engine runs on `Kernel<World, EngineEvent>`: every scheduled
//! occurrence is a plain `EngineEvent` enum value fired through one
//! `match`, not a heap-allocated `Box<dyn FnOnce>` closure. In-flight
//! request state is pooled in a free-list slab (`RequestSlab` below),
//! so a `Finish` event carries a 4-byte slot index instead of the whole
//! request, steady-state traffic performs **zero allocations per
//! request**, and per-request transport latency is precomputed per
//! (node, tenant class) instead of re-derived on every dispatch. The
//! pre-rewrite closure engine is preserved bit-for-bit compatible in
//! [`crate::legacy`]; `cargo run --release -p venice-bench --bin
//! throughput` times the two side by side into `BENCH_perf.json`.

use std::collections::VecDeque;

use venice::cluster::Cluster;
use venice::{MemoryLease, NodeId};
use venice_lease::{LeaseAction, LeaseConfig, LeaseManager, NodeSignal, Priority, NO_TENANT};
use venice_sim::{Kernel, LogHistogram, QueueStats, Scheduler, SimEvent, SimRng, Time};
use venice_telemetry::attrib::{
    StageBreakdown, STAGE_DETOUR, STAGE_ESTABLISH_STALL, STAGE_QUEUE_WAIT, STAGE_SERVICE_LOCAL,
    STAGE_SERVICE_REMOTE, STAGE_SLOT_WAIT, STAGE_TRANSPORT,
};
use venice_telemetry::{NodeGauges, NoopProbe, Probe, SampleRow, SpanKind, TenantCounters};
use venice_transport::qpair::QpairError;
use venice_transport::{QpairConfig, QueuePair};
use venice_workloads::ZipfSampler;

use crate::admission::{AdmissionConfig, AdmissionControl, Decision, ShedReason};
use crate::arrival::{exponential, ArrivalProcess};
use crate::faults::{FaultModel, FaultPlan, FaultTransition, NoFaults};
use crate::remote::{CongestedFabric, RemoteModel, RemoteModelCfg, ScalarCrma};
use crate::report::{LeaseSummary, LoadReport, TenantReport};
use crate::stacks::RemoteStack;
use crate::tenants::{CompiledAttrib, CompiledService, NodeModel, TenantClass, TenantMix};
use crate::trace::{RequestOutcome, RequestRecord, Trace};

/// Local DRAM miss latency used for the non-borrowed tier.
const LOCAL_MISS: Time = Time::from_ns(100);

/// Lendable pool per node — what each node offers the cluster (the
/// second argument of the `Cluster::mesh` call below), and therefore the
/// denominator of the donor-pressure fraction.
const LENDABLE_PER_NODE: u64 = 512 << 20;

/// Tag value for "no tenant has driven a lease on this node yet"
/// (doubles as the lease manager's unattributed-tenant sentinel).
const NO_TAG: u32 = NO_TENANT;

/// Full configuration of one loadgen run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Experiment seed; fully determines the run.
    pub seed: u64,
    /// Mesh dimensions (`dx`, `dy`, `dz`); the cluster has `dx*dy*dz`
    /// nodes.
    pub mesh: (u16, u16, u16),
    /// Tenant mix to generate.
    pub mix: TenantMix,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Total requests to generate (issued, whether or not admitted).
    pub requests: u64,
    /// Service slots per node (cores dedicated to request work).
    pub per_node_concurrency: u32,
    /// Front-door admission control (cluster-wide budgets, split across
    /// nodes).
    pub admission: AdmissionConfig,
    /// Remote memory each node provisions at setup under static
    /// provisioning, and the full-tier reference level under elastic
    /// leases (0 disables the remote tier).
    pub remote_memory_per_node: u64,
    /// Remote-memory stack serving the borrowed tier.
    pub stack: RemoteStack,
    /// Elastic lease management. `None` provisions
    /// `remote_memory_per_node` once at setup and holds it (PR 1
    /// behavior); `Some` starts every node at the lease floor and lets
    /// the manager grow/shrink the tier mid-run. Requires a stack with
    /// [`RemoteStack::supports_elastic`].
    pub lease: Option<LeaseConfig>,
    /// How remote transfers are priced: the measured per-node scalar
    /// (the frozen default) or live fabric congestion over modeled
    /// per-link utilization windows ([`crate::remote`]).
    pub remote_model: RemoteModelCfg,
}

impl LoadgenConfig {
    /// A sensible default configuration over `mix`: the paper's 8-node
    /// mesh, 20 krps open-loop Poisson arrivals, 50 k requests, 8 service
    /// slots per node, 256 MB borrowed per node, Venice CRMA stack,
    /// static provisioning.
    pub fn new(seed: u64, mix: TenantMix) -> Self {
        LoadgenConfig {
            seed,
            mesh: (2, 2, 2),
            mix,
            arrival: ArrivalProcess::OpenPoisson { rate_rps: 20_000.0 },
            requests: 50_000,
            per_node_concurrency: 8,
            admission: AdmissionConfig::default(),
            remote_memory_per_node: 256 << 20,
            stack: RemoteStack::VeniceCrma,
            lease: None,
            remote_model: RemoteModelCfg::Scalar,
        }
    }

    /// Number of nodes described by `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the mesh exceeds the `u16` `NodeId` space.
    pub fn nodes(&self) -> u16 {
        let n = self.mesh.0 as u32 * self.mesh.1 as u32 * self.mesh.2 as u32;
        u16::try_from(n)
            .unwrap_or_else(|_| panic!("mesh {:?} exceeds the u16 NodeId space", self.mesh))
    }
}

/// Side-channel counters from one engine run.
///
/// Kept out of [`LoadReport`] deliberately: the report's JSON shape is
/// frozen by the determinism gate (its serialization is byte-diffed
/// across thread counts and against the legacy engine), while these
/// loop-level counters exist for the `throughput` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Logical events processed over the whole run: kernel-dispatched
    /// events plus arrivals absorbed by lookahead fusion. This equals
    /// the event count the boxed-closure engine executes for the same
    /// configuration, so events/sec is comparable across the two cores.
    pub events: u64,
    /// Arrivals processed in place by lookahead fusion (never enqueued).
    pub fused_arrivals: u64,
    /// Peak number of simultaneously pending events (peak event-queue
    /// depth).
    pub peak_queue_depth: usize,
    /// Cumulative event-queue traffic counters (near-buffer hits vs
    /// heap sifts).
    pub queue: QueueStats,
    /// End-of-run `(live, capacity)` occupancy of the kernel's event
    /// slab.
    pub slab: (usize, usize),
}

/// One in-flight request (plain data; pooled in [`RequestSlab`]).
/// Request/response payload sizes are class constants and live in
/// per-class tables on the world, not here — the slab entry stays at
/// 48 bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    pub(crate) seq: u64,
    pub(crate) class: u32,
    pub(crate) user: u64,
    pub(crate) node: u16,
    pub(crate) arrival: Time,
    pub(crate) service: Time,
    /// Newest lease generation on the serving node at arrival.
    pub(crate) generation: u64,
}

/// Free-list slab pooling in-flight [`Request`] state.
///
/// A request lives in the slab from admission until it completes (or is
/// dropped at backlog overflow); events and backlogs carry its 4-byte
/// slot index. Freed slots are reused LIFO, so the slab stops growing
/// once it reaches the peak in-flight population and the steady state
/// allocates nothing.
pub(crate) struct RequestSlab {
    entries: Vec<Request>,
    free: Vec<u32>,
}

impl RequestSlab {
    pub(crate) fn new() -> Self {
        RequestSlab {
            entries: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `req`, returning its slot.
    #[inline]
    pub(crate) fn insert(&mut self, req: Request) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = req;
                slot
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("request slab overflow");
                self.entries.push(req);
                slot
            }
        }
    }

    /// Shared access to the request in `slot`.
    #[inline]
    pub(crate) fn get(&self, slot: u32) -> &Request {
        &self.entries[slot as usize]
    }

    /// Removes and returns the request in `slot`, freeing it for reuse.
    #[inline]
    pub(crate) fn take(&mut self, slot: u32) -> Request {
        self.free.push(slot);
        self.entries[slot as usize]
    }

    /// Slots currently live (not on the free list) whose request is
    /// bound to `node`, ascending. Crash path only — O(slab), never on
    /// the per-request path.
    fn live_slots_on(&self, node: u16) -> Vec<u32> {
        let free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        (0..self.entries.len() as u32)
            .filter(|slot| !free.contains(slot) && self.entries[*slot as usize].node == node)
            .collect()
    }
}

/// Per-slot attribution stamps, paralleling one [`RequestSlab`] slot.
///
/// Kept in a side slab on the world rather than in [`Request`] so the
/// no-op path's 48-byte slab entry is untouched; the vector stays empty
/// (never allocated, never written) unless the probe is enabled.
#[derive(Debug, Clone, Copy, Default)]
struct ReqAttrib {
    /// When the request last cleared the credit gate (`== arrival` when
    /// it never parked in the backlog).
    dispatch_at: Time,
    /// Remote-CRMA picoseconds of the sampled service time
    /// ([`CompiledAttrib::remote_ps`]).
    remote_ps: u64,
    /// Whether it parked while a grow's establish flow was pending on
    /// its node — the queue wait is then a lease-establish stall, not
    /// ordinary contention.
    stalled: bool,
}

/// Per-node server state.
pub(crate) struct Server {
    /// Edge-gateway → node messaging channel (finite credits).
    pub(crate) qp: QueuePair,
    /// Busy-until time of each service slot.
    pub(crate) slots: Vec<Time>,
    /// Slab slots of requests waiting for a QPair credit.
    pub(crate) backlog: VecDeque<u32>,
    /// Measured latency context (mutated mid-run by elastic leases).
    pub(crate) model: NodeModel,
    /// Times a request found no credit and had to wait (or was shed).
    pub(crate) credit_waits: u64,
    /// Dispatched-but-not-finished requests per tenant class; together
    /// with the backlog this is the demand signal lease attribution
    /// reads (the grow trigger counts busy slots, so attribution must
    /// see in-service work too, not just the backlog).
    pub(crate) inflight_by_class: Vec<u32>,
    /// Precomputed gateway→node QPair message latency per tenant class
    /// (request payload sizes are class constants, and the latency model
    /// is state-free — hoisting it off the dispatch path is pure
    /// savings).
    pub(crate) msg_lat_by_class: Vec<Time>,
    /// Each tenant class's service model compiled against this node's
    /// current [`NodeModel`] ([`RequestProfile::compile`]); recompiled
    /// whenever a lease event moves the node's remote tier.
    ///
    /// [`RequestProfile::compile`]: crate::tenants::RequestProfile::compile
    pub(crate) service_by_class: Vec<CompiledService>,
    /// Each class's remote-share model compiled against the same
    /// [`NodeModel`] ([`RequestProfile::compile_attrib`]); empty unless
    /// the probe is enabled, recompiled alongside `service_by_class`.
    ///
    /// [`RequestProfile::compile_attrib`]: crate::tenants::RequestProfile::compile_attrib
    pub(crate) attrib_by_class: Vec<CompiledAttrib>,
}

/// Per-tenant accumulators.
pub(crate) struct Stats {
    pub(crate) hist: LogHistogram,
    pub(crate) bytes: u64,
    pub(crate) admitted: u64,
    pub(crate) shed_rate: u64,
    pub(crate) shed_overload: u64,
    pub(crate) shed_backpressure: u64,
    /// Requests lost to an injected node crash (stays 0 unless a fault
    /// plan is armed).
    pub(crate) shed_crash: u64,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Stats {
            hist: LogHistogram::new(),
            bytes: 0,
            admitted: 0,
            shed_rate: 0,
            shed_overload: 0,
            shed_backpressure: 0,
            shed_crash: 0,
        }
    }

    /// Books one completion in a single call: latency into the histogram,
    /// payload bytes into the goodput ledger.
    #[inline]
    pub(crate) fn on_complete(&mut self, latency: Time, bytes: u64) {
        self.hist.record(latency);
        self.bytes += bytes;
    }
}

/// Elastic-tier state threaded through lease ticks.
struct ElasticTier {
    manager: LeaseManager,
    /// Tenant class whose backlog drove each node's newest lease.
    tags: Vec<u32>,
    /// Each node's *visible* leases (generation, lease), oldest first.
    /// A mid-run grow joins only after its Fig 2 establish flow
    /// completes; shrinks pop from this stack, so an in-flight grow can
    /// never be released before it lands. Revokes may remove from the
    /// middle (the donor demands *its* newest grant, not the
    /// recipient's newest borrow).
    leases: Vec<Vec<(u64, MemoryLease)>>,
    /// Per-class quota flags refreshed each lease tick: `true` while the
    /// class's ledger sits at its byte quota, which collapses its
    /// admission share (over-quota tenants shed first).
    over_quota: Vec<bool>,
}

impl ElasticTier {
    /// The newest visible lease generation on `node` (0 = none).
    fn newest_generation(&self, node: usize) -> u64 {
        self.leases[node].last().map(|&(g, _)| g).unwrap_or(0)
    }

    /// The newest *visible* lease lent by `donor`, as
    /// `(recipient, stack index, generation)` — the revoke target under
    /// recipient-side LIFO preference. Leases still in their establish
    /// flow are not on any stack yet and cannot be revoked.
    fn newest_visible_from(&self, donor: u16) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for (recipient, stack) in self.leases.iter().enumerate() {
            for (idx, &(generation, lease)) in stack.iter().enumerate() {
                if lease.donor.0 == donor && best.map(|(_, _, g)| generation > g).unwrap_or(true) {
                    best = Some((recipient, idx, generation));
                }
            }
        }
        best
    }
}

/// Warms the TLTLB with a throwaway read, then measures the steady-state
/// CRMA read latency of a freshly mapped window — the cold first access
/// pays a one-time translation-miss penalty that must not be charged to
/// every request. The single measurement protocol for static and elastic
/// provisioning alike.
fn measure_crma(cluster: &mut Cluster, node: NodeId, local_base: u64) -> Time {
    cluster
        .crma_read(node, local_base + 64)
        .expect("freshly mapped window is readable");
    cluster
        .crma_read(node, local_base + 64)
        .expect("freshly mapped window is readable")
}

/// Borrows one chunk for `node` through the Monitor-Node flow and
/// measures its CRMA latency. On success returns the new lease's
/// generation, the lease, and the measured latency; on refusal records
/// the denial and returns `None`. Shared by the setup bootstrap and the
/// mid-run lease tick so the borrow/measure/confirm protocol cannot
/// drift apart — the two callers differ only in *when* the capacity
/// becomes visible (instantly at setup; after the lease's establish
/// flow mid-run).
///
/// With `lessor` set the chunk is a market match: the manager confirms
/// it as a sublease and the cluster annotates the grant with the
/// lessor→tenant chain, so the two ledgers can be reconciled at end of
/// run.
///
/// `donor_ok` is the caller's placement veto, threaded into the Monitor
/// Node's handshake ([`Cluster::borrow_memory_filtered`]): a vetoed
/// donor is consumed from the candidate set and the retry loop falls
/// through to the next-nearest one. Congestion-aware placement passes
/// the fabric model's hot-path test; everyone else passes always-true.
#[allow(clippy::too_many_arguments)]
fn grow_lease(
    cluster: &mut Cluster,
    manager: &mut LeaseManager,
    now: Time,
    node: u16,
    tenant: u32,
    predictive: bool,
    priority: Priority,
    lessor: Option<u32>,
    donor_ok: &dyn Fn(NodeId) -> bool,
) -> Option<(u64, MemoryLease, Time)> {
    let chunk = manager.config().chunk_bytes;
    match cluster.borrow_memory_filtered(NodeId(node), chunk, donor_ok) {
        Ok(lease) => {
            let lat = measure_crma(cluster, NodeId(node), lease.local_base);
            let generation = match lessor {
                Some(lessor) => {
                    let generation = manager.confirm_sublease(now, node, tenant, lessor, priority);
                    cluster
                        .mark_sublease(lease.grant_id, lessor, tenant)
                        .expect("fresh grant accepts its sublease chain");
                    generation
                }
                None => manager.confirm_grow(now, node, tenant, predictive, priority),
            };
            Some((generation, lease, lat))
        }
        Err(_) => {
            manager.deny_grow(now, node, tenant, priority);
            None
        }
    }
}

/// Applies a mid-run `Grow` or `Sublease` decision: borrow through the
/// shared flow, schedule the Fig 2 establish completion — the borrowed
/// capacity must not serve requests before the flow completes, or the
/// elastic-vs-static comparison would credit elastic with instant
/// provisioning — and bump the donor's lent pressure (its memory is
/// committed at borrow time, even though the recipient's visibility
/// waits on the establish flow). `lessor` marks a market match.
fn apply_grow<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    now: Time,
    signals: &[NodeSignal],
    node: u16,
    predictive: bool,
    lessor: Option<u32>,
) {
    let tenant = signals[node as usize].tenant;
    let priority = signals[node as usize].priority;
    // Under congestion-aware placement the fabric model vetoes donors
    // whose node↔donor path is currently backlogged; with a fault plan
    // armed, dead nodes are vetoed unconditionally — a crashed donor
    // cannot map memory (2021-edition closures capture the `remote` and
    // `faults` fields alone, so these shared borrows coexist with the
    // mutable cluster/manager borrows below).
    let donor_ok =
        |d: NodeId| (!F::ENABLED || w.faults.node_up(d.0)) && w.remote.donor_ok(now, node, d.0);
    let tier = w.elastic.as_mut().expect("elastic run");
    if let Some((generation, lease, lat)) = grow_lease(
        &mut w.cluster,
        &mut tier.manager,
        now,
        node,
        tenant,
        predictive,
        priority,
        lessor,
        &donor_ok,
    ) {
        s.schedule_event_in(
            lease.setup_time,
            EngineEvent::LeaseEstablished(Box::new(LeaseEstablish {
                node,
                generation,
                lease,
                class_tag: tenant,
                lat,
                failover_of: 0,
            })),
        );
        sync_donor_pressure(w, lease.donor.0);
        if P::ENABLED {
            w.probe
                .span_open(SpanKind::Establish, node, generation, now);
        }
        if P::ATTRIB {
            w.pending_grows[node as usize] += 1;
        }
    }
}

/// Refreshes `donor`'s lent-memory pressure from the cluster ledger and
/// recompiles its service models — called wherever a grant involving the
/// donor is established or torn down. A no-op unless the pressure term
/// is armed, so untouched configurations never recompile here.
fn sync_donor_pressure<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    donor: u16,
) {
    if w.servers[donor as usize].model.lent_slowdown > 0.0 {
        let lent = w.cluster.lent_bytes_of(NodeId(donor));
        w.servers[donor as usize].model.lent_bytes = lent;
        recompile_service(w, donor as usize);
    }
}

/// One scheduled occurrence in the typed engine: a plain enum value,
/// scheduled by value and fired through a single `match` — no `Box`, no
/// vtable on the per-request path. The hot variants (arrivals,
/// completions, ticks) carry at most a 4-byte slab slot, keeping the
/// enum at 16 bytes so queue pushes and pops move almost nothing; the
/// rare lease-flow completions (a few hundred per run, vs millions of
/// requests) box their fat payloads rather than inflating every event.
enum EngineEvent {
    /// Open-loop arrival: issue one request, schedule the next at the
    /// process's instantaneous rate.
    Arrival,
    /// Closed-loop session fires its next request.
    SessionNext,
    /// Replay cursor re-drives the next recorded request.
    ReplayNext,
    /// A dispatched request finishes service; payload is its
    /// [`RequestSlab`] slot.
    Finish(u32),
    /// Periodic elastic-lease control tick.
    LeaseTick,
    /// A mid-run grow's Fig 2 establish flow completes: the borrowed
    /// chunk becomes visible to routing and the service model.
    LeaseEstablished(Box<LeaseEstablish>),
    /// A donor-demanded revoke's modeled teardown flow completes: the
    /// grant is pulled back through the Monitor–Node path.
    RevokeTorndown(Box<RevokeTeardown>),
    /// The fault plan's next transition comes due: crash/recover a
    /// node, cut/heal a link, or change a link's loss rate. Scheduled
    /// only when a [`FaultPlan`] is armed.
    FaultTick,
}

impl EngineEvent {
    /// Stable probe slot for this event kind; must stay in step with
    /// [`crate::telemetry::EVENT_KIND_LABELS`].
    fn kind(&self) -> u8 {
        match self {
            EngineEvent::Arrival => 0,
            EngineEvent::SessionNext => 1,
            EngineEvent::ReplayNext => 2,
            EngineEvent::Finish(_) => 3,
            EngineEvent::LeaseTick => 4,
            EngineEvent::LeaseEstablished(_) => 5,
            EngineEvent::RevokeTorndown(_) => 6,
            EngineEvent::FaultTick => 7,
        }
    }
}

/// Payload of [`EngineEvent::LeaseEstablished`].
struct LeaseEstablish {
    /// Recipient node.
    node: u16,
    /// Lease generation assigned by the manager at confirm time.
    generation: u64,
    /// The established lease.
    lease: MemoryLease,
    /// Tenant class that drove the grow (`NO_TAG` = unattributed).
    class_tag: u32,
    /// Measured CRMA latency of the new window.
    lat: Time,
    /// Generation of the lease this grow replaces after its donor died
    /// (0 = an ordinary grow): landing it closes the recipient's
    /// failover span.
    failover_of: u64,
}

/// Payload of [`EngineEvent::RevokeTorndown`].
struct RevokeTeardown {
    /// Pressured donor demanding its memory back.
    donor: u16,
    /// Node the chunk is reclaimed from.
    recipient: u16,
    /// Generation of the revoked lease.
    generation: u64,
    /// The lease being torn down.
    lease: MemoryLease,
    /// Priority carried on the revoke decision.
    priority: Priority,
}

/// The engine's scheduler flavor: typed events over the world.
type Sched<'a, P, M, F> = Scheduler<World<'a, P, M, F>, EngineEvent>;

impl<'a, P: Probe, M: RemoteModel, F: FaultModel> SimEvent<World<'a, P, M, F>> for EngineEvent {
    fn fire(self, w: &mut World<'a, P, M, F>, s: &mut Sched<'a, P, M, F>) {
        if P::ENABLED {
            pulse(w, s, self.kind());
        }
        match self {
            EngineEvent::Arrival => open_arrival(w, s),
            EngineEvent::SessionNext => session_arrival(w, s),
            EngineEvent::ReplayNext => replay_arrival(w, s),
            EngineEvent::Finish(slot) => finish(w, s, slot),
            EngineEvent::LeaseTick => lease_tick(w, s),
            EngineEvent::LeaseEstablished(est) => {
                let LeaseEstablish {
                    node,
                    generation,
                    lease,
                    class_tag,
                    lat,
                    failover_of,
                } = *est;
                if P::ATTRIB {
                    w.pending_grows[node as usize] -= 1;
                }
                let now = s.now();
                // The Fig 2 handshake needs both ends alive when it
                // lands: if either died mid-flow, the grant is lost —
                // ledgers unwind without a teardown (no one is left to
                // run one) and the chunk never becomes visible. A crash
                // window the flow straddled entirely (crash *and*
                // recovery before landing) leaves the grant intact.
                if F::ENABLED && (!w.faults.node_up(lease.donor.0) || !w.faults.node_up(node)) {
                    w.cluster
                        .purge(lease.grant_id)
                        .expect("in-flight grant is still on the cluster ledger");
                    let tier = w.elastic.as_mut().expect("elastic run");
                    tier.manager.confirm_failover(
                        now,
                        lease.donor.0,
                        node,
                        generation,
                        Priority::Normal,
                    );
                    sync_donor_pressure(w, lease.donor.0);
                    if P::ENABLED {
                        w.probe
                            .span_close(SpanKind::Establish, node, generation, now);
                    }
                    return;
                }
                let tier = w.elastic.as_mut().expect("elastic run");
                tier.leases[node as usize].push((generation, lease));
                if class_tag != NO_TAG {
                    tier.tags[node as usize] = class_tag;
                }
                let model = &mut w.servers[node as usize].model;
                model.remote_bytes += lease.bytes;
                model.remote_miss = lat;
                recompile_service(w, node as usize);
                sync_fabric_route(w, node as usize);
                if P::ENABLED {
                    w.probe
                        .span_close(SpanKind::Establish, node, generation, now);
                    w.probe.span_open(SpanKind::Active, node, generation, now);
                    if F::ENABLED && failover_of != 0 {
                        // The replacement chunk is live: the recipient's
                        // degraded window ends here.
                        w.probe
                            .span_close(SpanKind::Failover, node, failover_of, now);
                    }
                }
            }
            EngineEvent::RevokeTorndown(rev) => {
                let RevokeTeardown {
                    donor,
                    recipient,
                    generation,
                    lease,
                    priority,
                } = *rev;
                let now = s.now();
                // A teardown handshake cannot execute against a dead
                // end: the chunk is written off as a failover instead —
                // ledger unwound, no latency charged, no donor repaid
                // by an unmap nobody can run.
                if F::ENABLED && (!w.faults.node_up(donor) || !w.faults.node_up(recipient)) {
                    w.cluster
                        .purge(lease.grant_id)
                        .expect("revoke-pending grant is still on the cluster ledger");
                    let tier = w.elastic.as_mut().expect("elastic run");
                    tier.manager
                        .confirm_failover(now, donor, recipient, generation, priority);
                    let model = &mut w.servers[recipient as usize].model;
                    model.remote_bytes = model.remote_bytes.saturating_sub(lease.bytes);
                    recompile_service(w, recipient as usize);
                    sync_fabric_route(w, recipient as usize);
                    sync_donor_pressure(w, donor);
                    if P::ENABLED {
                        w.probe
                            .span_close(SpanKind::Teardown, recipient, generation, now);
                        w.probe
                            .span_close(SpanKind::Active, recipient, generation, now);
                    }
                    return;
                }
                apply_revoke(
                    w,
                    now,
                    donor,
                    recipient as usize,
                    generation,
                    lease,
                    priority,
                );
            }
            EngineEvent::FaultTick => fault_tick(w, s),
        }
    }
}

/// Replay input: a borrowed record stream plus a cursor — the trace is
/// **not** cloned into the world.
struct ReplayCursor<'a> {
    records: &'a [RequestRecord],
    next: usize,
}

/// The simulated world threaded through every event.
struct World<'a, P: Probe, M: RemoteModel, F: FaultModel> {
    /// Observation hooks ([`venice_telemetry::Probe`]); `NoopProbe` in
    /// every default entry point, so the hooks compile away and the
    /// report stays bit-identical to the unprobed engine.
    probe: P,
    /// Arrival-side randomness: interarrival gaps, tenant classes, users.
    /// Kept separate from `service_rng` so two *open-loop* (Poisson or
    /// bursty) runs with the same seed but different stacks/configs see
    /// the identical arrival stream even after their admission decisions
    /// diverge. Closed-loop runs are not insulated: think-time draws
    /// interleave with arrival draws at completion times, which are
    /// stack-dependent.
    rng: SimRng,
    /// Service-side randomness: cache hit/miss draws, service jitter.
    service_rng: SimRng,
    classes: Vec<TenantClass>,
    weights: Vec<f64>,
    /// `weights.iter().sum()`, hoisted for the per-arrival class draw.
    weight_total: f64,
    zipf: ZipfSampler,
    /// One admission controller per node.
    admissions: Vec<AdmissionControl>,
    servers: Vec<Server>,
    /// Pooled in-flight request state; events carry slots into this.
    requests: RequestSlab,
    stats: Vec<Stats>,
    /// Per-class request payload bytes (class constants, hoisted off the
    /// per-request path; the slab [`Request`] carries no byte fields).
    req_bytes_by_class: Vec<u64>,
    /// Per-class response payload bytes.
    resp_bytes_by_class: Vec<u64>,
    issued: u64,
    target: u64,
    completed: u64,
    /// Arrivals processed by lookahead fusion instead of the queue.
    fused: u64,
    end: Time,
    arrival: ArrivalProcess,
    /// Precomputed `(off-burst, in-burst)` exponential gap means of the
    /// open-loop arrival process — the per-arrival division and
    /// float→[`Time`] conversion hoisted to setup (both halves equal for
    /// plain Poisson; `None` for closed-loop/replay runs).
    open_gaps: Option<(Time, Time)>,
    /// Mean think time when the arrival process is closed-loop.
    think: Option<Time>,
    backlog_cap: usize,
    /// The composed cluster, kept live so elastic ticks can borrow and
    /// release against the real Monitor-Node flow mid-run.
    cluster: Cluster,
    /// Mesh adjacency (from the node agents) for locality-aware routing.
    neighbors: Vec<Vec<u16>>,
    elastic: Option<ElasticTier>,
    /// Cursor into the lease timeline for incremental per-tenant denial
    /// accounting at probe samples; never advanced on the no-op path.
    denied_scan: usize,
    /// Per-class denial counts accumulated by that cursor.
    denied_counts: Vec<u64>,
    /// Per-request records when tracing.
    trace: Option<Vec<RequestRecord>>,
    /// Recorded arrivals to re-drive instead of drawing fresh traffic.
    replay: Option<ReplayCursor<'a>>,
    /// Attribution side slab paralleling `requests` by slot; empty (and
    /// never touched) unless the probe is enabled.
    attrib: Vec<ReqAttrib>,
    /// Per-node count of grows whose establish flow is still in flight,
    /// classifying backlog waits as establish stalls; empty unless the
    /// probe is enabled.
    pending_grows: Vec<u32>,
    /// Remote-transfer pricing model ([`crate::remote::RemoteModel`]).
    /// [`ScalarCrma`] on the default path, where every hook site
    /// guarded by `if M::ENABLED` monomorphizes away.
    remote: M,
    /// Fabric congestion penalty (ps) charged at dispatch, paralleling
    /// `requests` by slot — a side slab like `attrib`, so the 48-byte
    /// [`Request`] entry is untouched; empty (never allocated) unless
    /// the congested model is armed.
    fabric_detour: Vec<u64>,
    /// Fault injection ([`crate::faults::FaultModel`]); [`NoFaults`] on
    /// the default path, where every hook site guarded by `if
    /// F::ENABLED` monomorphizes away and the engine is
    /// instruction-for-instruction the pre-chaos one.
    faults: F,
    /// Requests in service on a node at its crash instant, paralleling
    /// `requests` by slot: their `Finish` events fire on schedule but
    /// account as crash sheds. Empty unless a fault plan is armed.
    doomed: Vec<bool>,
    /// Monotonic crash counter: the `generation` key of fault spans
    /// (a node can crash more than once; lease generations and crash
    /// ordinals must not collide on one span key).
    fault_seq: u64,
    /// Each node's current fault span key while down (0 = never
    /// crashed), so recovery closes the span the crash opened.
    node_fault_seq: Vec<u64>,
}

impl<P: Probe, M: RemoteModel, F: FaultModel> World<'_, P, M, F> {
    /// Mutable access to the engine RNG (used to stagger closed-loop
    /// session starts).
    fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Total admitted-but-not-completed requests across all nodes.
    fn total_inflight(&self) -> u32 {
        self.admissions.iter().map(|a| a.inflight()).sum()
    }
}

/// Per-event probe pulse: counts the event and, when a sample tick
/// boundary was crossed, snapshots the world into a [`SampleRow`].
/// Called only under `if P::ENABLED`, and never from the no-op path —
/// sampling piggybacks on events the kernel was executing anyway, so
/// the probed event stream is the unprobed one, exactly.
fn pulse<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    kind: u8,
) {
    let now = s.now();
    w.probe.on_event(kind, now);
    if let Some(at) = w.probe.sample_due(now) {
        let row = build_sample(w, s.pending(), s.slab_occupancy().0);
        w.probe.on_sample(at, row);
    }
}

/// Snapshots per-node gauges and per-tenant counters for one sample.
/// Reads the same ledgers the report reads (cluster byte positions,
/// admission stats, the lease timeline) — observation only.
fn build_sample<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    pending: usize,
    slab_live: usize,
) -> SampleRow {
    let nodes = w
        .servers
        .iter()
        .enumerate()
        .map(|(i, srv)| NodeGauges {
            depth: srv.backlog.len() as u32,
            inflight: srv.inflight_by_class.iter().sum(),
            borrowed: w.cluster.borrowed_bytes_of(NodeId(i as u16)),
            lent: w.cluster.lent_bytes_of(NodeId(i as u16)),
            subleased: w.cluster.subleased_bytes_of(NodeId(i as u16)),
        })
        .collect();
    // Denials accumulate incrementally: only timeline entries recorded
    // since the previous sample are scanned, keeping a sample O(new
    // events) instead of O(whole run) — the full-scan version showed up
    // in the profile bin's own overhead gate.
    let World {
        elastic,
        denied_scan,
        denied_counts,
        ..
    } = w;
    if let Some(tier) = elastic {
        let events = tier.manager.timeline().events();
        for (_, e) in &events[*denied_scan..] {
            if e.kind.is_denial() {
                if let Some(slot) = denied_counts.get_mut(e.tenant as usize) {
                    *slot += 1;
                }
            }
        }
        *denied_scan = events.len();
    }
    let tenants = w
        .stats
        .iter()
        .enumerate()
        .map(|(class, st)| TenantCounters {
            admitted: st.admitted,
            shed: st.shed_rate + st.shed_overload + st.shed_backpressure + st.shed_crash,
            denied: w.denied_counts[class],
            quota_bytes: w
                .elastic
                .as_ref()
                .and_then(|t| t.manager.tenant_ledger().get(class).copied())
                .unwrap_or(0),
        })
        .collect();
    // Link gauges exist only on congested-fabric runs; the scalar
    // model leaves the vector empty and the exported artifact
    // byte-identical to pre-congestion runs.
    let mut links = Vec::new();
    if M::ENABLED {
        w.remote.link_gauges(&mut links);
    }
    SampleRow {
        nodes,
        tenants,
        links,
        slab_live: slab_live as u32,
        pending_events: pending as u32,
    }
}

/// Open-loop arrival event: issue one request, schedule the next at the
/// process's instantaneous rate (constant for Poisson, phase-dependent
/// for bursty traffic).
fn open_arrival<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
) {
    let mut now = s.now();
    loop {
        issue(w, s, now);
        if w.issued >= w.target {
            return;
        }
        let (base, burst) = w.open_gaps.expect("open loop has a rate");
        // Phase selection mirrors ArrivalProcess::rate_at exactly; the
        // per-phase mean gaps were precomputed from the same rates.
        let mean = if w.arrival.in_burst(now) { burst } else { base };
        let gap = exponential(&mut w.rng, mean);
        let at = now.checked_add(gap).expect("simulated time overflow");
        // Lookahead fusion: when the next arrival lands strictly before
        // every pending event it would be the very next pop anyway —
        // process it in place instead of round-tripping it through the
        // queue. (Strictly: on a timestamp tie the pending event's older
        // sequence number wins, so a tied arrival must be enqueued.)
        // The RNG draw order and all model state transitions are
        // identical either way; only the queue traffic disappears.
        match s.next_event_time() {
            Some(next) if at >= next => {
                s.schedule_event_at(at, EngineEvent::Arrival);
                return;
            }
            _ => {
                s.advance_to(at);
                w.fused += 1;
                if P::ENABLED {
                    w.probe.on_fused_arrival(at);
                }
                now = at;
            }
        }
    }
}

/// Closed-loop session event: issue the session's next request.
fn session_arrival<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
) {
    if w.issued >= w.target {
        return; // session retires
    }
    let now = s.now();
    issue(w, s, now);
}

/// Replay arrival event: re-drive the next recorded request.
fn replay_arrival<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
) {
    let now = s.now();
    let Some(rec) = w.replay.as_mut().and_then(|cur| {
        let rec = cur.records.get(cur.next).copied();
        cur.next += 1;
        rec
    }) else {
        return;
    };
    issue_with(w, s, now, rec.tenant as usize, rec.user);
    let next = w
        .replay
        .as_ref()
        .and_then(|cur| cur.records.get(cur.next))
        .map(|r| Time::from_ns(r.at_ns));
    if let Some(at) = next {
        s.schedule_event_at(at.max(now), EngineEvent::ReplayNext);
    }
}

/// Schedules the closed-loop session's next request, if any remain.
fn schedule_next_session<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
) {
    if let Some(think) = w.think {
        if w.issued < w.target {
            let gap = exponential(&mut w.rng, think);
            s.schedule_event_in(gap, EngineEvent::SessionNext);
        }
    }
}

/// Generates one request (tenant class + user) and runs it through
/// admission. During a bursty process's burst window, a `crowd_share`
/// fraction of arrivals comes from the flash-crowd population instead of
/// the mix's Zipf tail.
fn issue<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    now: Time,
) {
    let class = w.rng.weighted_index_with_total(&w.weights, w.weight_total);
    let user = if let ArrivalProcess::Bursty {
        crowd_users,
        crowd_share,
        ..
    } = w.arrival
    {
        if crowd_users > 0 && w.arrival.in_burst(now) && w.rng.chance(crowd_share) {
            w.rng.gen_range(0..crowd_users)
        } else {
            w.zipf.sample(&mut w.rng)
        }
    } else {
        w.zipf.sample(&mut w.rng)
    };
    issue_with(w, s, now, class, user);
}

/// Routes `user`'s request: home node by population hash, except that a
/// home node whose remote tier is empty defers to a mesh neighbor already
/// holding a lease driven by this tenant (locality: follow the memory).
///
/// With a fault plan armed, a *down* home node is skipped entirely: the
/// session re-routes to the first live mesh neighbor (adjacency order),
/// falling back to the lowest-id live node anywhere — admission on the
/// survivor then decides the request's fate. Only when every node is
/// down does the home stand (the caller sheds the request as a crash
/// loss before admission).
fn route<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &World<'_, P, M, F>,
    class: usize,
    user: u64,
) -> usize {
    let n = w.servers.len();
    let home = (user % n as u64) as usize;
    if F::ENABLED && !w.faults.node_up(home as u16) {
        for &nb in &w.neighbors[home] {
            if w.faults.node_up(nb) {
                return nb as usize;
            }
        }
        if let Some(alive) = (0..n).find(|&i| w.faults.node_up(i as u16)) {
            return alive;
        }
        return home;
    }
    let Some(tier) = &w.elastic else {
        return home;
    };
    if w.servers[home].model.has_remote() {
        return home;
    }
    for &nb in &w.neighbors[home] {
        if (!F::ENABLED || w.faults.node_up(nb)) // never defer onto a dead node
            && tier.tags[nb as usize] == class as u32
            && w.servers[nb as usize].model.has_remote()
        {
            return nb as usize;
        }
    }
    home
}

/// Runs one generated request through per-node admission and dispatch.
fn issue_with<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    now: Time,
    class: usize,
    user: u64,
) {
    let seq = w.issued;
    w.issued += 1;
    let node = route(w, class, user);
    // Total outage: every node is down, so the front door itself is
    // gone — the request is a crash loss, not an admission decision.
    if F::ENABLED && !w.faults.node_up(node as u16) {
        w.stats[class].shed_crash += 1;
        if P::ATTRIB {
            w.probe.on_shed(class as u16, node as u16, 3, now);
        }
        record(
            w,
            seq,
            now,
            class,
            user,
            node,
            RequestOutcome::ShedCrash,
            Time::ZERO,
            0,
        );
        schedule_next_session(w, s);
        return;
    }
    let generation = w
        .elastic
        .as_ref()
        .map(|t| t.newest_generation(node))
        .unwrap_or(0);
    let priority = w.classes[class].priority;
    let over_quota = w
        .elastic
        .as_ref()
        .map(|t| t.over_quota[class])
        .unwrap_or(false);
    match w.admissions[node].on_arrival(now, priority, over_quota) {
        Decision::Shed(reason) => {
            let st = &mut w.stats[class];
            let outcome = match reason {
                ShedReason::RateLimit => {
                    st.shed_rate += 1;
                    RequestOutcome::ShedRate
                }
                ShedReason::Overload => {
                    st.shed_overload += 1;
                    RequestOutcome::ShedOverload
                }
                ShedReason::Backpressure => {
                    st.shed_backpressure += 1;
                    RequestOutcome::ShedBackpressure
                }
            };
            if P::ATTRIB {
                // Slot order mirrors attrib::SHED_LABELS.
                let slot = match reason {
                    ShedReason::RateLimit => 0,
                    ShedReason::Overload => 1,
                    ShedReason::Backpressure => 2,
                };
                w.probe.on_shed(class as u16, node as u16, slot, now);
            }
            record(
                w,
                seq,
                now,
                class,
                user,
                node,
                outcome,
                Time::ZERO,
                generation,
            );
            // A shed closed-loop client backs off one think time and
            // retries with a fresh request.
            schedule_next_session(w, s);
        }
        Decision::Admit => {
            w.stats[class].admitted += 1;
            // The compiled model replays service_time() bit-for-bit
            // (same rng draws) without re-deriving the node-state
            // constants per request; the coin branch feeds attribution
            // and is dead code on the no-op path.
            let (service, is_miss) =
                w.servers[node].service_by_class[class].sample_split(&mut w.service_rng);
            let slot = w.requests.insert(Request {
                seq,
                class: class as u32,
                user,
                node: node as u16,
                arrival: now,
                service,
                generation,
            });
            if P::ATTRIB {
                let remote_ps = w.servers[node].attrib_by_class[class].remote_ps(service, is_miss);
                if w.attrib.len() <= slot as usize {
                    w.attrib.resize(slot as usize + 1, ReqAttrib::default());
                }
                w.attrib[slot as usize] = ReqAttrib {
                    dispatch_at: now,
                    remote_ps,
                    stalled: false,
                };
            }
            dispatch(w, s, slot);
        }
    }
}

/// Appends a trace record if tracing is on.
#[allow(clippy::too_many_arguments)]
fn record<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    seq: u64,
    at: Time,
    class: usize,
    user: u64,
    node: usize,
    outcome: RequestOutcome,
    latency: Time,
    generation: u64,
) {
    if let Some(trace) = &mut w.trace {
        trace.push(RequestRecord {
            seq,
            at_ns: at.as_ns(),
            tenant: class as u32,
            user,
            node: node as u16,
            outcome,
            latency_ns: latency.as_ns(),
            lease_generation: generation,
        });
    }
}

/// Sends an admitted request toward its node, or parks it under
/// backpressure. `slot` indexes the request slab.
fn dispatch<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    slot: u32,
) {
    let now = s.now();
    let req = *w.requests.get(slot);
    let node = req.node as usize;
    // One bounds-checked server borrow for the whole hot path (the
    // other touched fields are disjoint, so the borrows coexist).
    let srv = &mut w.servers[node];
    match srv.qp.post_send(w.req_bytes_by_class[req.class as usize]) {
        Ok(()) => {
            if P::ATTRIB {
                // The request clears the credit gate now; everything
                // since arrival was queue wait (or establish stall).
                w.attrib[slot as usize].dispatch_at = now;
            }
            let fab = if M::ENABLED {
                // Congestion queueing delay over the node↔donor fabric
                // path, charged exactly once — here, when the request
                // actually dispatches, not when a backlogged one parks.
                let fab = w.remote.charge(now, node, req.class as usize);
                if w.fabric_detour.len() <= slot as usize {
                    w.fabric_detour.resize(slot as usize + 1, 0);
                }
                w.fabric_detour[slot as usize] = fab.as_ps();
                fab
            } else {
                Time::ZERO
            };
            let deliver = now + srv.msg_lat_by_class[req.class as usize];
            let best_slot = {
                let slots = &srv.slots;
                let mut best = 0;
                for (i, &t) in slots.iter().enumerate() {
                    if t < slots[best] {
                        best = i;
                    }
                }
                best
            };
            let start = deliver.max(srv.slots[best_slot]);
            let comp = start + req.service + fab;
            srv.slots[best_slot] = comp;
            srv.inflight_by_class[req.class as usize] += 1;
            s.schedule_event_at(comp, EngineEvent::Finish(slot));
        }
        Err(QpairError::NoCredit) | Err(QpairError::QueueFull) => {
            srv.credit_waits += 1;
            if srv.backlog.len() < w.backlog_cap {
                if P::ATTRIB && w.pending_grows[node] > 0 {
                    // The node is waiting on a grow's establish flow:
                    // classify this park as a lease-establish stall.
                    w.attrib[slot as usize].stalled = true;
                }
                srv.backlog.push_back(slot);
            } else {
                // The node is saturated beyond its backlog: drop the
                // request and free its in-flight slot.
                let req = w.requests.take(slot);
                w.stats[req.class as usize].shed_backpressure += 1;
                w.admissions[node].on_completion();
                if P::ATTRIB {
                    w.probe.on_shed(req.class as u16, node as u16, 2, now);
                }
                record(
                    w,
                    req.seq,
                    req.arrival,
                    req.class as usize,
                    req.user,
                    node,
                    RequestOutcome::ShedBackpressure,
                    Time::ZERO,
                    req.generation,
                );
                schedule_next_session(w, s);
            }
        }
        Err(e) => unreachable!("unexpected qpair error: {e:?}"),
    }
}

/// Completion event: account the request, return the credit, and drain
/// the node's backlog.
fn finish<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    slot: u32,
) {
    // A request doomed by its node's crash still fires its Finish on
    // schedule (events cannot be unscheduled), but it accounts as a
    // crash shed: transport credits return, admission and in-flight
    // ledgers close, and nothing lands in the latency histogram — the
    // work died with the node.
    if F::ENABLED && w.doomed.get(slot as usize).copied().unwrap_or(false) {
        w.doomed[slot as usize] = false;
        let req = w.requests.take(slot);
        let class = req.class as usize;
        let node = req.node as usize;
        w.stats[class].shed_crash += 1;
        w.admissions[node].on_completion();
        w.servers[node].inflight_by_class[class] -= 1;
        if P::ATTRIB {
            w.probe.on_shed(class as u16, node as u16, 3, s.now());
        }
        record(
            w,
            req.seq,
            req.arrival,
            class,
            req.user,
            node,
            RequestOutcome::ShedCrash,
            Time::ZERO,
            req.generation,
        );
        let srv = &mut w.servers[node];
        srv.qp.drain_one();
        srv.qp.credit_update(1);
        if let Some(next) = srv.backlog.pop_front() {
            dispatch(w, s, next);
        }
        schedule_next_session(w, s);
        return;
    }
    let req = w.requests.take(slot);
    let now = s.now();
    let latency = now - req.arrival;
    let class = req.class as usize;
    w.stats[class].on_complete(
        latency,
        w.req_bytes_by_class[class] + w.resp_bytes_by_class[class],
    );
    w.completed += 1;
    if now > w.end {
        w.end = now;
    }
    let node = req.node as usize;
    w.admissions[node].on_completion();
    w.servers[node].inflight_by_class[class] -= 1;
    if P::ATTRIB {
        // Telescoping decomposition — every stage is a difference of
        // stamps the engine computed anyway, so the seven stages sum to
        // the end-to-end latency *exactly*, per request, by
        // construction: latency = queue + transport + slot_wait +
        // service, with queue = dispatch_at - arrival, transport the
        // class's fixed QPair latency, service the sampled cost (split
        // local/remote by the compiled per-mille share), and slot_wait
        // the remainder (start - deliver, provably >= 0 because finish
        // fires at start + service and start >= dispatch_at +
        // transport).
        let a = w.attrib[slot as usize];
        let total_ps = latency.as_ps();
        let queue_ps = a.dispatch_at.saturating_sub(req.arrival).as_ps();
        let transport_ps = w.servers[node].msg_lat_by_class[class].as_ps();
        let service_ps = req.service.as_ps();
        // Fabric congestion penalty stamped at dispatch (zero unless
        // the congested model is armed); it extends the completion
        // time, so it must come out of the slot-wait remainder and is
        // booked as detour time — fabric hops beyond the home path.
        let fab_ps = if M::ENABLED {
            w.fabric_detour.get(slot as usize).copied().unwrap_or(0)
        } else {
            0
        };
        let slot_wait_ps = total_ps - queue_ps - transport_ps - service_ps - fab_ps;
        let remote_ps = a.remote_ps.min(service_ps);
        let mut stage_ps = [0u64; venice_telemetry::STAGES];
        stage_ps[if a.stalled {
            STAGE_ESTABLISH_STALL
        } else {
            STAGE_QUEUE_WAIT
        }] = queue_ps;
        let home = (req.user % w.servers.len() as u64) as usize;
        stage_ps[if node == home {
            STAGE_TRANSPORT
        } else {
            STAGE_DETOUR
        }] = transport_ps;
        stage_ps[STAGE_DETOUR] += fab_ps;
        stage_ps[STAGE_SLOT_WAIT] = slot_wait_ps;
        stage_ps[STAGE_SERVICE_LOCAL] = service_ps - remote_ps;
        stage_ps[STAGE_SERVICE_REMOTE] = remote_ps;
        w.probe.on_request(
            class as u16,
            node as u16,
            StageBreakdown { stage_ps, total_ps },
        );
    }
    record(
        w,
        req.seq,
        req.arrival,
        class,
        req.user,
        node,
        RequestOutcome::Completed,
        latency,
        req.generation,
    );
    let srv = &mut w.servers[node];
    srv.qp.drain_one();
    srv.qp.credit_update(1);
    if let Some(next) = srv.backlog.pop_front() {
        dispatch(w, s, next);
    }
    schedule_next_session(w, s);
}

/// The tenant class with the most queued *and in-service* work on
/// `node` (ties to the lowest index), used to attribute a lease to the
/// tenant driving it. Must mirror the grow trigger's demand signal —
/// backlog plus busy slots — or grows fired by pure in-service pressure
/// would have no class to attribute to.
///
/// The argmax is computed in place — per class, in-flight count plus a
/// scan of the (bounded) backlog — instead of cloning
/// `inflight_by_class` into a scratch `Vec` every lease tick.
fn dominant_class<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &World<'_, P, M, F>,
    node: usize,
) -> Option<usize> {
    let srv = &w.servers[node];
    let mut best: Option<(usize, u32)> = None;
    for (class, &inflight) in srv.inflight_by_class.iter().enumerate() {
        let queued = srv
            .backlog
            .iter()
            .filter(|&&slot| w.requests.get(slot).class as usize == class)
            .count() as u32;
        let count = inflight + queued;
        if count > 0 && best.map(|(_, b)| count > b).unwrap_or(true) {
            best = Some((class, count));
        }
    }
    best.map(|(class, _)| class)
}

/// Recompiles every tenant class's service model against `node`'s
/// current [`NodeModel`]. Called from the three places a node's remote
/// tier moves (establish lands, shrink, revoke lands) — rare events, so
/// the per-request path never re-derives model constants.
fn recompile_service<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    node: usize,
) {
    let model = w.servers[node].model;
    for (class, slot) in w
        .classes
        .iter()
        .zip(w.servers[node].service_by_class.iter_mut())
    {
        *slot = class.profile.compile(&model);
    }
    if P::ATTRIB {
        // The remote share moves with the same node state; keep the
        // attribution model in lockstep with the service model.
        let srv = &mut w.servers[node];
        for (class, slot) in w.classes.iter().zip(srv.attrib_by_class.iter_mut()) {
            *slot = class.profile.compile_attrib(&model);
        }
    }
}

/// Re-points `node`'s fabric route at its newest visible lease's donor
/// (`None` when the node holds no remote tier) — the compiled-path
/// analog of [`recompile_service`], called from the same places a
/// node's remote tier moves so the congested model always charges the
/// path the node is actually serving from. A no-op (compiled away)
/// under the scalar model.
fn sync_fabric_route<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    node: usize,
) {
    if !M::ENABLED {
        return;
    }
    let donor = w
        .elastic
        .as_ref()
        .and_then(|t| t.leases[node].last())
        .map(|&(_, lease)| lease.donor.0);
    w.remote.set_route(node, donor);
}

/// Applies a donor-demanded revoke once its modeled teardown flow
/// completes: the grant is pulled back through the real Monitor–Node
/// path ([`Cluster::revoke`]), the manager's ledger is repaid, and the
/// recipient's visible capacity drops. Until this fires the recipient
/// keeps serving from the window — a revoke notice takes effect when the
/// unmap lands, not when the donor asks.
#[allow(clippy::too_many_arguments)]
fn apply_revoke<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    now: Time,
    donor: u16,
    recipient: usize,
    generation: u64,
    lease: MemoryLease,
    priority: Priority,
) {
    w.cluster
        .revoke(NodeId(donor), lease.grant_id)
        .expect("revoked lease releases cleanly");
    let tier = w.elastic.as_mut().expect("elastic run");
    tier.manager
        .confirm_revoke(now, donor, recipient as u16, generation, priority);
    let model = &mut w.servers[recipient].model;
    model.remote_bytes = model.remote_bytes.saturating_sub(lease.bytes);
    recompile_service(w, recipient);
    sync_fabric_route(w, recipient);
    // The reclaimed pool speeds the donor back up — the whole point of
    // a cost-aware revoke.
    sync_donor_pressure(w, donor);
    if P::ENABLED {
        let node = recipient as u16;
        w.probe
            .span_close(SpanKind::Teardown, node, generation, now);
        w.probe.span_close(SpanKind::Active, node, generation, now);
    }
}

/// Drains every fault transition due now and applies it, then schedules
/// the next tick at the plan's next edge. Reached only when a
/// [`FaultPlan`] is armed — `NoFaults` never schedules a `FaultTick`.
fn fault_tick<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
) {
    let now = s.now();
    while let Some(tr) = w.faults.pop_due(now) {
        match tr {
            FaultTransition::NodeDown(n) => crash_node(w, s, n as usize),
            FaultTransition::NodeUp(n) => recover_node(w, n as usize, now),
            FaultTransition::LinkDown(a, b) => w.remote.set_link_state(a, b, false),
            FaultTransition::LinkUp(a, b) => w.remote.set_link_state(a, b, true),
            FaultTransition::Loss(a, b, per_mille) => w.remote.set_link_loss(a, b, per_mille),
        }
    }
    if let Some(at) = w.faults.next_at() {
        s.schedule_event_at(at, EngineEvent::FaultTick);
    }
}

/// Fail-stops `node`: sheds its backlog, dooms its in-service requests
/// (their `Finish` events account as crash sheds when they fire), wipes
/// its service slots, and fails over every lease touching it — the
/// cluster purges the grants without executing a teardown on the dead
/// node, the manager unwinds its ledgers, and surviving recipients
/// immediately re-establish on a live donor, paying the full modeled
/// establish latency.
fn crash_node<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    node: usize,
) {
    let now = s.now();
    w.fault_seq += 1;
    w.node_fault_seq[node] = w.fault_seq;
    if P::ENABLED {
        w.probe
            .span_open(SpanKind::Fault, node as u16, w.fault_seq, now);
    }
    // Backlogged requests were admitted but never cleared the credit
    // gate: they die with the node, holding no transport credit.
    while let Some(slot) = w.servers[node].backlog.pop_front() {
        let req = w.requests.take(slot);
        let class = req.class as usize;
        w.stats[class].shed_crash += 1;
        w.admissions[node].on_completion();
        if P::ATTRIB {
            w.probe.on_shed(class as u16, node as u16, 3, now);
        }
        record(
            w,
            req.seq,
            req.arrival,
            class,
            req.user,
            node,
            RequestOutcome::ShedCrash,
            Time::ZERO,
            req.generation,
        );
        schedule_next_session(w, s);
    }
    // In-service requests cannot be unscheduled — their Finish events
    // are already in the queue — so they are doomed in place and
    // account as crash sheds when they fire.
    for slot in w.requests.live_slots_on(node as u16) {
        if w.doomed.len() <= slot as usize {
            w.doomed.resize(slot as usize + 1, false);
        }
        w.doomed[slot as usize] = true;
    }
    // The reboot clears the machine: whatever occupancy the slots held
    // died with it.
    for t in w.servers[node].slots.iter_mut() {
        *t = now;
    }
    if w.elastic.is_some() {
        // Every *visible* grant touching the dead node fails over. A
        // grant still mid-establish or mid-teardown is not on any
        // stack; its own completion event settles it against the
        // liveness state at fire time.
        let tier = w.elastic.as_mut().expect("checked above");
        let mut lost: Vec<(usize, u64, MemoryLease)> = Vec::new();
        for recipient in 0..tier.leases.len() {
            let mut idx = 0;
            while idx < tier.leases[recipient].len() {
                let (generation, lease) = tier.leases[recipient][idx];
                if lease.donor.0 as usize == node || recipient == node {
                    tier.leases[recipient].remove(idx);
                    lost.push((recipient, generation, lease));
                } else {
                    idx += 1;
                }
            }
        }
        for (recipient, generation, lease) in lost {
            let donor = lease.donor.0;
            w.cluster
                .purge(lease.grant_id)
                .expect("visible grant is on the cluster ledger");
            let tier = w.elastic.as_mut().expect("checked above");
            let tag = tier.tags[recipient];
            let priority = if tag == NO_TAG {
                Priority::Normal
            } else {
                w.classes[tag as usize].priority
            };
            tier.manager
                .confirm_failover(now, donor, recipient as u16, generation, priority);
            let model = &mut w.servers[recipient].model;
            model.remote_bytes = model.remote_bytes.saturating_sub(lease.bytes);
            recompile_service(w, recipient);
            sync_fabric_route(w, recipient);
            sync_donor_pressure(w, donor);
            if P::ENABLED {
                w.probe
                    .span_close(SpanKind::Active, recipient as u16, generation, now);
            }
            if recipient != node {
                // A surviving recipient lost its donor: open its
                // degraded window and re-establish on a live donor
                // right away (the dead node's own chunks wait for the
                // ordinary lease tick after it reboots).
                if P::ENABLED {
                    w.probe
                        .span_open(SpanKind::Failover, recipient as u16, generation, now);
                }
                regrow_after_failover(w, s, now, recipient as u16, generation);
            }
        }
    } else {
        // Static provisioning has no manager to re-establish through:
        // the Venice-stack grants touching the dead node are purged and
        // the affected tiers stay degraded — the gap the
        // elastic-with-failover comparison measures. Baseline stacks
        // never borrowed through the Monitor-Node flow, so the purge
        // finds nothing and their pre-partitioned tiers ride through.
        let purged = w
            .cluster
            .purge_node(venice::NodeId(node as u16))
            .expect("purging a node's grants cannot fail");
        for lease in purged {
            let recipient = lease.recipient.0 as usize;
            let model = &mut w.servers[recipient].model;
            model.remote_bytes = model.remote_bytes.saturating_sub(lease.bytes);
            recompile_service(w, recipient);
            sync_fabric_route(w, recipient);
        }
    }
}

/// Reboots `node` empty: the fault span closes, and capacity returns
/// through the ordinary paths — routing starts offering it traffic
/// again immediately, and (under elastic leases) the next lease tick
/// re-grows its remote tier from the floor.
fn recover_node<P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'_, P, M, F>,
    node: usize,
    now: Time,
) {
    if P::ENABLED {
        w.probe
            .span_close(SpanKind::Fault, node as u16, w.node_fault_seq[node], now);
    }
}

/// Re-establishes a replacement for a lease lost to its donor's crash:
/// the ordinary borrow/measure/confirm flow against a *live* donor,
/// paying the full modeled establish latency before the replacement
/// becomes visible. On refusal the denial is recorded and the next
/// lease tick retries through the watermark path.
fn regrow_after_failover<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
    now: Time,
    node: u16,
    lost_generation: u64,
) {
    let tenant = w.elastic.as_ref().expect("elastic run").tags[node as usize];
    let priority = if tenant == NO_TAG {
        Priority::Normal
    } else {
        w.classes[tenant as usize].priority
    };
    let donor_ok = |d: venice::NodeId| w.faults.node_up(d.0) && w.remote.donor_ok(now, node, d.0);
    let tier = w.elastic.as_mut().expect("elastic run");
    if let Some((generation, lease, lat)) = grow_lease(
        &mut w.cluster,
        &mut tier.manager,
        now,
        node,
        tenant,
        false,
        priority,
        None,
        &donor_ok,
    ) {
        s.schedule_event_in(
            lease.setup_time,
            EngineEvent::LeaseEstablished(Box::new(LeaseEstablish {
                node,
                generation,
                lease,
                class_tag: tenant,
                lat,
                failover_of: lost_generation,
            })),
        );
        sync_donor_pressure(w, lease.donor.0);
        if P::ENABLED {
            w.probe
                .span_open(SpanKind::Establish, node, generation, now);
        }
        if P::ATTRIB {
            w.pending_grows[node as usize] += 1;
        }
    }
}

/// Periodic elastic-lease control tick: sample per-node queue depth and
/// donor pressure, let the manager decide, and apply
/// grows/shrinks/revokes against the live cluster.
fn lease_tick<'a, P: Probe, M: RemoteModel, F: FaultModel>(
    w: &mut World<'a, P, M, F>,
    s: &mut Sched<'a, P, M, F>,
) {
    // A tick scheduled while the last requests were in flight can fire
    // after the final completion; acting there would put lease events
    // past the report's duration (skewing the time-weighted mean), so a
    // finished run's trailing tick is a no-op.
    if w.issued >= w.target && w.total_inflight() == 0 {
        return;
    }
    let now = s.now();
    // Chunks and bytes each node has lent out, from the cluster's live
    // ledger (includes grants still in their recipient-side establish
    // flow — the donor's memory is committed either way).
    let mut lent = vec![0u32; w.servers.len()];
    let mut lent_bytes = vec![0u64; w.servers.len()];
    for lease in w.cluster.active_leases() {
        lent[lease.donor.0 as usize] += 1;
        lent_bytes[lease.donor.0 as usize] += lease.bytes;
    }
    let signals: Vec<NodeSignal> = w
        .servers
        .iter()
        .enumerate()
        .map(|(i, srv)| {
            let busy = srv.slots.iter().filter(|&&t| t > now).count();
            let tenant = dominant_class(w, i).map(|c| c as u32).unwrap_or(NO_TAG);
            NodeSignal {
                depth: (srv.backlog.len() + busy) as u32,
                lent_chunks: lent[i],
                lent_pressure: (lent_bytes[i] as f64 / LENDABLE_PER_NODE as f64).min(1.0),
                tenant,
                priority: if tenant == NO_TAG {
                    Priority::Normal
                } else {
                    w.classes[tenant as usize].priority
                },
            }
        })
        .collect();
    let tier = w.elastic.as_mut().expect("lease tick without elastic tier");
    let actions = tier.manager.tick(now, &signals);
    for action in actions {
        match action {
            LeaseAction::Grow { node, predictive } => {
                apply_grow(w, s, now, &signals, node, predictive, None);
            }
            // A market match borrows through the identical flow; it
            // differs only in whose quota the confirm charges.
            LeaseAction::Sublease { node, lessor } => {
                apply_grow(w, s, now, &signals, node, false, Some(lessor));
            }
            LeaseAction::Shrink { node } => {
                let tier = w.elastic.as_mut().expect("checked above");
                let tag = tier.tags[node as usize];
                let priority = if tag == NO_TAG {
                    Priority::Normal
                } else {
                    w.classes[tag as usize].priority
                };
                // Only a *visible* lease can be released — a grow still
                // in its establish flow is not on the stack yet, and a
                // revoke-pending chunk is already off this stack. The
                // popped lease's generation names the chunk for the
                // manager: its own newest may be the revoke-pending one.
                if let Some((generation, lease)) = tier.leases[node as usize].pop() {
                    w.cluster
                        .release(lease)
                        .expect("visible lease releases cleanly");
                    tier.manager.confirm_shrink(now, node, generation, priority);
                    let model = &mut w.servers[node as usize].model;
                    model.remote_bytes = model.remote_bytes.saturating_sub(lease.bytes);
                    recompile_service(w, node as usize);
                    sync_fabric_route(w, node as usize);
                    // The release repays the donor's pool immediately.
                    sync_donor_pressure(w, lease.donor.0);
                    if P::ENABLED {
                        w.probe.span_close(SpanKind::Active, node, generation, now);
                    }
                }
                // When nothing is visible (the node's only chunks are
                // still establishing) the decision is surrendered: the
                // manager keeps its chunk count and a later calm spell
                // re-triggers the release.
            }
            LeaseAction::Revoke { donor } => {
                // The pressured donor demands its newest *visible* lent
                // chunk back. A grant still establishing on its
                // recipient cannot be torn down mid-flow: the demand is
                // denied — on the timeline, since the revoke cooldown
                // was already charged — and donor pressure re-triggers
                // it once something lands.
                let tier = w.elastic.as_mut().expect("checked above");
                let Some((recipient, idx, generation)) = tier.newest_visible_from(donor) else {
                    tier.manager
                        .deny_revoke(now, donor, signals[donor as usize].priority);
                    continue;
                };
                // Off the visible stack immediately — the recipient may
                // not release (or double-revoke) a chunk already being
                // reclaimed — but the capacity and the ledger move only
                // when the modeled teardown flow completes.
                let (_, lease) = tier.leases[recipient].remove(idx);
                let teardown = w.cluster.flow.teardown(lease.bytes);
                let priority = signals[donor as usize].priority;
                s.schedule_event_in(
                    teardown,
                    EngineEvent::RevokeTorndown(Box::new(RevokeTeardown {
                        donor,
                        recipient: recipient as u16,
                        generation,
                        lease,
                        priority,
                    })),
                );
                if P::ENABLED {
                    w.probe
                        .span_open(SpanKind::Teardown, recipient as u16, generation, now);
                }
            }
        }
    }
    // Refresh the per-class quota flags the admission layer reads: a
    // class at its byte quota is clamped to the over-quota share until
    // its ledger drains (shrinks/revokes repay it).
    let tier = w.elastic.as_mut().expect("checked above");
    for (class, flag) in tier.over_quota.iter_mut().enumerate() {
        *flag = tier.manager.quota_blocks(class as u32);
    }
    // Keep ticking while the run is alive (arrivals pending or requests
    // in flight); afterwards the queue drains and the kernel stops.
    if w.issued < w.target || w.total_inflight() > 0 {
        let interval = w
            .elastic
            .as_ref()
            .expect("checked above")
            .manager
            .config()
            .tick_interval;
        s.schedule_event_in(interval, EngineEvent::LeaseTick);
    }
}

/// Everything one engine execution produced: the report, plus whatever
/// the [`Run`] builder armed.
#[derive(Debug)]
pub struct RunOutput<P: Probe = NoopProbe> {
    /// The run's summary report — byte-identical for a given config and
    /// seed regardless of which probe or capture options were armed.
    pub report: LoadReport,
    /// Per-request records; `Some` exactly when [`Run::traced`] was
    /// requested.
    pub trace: Option<Trace>,
    /// Kernel loop counters (always collected — they read state the
    /// kernel tracks anyway).
    pub metrics: EngineMetrics,
    /// The probe threaded through the run, carrying whatever it
    /// observed ([`NoopProbe`] unless [`Run::probe`] armed another).
    pub probe: P,
}

/// Builder over the engine's single entry point.
///
/// Every way of running the engine — plain, metered, probed, traced,
/// replaying a recorded trace — is one execution with different
/// capture options, so they compose instead of multiplying entry
/// points:
///
/// ```
/// use venice_loadgen::engine::{LoadgenConfig, Run};
/// use venice_loadgen::tenants::TenantMix;
///
/// let config = LoadgenConfig {
///     requests: 2_000,
///     ..LoadgenConfig::new(7, TenantMix::web_frontend())
/// };
/// let out = Run::new(&config).traced().execute();
/// let trace = out.trace.expect("traced run captures a trace");
/// // Re-drive the recorded arrivals through a fresh run.
/// let replayed = Run::new(&config).replay(&trace).execute();
/// assert_eq!(replayed.report.issued, out.report.issued);
/// ```
///
/// The former free functions (`run`, `run_metered`, `run_probed`,
/// `run_traced`, `replay`) survive as deprecated one-line wrappers.
#[derive(Debug)]
pub struct Run<'c, 't, P: Probe = NoopProbe> {
    config: &'c LoadgenConfig,
    probe: P,
    traced: bool,
    replay: Option<&'t Trace>,
    faults: Option<FaultPlan>,
    shards: usize,
}

impl<'c> Run<'c, 'static, NoopProbe> {
    /// Starts a builder for one execution of `config`.
    pub fn new(config: &'c LoadgenConfig) -> Self {
        Run {
            config,
            probe: NoopProbe,
            traced: false,
            replay: None,
            faults: None,
            shards: 1,
        }
    }
}

impl<'c, 't, P: Probe> Run<'c, 't, P> {
    /// Threads `probe` through the engine's hook sites; the output
    /// returns it carrying whatever it observed. The report stays
    /// byte-identical to an unprobed run — probes observe the event
    /// stream, they never perturb it — which the `profile` bench bin
    /// gates.
    pub fn probe<Q: Probe>(self, probe: Q) -> Run<'c, 't, Q> {
        Run {
            config: self.config,
            probe,
            traced: self.traced,
            replay: self.replay,
            faults: self.faults,
            shards: self.shards,
        }
    }

    /// Arms `plan`'s deterministic fault schedule: node crashes, link
    /// flaps, and packet loss fire at their scheduled instants, leases
    /// on dead donors fail over, and requests on a crashed node shed as
    /// crash losses. Without this arm the engine monomorphizes over
    /// [`NoFaults`] and stays instruction-for-instruction the pre-chaos
    /// engine.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Captures the per-request [`Trace`] into the output.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Requests the kernel-level [`EngineMetrics`]. Metrics are always
    /// collected (they read counters the kernel tracks anyway), so this
    /// exists purely to let call sites state the intent that
    /// [`RunOutput::metrics`] is what they are after.
    pub fn metered(self) -> Self {
        self
    }

    /// Re-drives `trace` instead of drawing fresh traffic: arrival
    /// instants, tenant classes, and users come from the records;
    /// admission, routing, service, and (if configured) elastic leasing
    /// run live under the config. `config.arrival` and
    /// `config.requests` are ignored. The trace is borrowed for the
    /// duration of the run, not cloned.
    pub fn replay<'u>(self, trace: &'u Trace) -> Run<'c, 'u, P> {
        Run {
            config: self.config,
            probe: self.probe,
            traced: self.traced,
            replay: Some(trace),
            faults: self.faults,
            shards: self.shards,
        }
    }

    /// Runs the simulation as `n` per-node-group shards on worker
    /// threads, synchronizing at conservative lookahead barriers
    /// ([`venice_sim::shard`]). Output is **byte-identical** to the
    /// default single-shard run for every configuration — the gate the
    /// `prop_sharded` suite and the CI scaling job enforce — so the only
    /// observable difference is wall clock.
    ///
    /// Shard counts are clamped to the node count; `n <= 1` selects the
    /// sequential engine exactly as if this arm were never called.
    /// Configurations whose cross-shard interactions leave no safe
    /// lookahead window (elastic leases, modeled fabric paths, fault
    /// plans, closed-loop sessions, probes, replay) also execute
    /// sequentially rather than approximately — byte-identity is never
    /// traded for speed.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Executes the run.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (zero
    /// requests, zero concurrency, an empty mesh, or elastic leases on
    /// a stack without hot-plug support), or if a replay trace is empty
    /// or names a tenant index outside the configured mix.
    pub fn execute(self) -> RunOutput<P> {
        if let Some(trace) = self.replay {
            assert!(!trace.is_empty(), "cannot replay an empty trace");
            let classes = self.config.mix.classes.len() as u32;
            if let Some(bad) = trace.records.iter().find(|r| r.tenant >= classes) {
                panic!(
                    "trace record seq {} names tenant {} but mix `{}` has only {} classes",
                    bad.seq, bad.tenant, self.config.mix.name, classes
                );
            }
        }
        let (report, trace, metrics, probe) = if self.shards > 1 {
            crate::sharded::run_sharded_or_sequential(
                self.config,
                self.replay,
                self.traced,
                self.probe,
                self.faults,
                self.shards,
            )
        } else {
            run_full(
                self.config,
                self.replay,
                self.traced,
                self.probe,
                self.faults,
            )
        };
        RunOutput {
            report,
            trace,
            metrics,
            probe,
        }
    }
}

/// Runs one complete load-generation experiment.
///
/// # Panics
///
/// Panics if the configuration is internally inconsistent (zero requests,
/// zero concurrency, an empty mesh, or elastic leases on a stack without
/// hot-plug support).
#[deprecated(note = "use `Run::new(config).execute().report`")]
pub fn run(config: &LoadgenConfig) -> LoadReport {
    Run::new(config).execute().report
}

/// Runs one experiment and additionally returns the kernel-level
/// [`EngineMetrics`] (events executed, peak event-queue depth) the
/// `throughput` bench reports.
///
/// # Panics
///
/// As [`Run::execute`].
#[deprecated(note = "use `Run::new(config).metered().execute()`")]
pub fn run_metered(config: &LoadgenConfig) -> (LoadReport, EngineMetrics) {
    let out = Run::new(config).metered().execute();
    (out.report, out.metrics)
}

/// Runs one experiment with `probe` threaded through the engine's hook
/// sites, returning the probe alongside the report.
///
/// # Panics
///
/// As [`Run::execute`].
#[deprecated(note = "use `Run::new(config).probe(probe).execute()`")]
pub fn run_probed<P: Probe>(config: &LoadgenConfig, probe: P) -> (LoadReport, P) {
    let out = Run::new(config).probe(probe).execute();
    (out.report, out.probe)
}

/// Runs one experiment and captures the per-request [`Trace`].
///
/// # Panics
///
/// As [`Run::execute`].
#[deprecated(note = "use `Run::new(config).traced().execute()`")]
pub fn run_traced(config: &LoadgenConfig) -> (LoadReport, Trace) {
    let out = Run::new(config).traced().execute();
    (out.report, out.trace.expect("tracing was requested"))
}

/// Re-drives a recorded trace through the engine ([`Run::replay`]).
///
/// # Panics
///
/// As [`Run::execute`].
#[deprecated(note = "use `Run::new(config).replay(trace).execute().report`")]
pub fn replay(config: &LoadgenConfig, trace: &Trace) -> LoadReport {
    Run::new(config).replay(trace).execute().report
}

/// Topology and per-node transport built once at setup: the composed
/// cluster, its mesh adjacency, one gateway→node [`QueuePair`] per
/// node, each pair's 64 B control-message latency, and the per-(node,
/// tenant class) request-message latency table. Extracted so the
/// sequential engine and the sharded driver ([`crate::sharded`]) build
/// their worlds through the **same** code — the two can never drift.
pub(crate) struct Transport {
    pub(crate) cluster: Cluster,
    pub(crate) neighbors: Vec<Vec<u16>>,
    pub(crate) qps: Vec<QueuePair>,
    pub(crate) qpair_lat: Vec<Time>,
    pub(crate) msg_lat: Vec<Vec<Time>>,
}

/// Builds the cluster and the per-node transport (steps 1–2 of a run).
///
/// # Panics
///
/// Panics if the mesh is empty or exceeds the `u16` `NodeId` space.
pub(crate) fn build_transport(config: &LoadgenConfig) -> Transport {
    let (dx, dy, dz) = config.mesh;
    let cluster = Cluster::mesh(dx, dy, dz, 1 << 30, LENDABLE_PER_NODE);
    let n = cluster.len();
    let neighbors: Vec<Vec<u16>> = cluster
        .nodes
        .iter()
        .map(|node| node.agent.neighbors.iter().map(|id| id.0).collect())
        .collect();
    let gateway = NodeId(0);
    let path = cluster.path.clone();
    let mut qpair_lat = Vec::with_capacity(n);
    let mut qps = Vec::with_capacity(n);
    let mut msg_lat = Vec::with_capacity(n);
    for i in 0..n as u16 {
        let mut qp = QueuePair::new(gateway, NodeId(i), QpairConfig::on_chip());
        qpair_lat.push(
            qp.message_latency(&path, 64)
                .expect("64 B control message fits any qpair"),
        );
        msg_lat.push(
            config
                .mix
                .classes
                .iter()
                .map(|class| {
                    qp.message_latency(&path, class.profile.request_bytes())
                        .expect("request payloads are bounded")
                })
                .collect::<Vec<Time>>(),
        );
        qps.push(qp);
    }
    Transport {
        cluster,
        neighbors,
        qps,
        qpair_lat,
        msg_lat,
    }
}

/// Provisions the remote tier for a **static** (non-elastic) run: the
/// PR 1 one-shot borrow flow for the Venice stack, or a pre-partitioned
/// tier at the baseline stack's per-miss cost. Returns the per-node
/// models plus the `(remote_leases, borrow_failures)` counters.
///
/// # Panics
///
/// Panics if the config carries an elastic lease policy — the elastic
/// bootstrap stays inline in the sequential engine.
pub(crate) fn provision_static<M: RemoteModel>(
    config: &LoadgenConfig,
    cluster: &mut Cluster,
    qpair_lat: &[Time],
    remote: &mut M,
) -> (Vec<NodeModel>, u64, u64) {
    assert!(config.lease.is_none(), "static provisioning only");
    let n = cluster.len();
    let mut remote_leases = 0u64;
    let mut borrow_failures = 0u64;
    let mut models = Vec::with_capacity(n);
    match config.stack {
        RemoteStack::VeniceCrma => {
            // Static: the PR 1 one-shot provisioning path. The donor
            // pressure term is a lease-policy knob, so static tiers
            // model lending as free (as they always have).
            for id in 0..n as u16 {
                let model = if config.remote_memory_per_node > 0 {
                    match cluster.borrow_memory(NodeId(id), config.remote_memory_per_node) {
                        Ok(lease) => {
                            let lat = measure_crma(cluster, NodeId(id), lease.local_base);
                            remote_leases += 1;
                            if M::ENABLED {
                                remote.set_route(id as usize, Some(lease.donor.0));
                            }
                            NodeModel {
                                local_miss: LOCAL_MISS,
                                remote_miss: lat,
                                remote_bytes: lease.bytes,
                                full_bytes: lease.bytes,
                                lent_bytes: 0,
                                lendable_bytes: LENDABLE_PER_NODE,
                                lent_slowdown: 0.0,
                            }
                        }
                        Err(_) => {
                            borrow_failures += 1;
                            NodeModel::local_only(LOCAL_MISS)
                        }
                    }
                } else {
                    NodeModel::local_only(LOCAL_MISS)
                };
                models.push(model);
            }
        }
        stack => {
            // A baseline stack: a static remote partition reached through
            // the commodity path's per-miss cost — no Monitor-Node flow,
            // no hot-plug, identical traffic.
            for &qp_lat in qpair_lat {
                let model = if config.remote_memory_per_node > 0 {
                    NodeModel {
                        local_miss: LOCAL_MISS,
                        remote_miss: stack.remote_miss(Time::ZERO, qp_lat),
                        remote_bytes: config.remote_memory_per_node,
                        full_bytes: config.remote_memory_per_node,
                        lent_bytes: 0,
                        lendable_bytes: 0,
                        lent_slowdown: 0.0,
                    }
                } else {
                    NodeModel::local_only(LOCAL_MISS)
                };
                models.push(model);
            }
        }
    }
    (models, remote_leases, borrow_failures)
}

/// Assembles the per-node [`Server`]s: transport pair, service slots,
/// and each tenant class's service model compiled against the node's
/// provisioned [`NodeModel`] (step 4 of a run).
pub(crate) fn build_servers(
    config: &LoadgenConfig,
    qps: Vec<QueuePair>,
    models: &[NodeModel],
    msg_lat: Vec<Vec<Time>>,
    attrib: bool,
) -> Vec<Server> {
    qps.into_iter()
        .zip(models)
        .zip(msg_lat)
        .map(|((qp, &model), msg_lat_by_class)| Server {
            qp,
            slots: vec![Time::ZERO; config.per_node_concurrency as usize],
            backlog: VecDeque::new(),
            model,
            credit_waits: 0,
            inflight_by_class: vec![0; config.mix.classes.len()],
            msg_lat_by_class,
            service_by_class: config
                .mix
                .classes
                .iter()
                .map(|class| class.profile.compile(&model))
                .collect(),
            attrib_by_class: if attrib {
                config
                    .mix
                    .classes
                    .iter()
                    .map(|class| class.profile.compile_attrib(&model))
                    .collect()
            } else {
                Vec::new()
            },
        })
        .collect()
}

/// The lease summary of a static (never-changing) remote tier.
pub(crate) fn static_lease_summary(
    config: &LoadgenConfig,
    servers: &[Server],
    borrow_failures: u64,
) -> LeaseSummary {
    // A static tier never changes after setup, so the models still hold
    // exactly what was provisioned — including the power-of-two
    // rounding the borrow flow applies, which the configured
    // `remote_memory_per_node` would understate.
    let granted: u64 = servers.iter().map(|s| s.model.remote_bytes).sum();
    // Only the Venice stack actually borrows: baseline stacks mount a
    // pre-partitioned tier without the Monitor-Node flow, so their
    // summary shows the provisioned footprint (peak/mean) but zero
    // lease activity.
    let grows = if config.stack == RemoteStack::VeniceCrma {
        servers.iter().filter(|s| s.model.has_remote()).count() as u64
    } else {
        0
    };
    LeaseSummary {
        denials: borrow_failures,
        ..LeaseSummary::static_tier(grows, granted)
    }
}

/// Rolls the per-tenant accumulators up into the final [`LoadReport`]
/// (step 6 of a run). Both the sequential engine and the sharded driver
/// summarize through this one function, so a report field added later
/// cannot be aggregated two different ways.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    config: &LoadgenConfig,
    nodes: u16,
    duration: Time,
    issued: u64,
    completed: u64,
    credit_waits: u64,
    remote_leases: u64,
    borrow_failures: u64,
    lease: LeaseSummary,
    classes: &[TenantClass],
    stats: &[Stats],
) -> LoadReport {
    let mut total_hist = LogHistogram::new();
    let mut total_bytes = 0u64;
    let mut admitted = 0u64;
    let (mut shed_rate, mut shed_overload, mut shed_backpressure, mut shed_crash) =
        (0u64, 0u64, 0u64, 0u64);
    let mut tenants = Vec::with_capacity(classes.len());
    for (class, st) in classes.iter().zip(stats) {
        total_hist.merge(&st.hist);
        total_bytes += st.bytes;
        admitted += st.admitted;
        shed_rate += st.shed_rate;
        shed_overload += st.shed_overload;
        shed_backpressure += st.shed_backpressure;
        shed_crash += st.shed_crash;
        tenants.push(TenantReport::from_stats(
            class.name.clone(),
            &st.hist,
            st.admitted,
            st.shed_rate + st.shed_overload + st.shed_backpressure + st.shed_crash,
            st.bytes,
            duration,
        ));
    }
    let total = TenantReport::from_stats(
        "all",
        &total_hist,
        admitted,
        shed_rate + shed_overload + shed_backpressure + shed_crash,
        total_bytes,
        duration,
    );
    LoadReport {
        mix: config.mix.name.clone(),
        seed: config.seed,
        nodes,
        duration,
        issued,
        admitted,
        completed,
        shed_rate,
        shed_overload,
        shed_backpressure,
        shed_crash,
        credit_waits,
        remote_leases,
        borrow_failures,
        lease,
        total,
        tenants,
    }
}

/// Arms the configured [`RemoteModel`] and monomorphizes the engine
/// over it — the scalar path instantiates with [`ScalarCrma`]
/// (`ENABLED = false`, every fabric hook compiled away), the congested
/// path compiles the mesh's all-pairs path table and per-class wire
/// footprints once and instantiates with [`CongestedFabric`].
pub(crate) fn run_full<P: Probe>(
    config: &LoadgenConfig,
    replay_trace: Option<&Trace>,
    capture: bool,
    probe: P,
    faults: Option<FaultPlan>,
) -> (LoadReport, Option<Trace>, EngineMetrics, P) {
    match (&config.remote_model, faults) {
        (RemoteModelCfg::Scalar, None) => {
            run_typed(config, replay_trace, capture, probe, ScalarCrma, NoFaults)
        }
        (RemoteModelCfg::Scalar, Some(plan)) => {
            run_typed(config, replay_trace, capture, probe, ScalarCrma, plan)
        }
        (RemoteModelCfg::Congested(params), faults) => {
            let wire = config
                .mix
                .classes
                .iter()
                .map(|c| c.profile.remote_wire_bytes())
                .collect();
            let fabric = CongestedFabric::new(params.clone(), config.mesh, wire);
            match faults {
                None => run_typed(config, replay_trace, capture, probe, fabric, NoFaults),
                Some(plan) => run_typed(config, replay_trace, capture, probe, fabric, plan),
            }
        }
    }
}

fn run_typed<P: Probe, M: RemoteModel, F: FaultModel>(
    config: &LoadgenConfig,
    replay_trace: Option<&Trace>,
    capture: bool,
    mut probe: P,
    mut remote: M,
    mut faults: F,
) -> (LoadReport, Option<Trace>, EngineMetrics, P) {
    assert!(config.requests > 0, "need at least one request");
    assert!(config.per_node_concurrency > 0, "need at least one slot");
    config.arrival.validate();
    // Overflow-checked and bounded to the NodeId space; panics with a
    // clear message on a degenerate or oversized mesh.
    assert!(config.nodes() > 0, "mesh must be non-empty");
    if config.lease.is_some() {
        assert!(
            config.stack.supports_elastic(),
            "elastic leases require a stack with hot-plug support, not {}",
            config.stack.label()
        );
    }

    // 1–2. Build the cluster, mesh adjacency, and per-node transport
    //    (the extracted [`build_transport`], shared with the sharded
    //    driver). The per-class request-message latency is precomputed
    //    once — payload sizes are class constants and the latency model
    //    is state-free, so the dispatch path just indexes it.
    let Transport {
        mut cluster,
        neighbors,
        qps,
        qpair_lat,
        msg_lat,
    } = build_transport(config);
    let n = cluster.len();
    if F::ENABLED {
        // Sizes liveness state and rejects plans naming nodes outside
        // the mesh, before any event fires.
        faults.init(n as u16);
    }

    // 3. Provision the remote tier.
    let mut remote_leases = 0u64;
    let mut borrow_failures = 0u64;
    let mut models = Vec::with_capacity(n);
    let mut elastic: Option<ElasticTier> = None;
    match (&config.lease, config.stack) {
        (Some(lease_config), RemoteStack::VeniceCrma) => {
            // Elastic: bootstrap every node to the lease floor through the
            // real borrow flow; the lease_tick event grows/shrinks from
            // there.
            let full = if config.remote_memory_per_node > 0 {
                config.remote_memory_per_node
            } else {
                lease_config.chunk_bytes * lease_config.max_chunks as u64
            };
            for _ in 0..n {
                models.push(NodeModel {
                    local_miss: LOCAL_MISS,
                    remote_miss: Time::ZERO,
                    remote_bytes: 0,
                    full_bytes: full,
                    lent_bytes: 0,
                    lendable_bytes: LENDABLE_PER_NODE,
                    lent_slowdown: lease_config.donor_pressure_slowdown,
                });
            }
            let mut tier = ElasticTier {
                tags: vec![NO_TAG; n],
                leases: vec![Vec::new(); n],
                manager: LeaseManager::with_quotas(*lease_config, n as u16, config.mix.quotas()),
                over_quota: vec![false; config.mix.classes.len()],
            };
            let boot = tier.manager.bootstrap();
            for action in boot {
                let LeaseAction::Grow { node, .. } = action else {
                    unreachable!("bootstrap only grows");
                };
                // A refused bootstrap grow is already recorded by
                // grow_lease as a manager denial (lease.denials);
                // borrow_failures stays a static-provisioning counter so
                // the two never double-count. Bootstrap capacity is
                // unattributed: no tenant's backlog asked for it, so no
                // tenant's quota pays for it.
                if let Some((generation, lease, lat)) = grow_lease(
                    &mut cluster,
                    &mut tier.manager,
                    Time::ZERO,
                    node,
                    NO_TAG,
                    false,
                    Priority::Normal,
                    None,
                    // Setup happens before any traffic: every fabric
                    // window is empty, so even congestion-aware
                    // placement accepts the nearest donor here.
                    &|d| remote.donor_ok(Time::ZERO, node, d.0),
                ) {
                    // Setup-time provisioning is visible immediately
                    // (the run starts after setup, like the static
                    // path).
                    tier.leases[node as usize].push((generation, lease));
                    if M::ENABLED {
                        remote.set_route(node as usize, Some(lease.donor.0));
                    }
                    if P::ENABLED {
                        // Bootstrap capacity is usable from t = 0: its
                        // active span starts at the epoch, no establish
                        // phase (setup happens before the clock runs).
                        probe.span_open(SpanKind::Active, node, generation, Time::ZERO);
                    }
                    let model = &mut models[node as usize];
                    model.remote_bytes += lease.bytes;
                    model.remote_miss = lat;
                    remote_leases += 1;
                    // Bootstrap grants pressure their donors from t = 0
                    // when the term is armed.
                    let donor = lease.donor.0 as usize;
                    if models[donor].lent_slowdown > 0.0 {
                        models[donor].lent_bytes = cluster.lent_bytes_of(lease.donor);
                    }
                }
            }
            elastic = Some(tier);
        }
        (None, _) => {
            // Static provisioning (the extracted [`provision_static`],
            // shared with the sharded driver): the one-shot borrow flow
            // for the Venice stack, or a pre-partitioned baseline tier.
            let (m, leases, failures) =
                provision_static(config, &mut cluster, &qpair_lat, &mut remote);
            models = m;
            remote_leases = leases;
            borrow_failures = failures;
        }
        (Some(_), _) => unreachable!("asserted above"),
    }

    // 4. Assemble the world (the extracted [`build_servers`], shared
    //    with the sharded driver).
    let servers: Vec<Server> = build_servers(config, qps, &models, msg_lat, P::ATTRIB);
    let mut rng = SimRng::seed(config.seed);
    let engine_rng = rng.fork(0x10AD);
    let service_rng = rng.fork(0x5E41);
    // Replay supplies every arrival from the trace; a closed-loop
    // config.arrival must not additionally spawn synthetic sessions.
    let think = match config.arrival {
        ArrivalProcess::ClosedLoop { think, .. } if replay_trace.is_none() => Some(think),
        _ => None,
    };
    let target = replay_trace
        .map(|t| t.len() as u64)
        .unwrap_or(config.requests);
    // Per-phase mean gaps, computed once with the exact expression the
    // per-arrival path used to evaluate (`1/rate` through
    // `Time::from_secs_f64`), so the hoisted values are bit-identical.
    let open_gaps = match config.arrival {
        ArrivalProcess::OpenPoisson { rate_rps } => {
            let gap = Time::from_secs_f64(1.0 / rate_rps);
            Some((gap, gap))
        }
        ArrivalProcess::Bursty {
            base_rps,
            burst_rps,
            ..
        } => Some((
            Time::from_secs_f64(1.0 / base_rps),
            Time::from_secs_f64(1.0 / burst_rps),
        )),
        ArrivalProcess::ClosedLoop { .. } => None,
    };
    let world = World {
        probe,
        rng: engine_rng,
        service_rng,
        classes: config.mix.classes.clone(),
        weight_total: config.mix.weights().iter().sum(),
        weights: config.mix.weights(),
        zipf: config.mix.user_sampler(),
        admissions: (0..n)
            .map(|_| AdmissionControl::per_node(config.admission, n as u32))
            .collect(),
        servers,
        requests: RequestSlab::new(),
        req_bytes_by_class: config
            .mix
            .classes
            .iter()
            .map(|c| c.profile.request_bytes())
            .collect(),
        resp_bytes_by_class: config
            .mix
            .classes
            .iter()
            .map(|c| c.profile.response_bytes())
            .collect(),
        stats: (0..config.mix.classes.len())
            .map(|_| Stats::new())
            .collect(),
        issued: 0,
        target,
        completed: 0,
        fused: 0,
        end: Time::ZERO,
        arrival: config.arrival,
        open_gaps,
        think,
        backlog_cap: config.admission.backlog_per_node,
        cluster,
        neighbors,
        elastic,
        denied_scan: 0,
        denied_counts: vec![0; config.mix.classes.len()],
        trace: capture.then(Vec::new),
        replay: replay_trace.map(|t| ReplayCursor {
            records: &t.records,
            next: 0,
        }),
        attrib: Vec::new(),
        pending_grows: if P::ATTRIB { vec![0; n] } else { Vec::new() },
        remote,
        fabric_detour: Vec::new(),
        faults,
        doomed: Vec::new(),
        fault_seq: 0,
        node_fault_seq: if F::ENABLED { vec![0; n] } else { Vec::new() },
    };

    // 5. Seed the event queue and run to completion.
    let mut kernel: Kernel<World<'_, P, M, F>, EngineEvent> =
        Kernel::new(world).with_event_limit(target.saturating_mul(8) + 500_000);
    if kernel.state().replay.is_some() {
        let first = kernel
            .state()
            .replay
            .as_ref()
            .and_then(|cur| cur.records.first());
        let at = first.map(|r| Time::from_ns(r.at_ns)).unwrap_or(Time::ZERO);
        kernel.schedule_event(at, EngineEvent::ReplayNext);
    } else {
        match config.arrival {
            ArrivalProcess::OpenPoisson { .. } | ArrivalProcess::Bursty { .. } => {
                kernel.schedule_event(Time::ZERO, EngineEvent::Arrival);
            }
            ArrivalProcess::ClosedLoop { sessions, think } => {
                assert!(sessions > 0, "closed loop needs at least one session");
                for _ in 0..sessions {
                    let start = exponential(kernel.state_mut().rng_mut(), think);
                    kernel.schedule_event(start, EngineEvent::SessionNext);
                }
            }
        }
    }
    if kernel.state().elastic.is_some() {
        let interval = kernel
            .state()
            .elastic
            .as_ref()
            .expect("checked above")
            .manager
            .config()
            .tick_interval;
        kernel.schedule_event(interval, EngineEvent::LeaseTick);
    }
    if F::ENABLED {
        if let Some(at) = kernel.state().faults.next_at() {
            kernel.schedule_event(at, EngineEvent::FaultTick);
        }
    }
    kernel.run();
    let metrics = EngineMetrics {
        events: kernel.executed() + kernel.state().fused,
        fused_arrivals: kernel.state().fused,
        peak_queue_depth: kernel.peak_pending(),
        queue: kernel.queue_stats(),
        slab: kernel.slab_occupancy(),
    };
    if P::ENABLED {
        let queue_stats = kernel.queue_stats();
        let slab = kernel.slab_occupancy();
        let peak = kernel.peak_pending();
        kernel
            .state_mut()
            .probe
            .on_queue_stats(queue_stats, slab, peak);
    }

    // 6. Summarize.
    let w = kernel.into_state();
    let duration = w.end;
    let lease = match &w.elastic {
        Some(tier) => {
            // Conservation, checked against the *cluster's* ledger: every
            // byte the manager thinks is out really is borrowed through
            // the Monitor-Node flow, and vice versa.
            assert_eq!(
                w.cluster.borrowed_bytes(),
                tier.manager.total_bytes(),
                "lease-manager ledger diverged from the cluster ledger"
            );
            // The market's second conservation law: every byte the
            // manager accounts as subleased is annotated as a chain on
            // the cluster's active-lease ledger, and vice versa.
            assert_eq!(
                w.cluster.subleased_bytes(),
                tier.manager.subleased_bytes(),
                "sublease ledger diverged from the cluster's chains"
            );
            let classes = w.classes.len();
            let mut tenant_bytes: Vec<u64> = tier.manager.tenant_ledger().to_vec();
            tenant_bytes.resize(classes, 0);
            let mut charged_bytes: Vec<u64> = tier.manager.charged_ledger().to_vec();
            charged_bytes.resize(classes, 0);
            LeaseSummary {
                grows: tier.manager.grows(),
                predictive_grows: tier.manager.predictive_grows(),
                shrinks: tier.manager.shrinks(),
                revokes: tier.manager.revokes(),
                failovers: tier.manager.failovers(),
                revoke_denials: tier.manager.revoke_denials(),
                denials: tier.manager.denials(),
                quota_denials: tier.manager.quota_denials(),
                subleases: tier.manager.subleases(),
                sublease_returns: tier.manager.sublease_returns(),
                peak_bytes: tier.manager.peak_bytes(),
                mean_bytes: tier.manager.mean_bytes(duration),
                tenant_bytes,
                charged_bytes,
                donor_nodes: tier.manager.donor_nodes(),
                events: tier.manager.timeline().iter().map(|(_, e)| *e).collect(),
            }
        }
        None => static_lease_summary(config, &w.servers, borrow_failures),
    };
    let trace = w.trace.map(|mut records| {
        // Completions land in finish order; re-sort to issue order so the
        // exported trace reads (and replays) as an arrival stream.
        records.sort_by_key(|r| r.seq);
        Trace { records }
    });
    let report = assemble_report(
        config,
        n as u16,
        duration,
        w.issued,
        w.completed,
        w.servers.iter().map(|s| s.credit_waits).sum(),
        remote_leases,
        borrow_failures,
        lease,
        &w.classes,
        &w.stats,
    );
    (report, trace, metrics, w.probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{FabricParams, PlacementPolicy};
    use crate::tenants::TenantMix;
    use venice_fabric::LinkParams;

    fn small(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            requests: 3_000,
            ..LoadgenConfig::new(seed, TenantMix::web_frontend())
        }
    }

    // Local shims over the Run builder; explicit items shadow the
    // glob-imported deprecated wrappers, so the pre-builder test bodies
    // below compile unchanged and warning-free.
    fn run(config: &LoadgenConfig) -> LoadReport {
        Run::new(config).execute().report
    }

    fn run_metered(config: &LoadgenConfig) -> (LoadReport, EngineMetrics) {
        let out = Run::new(config).metered().execute();
        (out.report, out.metrics)
    }

    fn run_traced(config: &LoadgenConfig) -> (LoadReport, Trace) {
        let out = Run::new(config).traced().execute();
        (out.report, out.trace.expect("tracing was requested"))
    }

    fn replay(config: &LoadgenConfig, trace: &Trace) -> LoadReport {
        Run::new(config).replay(trace).execute().report
    }

    /// A congested-fabric variant of [`small`] with a deliberately
    /// tight per-window capacity, so its links saturate under the
    /// default 20 krps load.
    fn congested(seed: u64) -> LoadgenConfig {
        let link = LinkParams::venice_prototype();
        let params = FabricParams {
            capacity_bytes: 8 << 10,
            buffer_bytes: 2 << 10,
            ..FabricParams::from_link(link, Time::from_ms(1), PlacementPolicy::ScalarPriced)
        };
        LoadgenConfig {
            remote_model: RemoteModelCfg::Congested(params),
            ..small(seed)
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_builder() {
        let config = small(19);
        assert_eq!(super::run(&config), run(&config));
        let (wrap_report, wrap_metrics) = super::run_metered(&config);
        let (shim_report, shim_metrics) = run_metered(&config);
        assert_eq!(wrap_report, shim_report);
        assert_eq!(wrap_metrics, shim_metrics);
        let (wrap_report, wrap_trace) = super::run_traced(&config);
        let (shim_report, shim_trace) = run_traced(&config);
        assert_eq!(wrap_report, shim_report);
        assert_eq!(wrap_trace, shim_trace);
        assert_eq!(
            super::replay(&config, &wrap_trace),
            replay(&config, &shim_trace)
        );
    }

    #[test]
    fn congested_runs_are_deterministic() {
        let config = congested(23);
        let a = Run::new(&config).traced().execute();
        let b = Run::new(&config).traced().execute();
        assert_eq!(a.report, b.report);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn infinite_fabric_matches_the_scalar_model_bit_for_bit() {
        // With unbounded per-window capacity no dispatch is ever
        // charged, so the congested engine must reproduce the scalar
        // baseline exactly — report and trace (the property test in
        // tests/ sweeps this over arbitrary seeds and mixes).
        let scalar = small(29);
        let infinite = LoadgenConfig {
            remote_model: RemoteModelCfg::Congested(FabricParams::infinite()),
            ..small(29)
        };
        let a = Run::new(&scalar).traced().execute();
        let b = Run::new(&infinite).traced().execute();
        assert_eq!(a.report, b.report);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn saturated_fabric_slows_the_run() {
        let scalar = Run::new(&small(23)).execute().report;
        let congested = Run::new(&congested(23)).execute().report;
        // Same traffic either way (pricing never changes arrivals or
        // admission inputs at these rates)...
        assert_eq!(scalar.issued, congested.issued);
        // ...but saturated links queue remote transfers, so the mean
        // can only degrade.
        assert!(
            congested.total.mean_us > scalar.total.mean_us,
            "congested mean {} not above scalar {}",
            congested.total.mean_us,
            scalar.total.mean_us
        );
    }

    #[test]
    fn runs_complete_and_conserve_requests() {
        let r = run(&small(1));
        assert_eq!(r.issued, 3_000);
        assert_eq!(r.issued, r.admitted + r.shed_rate + r.shed_overload);
        // Every admitted request either completed or was dropped under
        // backpressure.
        assert_eq!(r.admitted, r.completed + r.shed_backpressure);
        assert!(r.completed > 0);
        assert!(r.duration > Time::ZERO);
        assert_eq!(r.nodes, 8);
        assert_eq!(r.remote_leases + r.borrow_failures, 8);
        // Static provisioning: the tier never moves.
        assert_eq!(r.lease.shrinks, 0);
        assert_eq!(r.lease.peak_bytes, r.remote_leases * (256 << 20));
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let a = run(&small(42));
        let b = run(&small(42));
        assert_eq!(a, b);
        let c = run(&small(43));
        assert_ne!(a, c);
    }

    #[test]
    fn per_tenant_rows_cover_all_completions() {
        let r = run(&small(7));
        let sum: u64 = r.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(sum, r.completed);
        for t in &r.tenants {
            if t.completed > 0 {
                assert!(t.p50_us > 0.0);
                assert!(t.p50_us <= t.p99_us + 1e-9);
                assert!(t.p99_us <= t.p999_us + 1e-9);
            }
        }
    }

    #[test]
    fn closed_loop_self_limits() {
        let config = LoadgenConfig {
            arrival: ArrivalProcess::ClosedLoop {
                sessions: 64,
                think: Time::from_ms(1),
            },
            requests: 2_000,
            ..LoadgenConfig::new(5, TenantMix::messaging())
        };
        let r = run(&config);
        assert_eq!(r.issued, 2_000);
        // A 64-session closed loop cannot overload the per-node caps.
        assert_eq!(r.shed_overload, 0);
        assert_eq!(r.completed, r.admitted);
    }

    #[test]
    fn overload_sheds_and_backpressure_engages() {
        let config = LoadgenConfig {
            arrival: ArrivalProcess::OpenPoisson {
                rate_rps: 2_000_000.0,
            },
            requests: 20_000,
            admission: AdmissionConfig {
                max_inflight: 256,
                backlog_per_node: 16,
                ..AdmissionConfig::default()
            },
            ..LoadgenConfig::new(11, TenantMix::web_frontend())
        };
        let r = run(&config);
        assert!(r.shed_overload > 0, "no overload shedding at 2 Mrps");
        assert!(r.credit_waits > 0, "qpair credits never exhausted");
    }

    #[test]
    fn priority_shedding_spares_high_priority_tenants() {
        // Saturate the cluster: the low-priority telemetry tenant must
        // shed a larger *fraction* than the high-priority kv tenant.
        let config = LoadgenConfig {
            arrival: ArrivalProcess::OpenPoisson {
                rate_rps: 2_000_000.0,
            },
            requests: 30_000,
            admission: AdmissionConfig {
                max_inflight: 128,
                backlog_per_node: 16,
                ..AdmissionConfig::default()
            },
            ..LoadgenConfig::new(17, TenantMix::web_frontend())
        };
        let r = run(&config);
        let frac = |name: &str| {
            let t = r.tenants.iter().find(|t| t.tenant == name).unwrap();
            t.shed as f64 / (t.completed + t.shed).max(1) as f64
        };
        let low = frac("telemetry"); // Priority::Low
        let high = frac("kv-cache"); // Priority::High
        assert!(
            low > high + 0.05,
            "low-priority shed fraction {low:.3} not above high-priority {high:.3}"
        );
    }

    #[test]
    fn remote_tier_disabled_falls_back_to_local() {
        let config = LoadgenConfig {
            remote_memory_per_node: 0,
            requests: 2_000,
            ..LoadgenConfig::new(3, TenantMix::web_frontend())
        };
        let r = run(&config);
        assert_eq!(r.remote_leases, 0);
        // Cold caches miss to the slow backend: the tail is much worse
        // than with the borrowed tier.
        let with_remote = run(&small(3));
        assert!(r.total.p99_us > with_remote.total.p99_us);
    }

    #[test]
    fn baseline_stacks_run_identical_traffic_slower() {
        let venice = run(&small(21));
        let eth = run(&LoadgenConfig {
            stack: RemoteStack::SwapEthernet,
            ..small(21)
        });
        // Identical traffic: the arrival rng is insulated from admission
        // divergence, so the per-tenant arrival split matches exactly.
        // (completed + shed counts every arrival exactly once; admitted
        // also includes requests later dropped at backlog overflow.)
        assert_eq!(venice.issued, eth.issued);
        for (v, e) in venice.tenants.iter().zip(&eth.tenants) {
            assert_eq!(
                v.completed + v.shed,
                e.completed + e.shed,
                "tenant {}",
                v.tenant
            );
        }
        assert_eq!(eth.remote_leases, 0, "baselines bypass the Monitor Node");
        // The commodity stack pays far more per remote miss; the mean
        // can only degrade.
        assert!(
            eth.total.mean_us > venice.total.mean_us,
            "ethernet swap {} not above venice {}",
            eth.total.mean_us,
            venice.total.mean_us
        );
    }

    #[test]
    fn elastic_lease_grows_under_pressure_and_replays_bit_identically() {
        let config = LoadgenConfig {
            arrival: ArrivalProcess::Bursty {
                base_rps: 4_000.0,
                burst_rps: 120_000.0,
                period: Time::from_ms(400),
                burst_len: Time::from_ms(150),
                crowd_users: 4,
                crowd_share: 0.8,
            },
            requests: 12_000,
            lease: Some(LeaseConfig::default()),
            ..LoadgenConfig::new(9, TenantMix::web_frontend())
        };
        let r = run(&config);
        assert!(
            r.lease.grows > 8,
            "elastic tier never grew past bootstrap: {} grows",
            r.lease.grows
        );
        assert!(!r.lease.events.is_empty());
        assert!(r.lease.peak_bytes > 8 * (64 << 20), "no mid-run growth");
        assert_eq!(r, run(&config), "elastic run not deterministic");
    }

    #[test]
    #[should_panic(expected = "names tenant")]
    fn replay_rejects_traces_from_a_foreign_mix() {
        // web-frontend has 3 classes; a trace naming class 2 cannot be
        // replayed through the 2-class messaging mix.
        let (_, trace) = run_traced(&small(3));
        assert!(trace.records.iter().any(|r| r.tenant == 2));
        let config = LoadgenConfig {
            requests: 3_000,
            ..LoadgenConfig::new(3, TenantMix::messaging())
        };
        replay(&config, &trace);
    }

    #[test]
    fn closed_loop_replay_does_not_spawn_sessions() {
        // config.arrival is documented as ignored during replay: the
        // trace supplies every arrival, so a closed-loop config must not
        // add synthetic session traffic on top.
        let config = LoadgenConfig {
            arrival: ArrivalProcess::ClosedLoop {
                sessions: 16,
                think: Time::from_ms(1),
            },
            requests: 500,
            ..LoadgenConfig::new(5, TenantMix::messaging())
        };
        let (report, trace) = run_traced(&config);
        let replayed = replay(&config, &trace);
        assert_eq!(replayed.issued, report.issued);
        assert_eq!(replayed.issued, trace.len() as u64);
    }

    #[test]
    fn locality_routing_follows_the_tenants_lease() {
        // A zero-floor lease policy leaves cold nodes without any remote
        // tier; their users' requests must defer to a mesh neighbor
        // already holding a lease driven by the same tenant.
        let config = LoadgenConfig {
            arrival: ArrivalProcess::Bursty {
                base_rps: 3_000.0,
                burst_rps: 120_000.0,
                period: Time::from_ms(400),
                burst_len: Time::from_ms(200),
                crowd_users: 4,
                crowd_share: 0.9,
            },
            requests: 10_000,
            lease: Some(LeaseConfig {
                min_chunks: 0,
                max_chunks: 6,
                high_watermark: 4,
                ..LeaseConfig::default()
            }),
            ..LoadgenConfig::new(31, TenantMix::web_frontend())
        };
        let (report, trace) = run_traced(&config);
        assert!(report.lease.grows > 0, "tier never grew");
        let n = report.nodes as u64;
        let rerouted = trace
            .records
            .iter()
            .filter(|r| r.node as u64 != r.user % n)
            .count();
        assert!(rerouted > 0, "locality routing never engaged");
        // Rerouted requests land on nodes that actually hold a lease.
        assert!(
            trace
                .records
                .iter()
                .filter(|r| r.node as u64 != r.user % n)
                .all(|r| r.lease_generation > 0),
            "rerouted request landed on a lease-less node"
        );
    }

    #[test]
    #[should_panic(expected = "hot-plug")]
    fn elastic_on_a_swap_stack_is_rejected() {
        let config = LoadgenConfig {
            stack: RemoteStack::SwapInfiniband,
            lease: Some(LeaseConfig::default()),
            ..small(1)
        };
        run(&config);
    }

    #[test]
    fn traced_runs_capture_every_request_and_replay() {
        let config = small(33);
        let (report, trace) = run_traced(&config);
        assert_eq!(trace.len() as u64, report.issued);
        // Records are in issue order with non-decreasing arrival times.
        assert!(trace
            .records
            .windows(2)
            .all(|w| w[0].seq + 1 == w[1].seq && w[0].at_ns <= w[1].at_ns));
        let completed = trace
            .records
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Completed)
            .count() as u64;
        assert_eq!(completed, report.completed);
        // Replay re-drives the same arrivals: same issue count, same
        // per-tenant arrival split, and bit-identical across replays.
        let a = replay(&config, &trace);
        assert_eq!(a.issued, report.issued);
        let b = replay(&config, &trace);
        assert_eq!(a, b);
        // The replayed per-tenant issue counts match the recorded ones.
        for (i, t) in a.tenants.iter().enumerate() {
            let recorded = trace
                .records
                .iter()
                .filter(|r| r.tenant == i as u32)
                .count() as u64;
            // completed + shed counts every arrival exactly once
            // (admitted also includes backlog-overflow drops).
            assert_eq!(t.completed + t.shed, recorded, "tenant {}", t.tenant);
        }
    }

    #[test]
    fn metered_runs_report_loop_counters_without_changing_the_report() {
        let config = small(13);
        let (report, metrics) = run_metered(&config);
        assert_eq!(report, run(&config), "metering changed the run");
        // At least one event per issued request (arrivals), plus
        // completions.
        assert!(metrics.events > report.issued);
        assert!(metrics.peak_queue_depth > 0);
    }

    #[test]
    fn typed_engine_matches_the_legacy_oracle_bit_for_bit() {
        // The headline differential check at unit-test granularity (the
        // property test sweeps arbitrary configs; CI byte-diffs the
        // bench bin): same seed, same config → identical report AND
        // identical trace through both event cores.
        let config = small(77);
        let (typed_report, typed_trace) = run_traced(&config);
        let (legacy_report, legacy_trace) = crate::legacy::run_traced(&config);
        assert_eq!(typed_report, legacy_report);
        assert_eq!(typed_trace, legacy_trace);
        // And replay agrees on the borrowed-trace path too.
        assert_eq!(
            replay(&config, &typed_trace),
            crate::legacy::replay(&config, &legacy_trace)
        );
    }
}
