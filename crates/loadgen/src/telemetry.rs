//! Telemetry over engine runs: probe wiring and the `venice-telemetry-v1`
//! artifact.
//!
//! The engine's probe hooks ([`crate::engine::run_probed`]) are generic
//! plumbing; this module binds them to concrete observability: the
//! event-kind labels for the engine's event enum, a one-call probed run
//! with a [`venice_telemetry::RecordingProbe`], and the JSONL artifact
//! renderer the `venice-bench` `profile` bin (and the determinism
//! tests) consume. Everything here inherits the engine's determinism:
//! same config, same artifact, byte for byte.

use venice_sim::Time;
use venice_telemetry::{export_jsonl, render_profile, AttribFold, AttribProbe, RecordingProbe};

use crate::engine::{run_probed, LoadgenConfig};
use crate::report::LoadReport;

/// Human labels for the engine's probe event-kind slots, indexed by the
/// engine event enum's probe slot (kept in step with
/// `EngineEvent::kind` in the engine).
pub const EVENT_KIND_LABELS: [&str; 7] = [
    "arrival",
    "session-next",
    "replay-next",
    "finish",
    "lease-tick",
    "lease-established",
    "revoke-torndown",
];

/// Runs `config` with a [`RecordingProbe`] sampling every `tick` and
/// retaining `cap` rows; returns the (probe-invariant) report and the
/// filled probe.
///
/// # Panics
///
/// As [`crate::engine::run`], or if `tick`/`cap` are zero.
pub fn probed_run(config: &LoadgenConfig, tick: Time, cap: usize) -> (LoadReport, RecordingProbe) {
    run_probed(config, RecordingProbe::new(tick, cap))
}

/// Runs `config` probed and renders the `venice-telemetry-v1` JSONL
/// artifact named `scenario`, alongside the run's report.
///
/// # Panics
///
/// As [`probed_run`].
pub fn artifact_run(
    scenario: &str,
    config: &LoadgenConfig,
    tick: Time,
    cap: usize,
) -> (String, LoadReport) {
    let (report, probe) = probed_run(config, tick, cap);
    let artifact = export_jsonl(scenario, config.seed, &probe, &EVENT_KIND_LABELS);
    (artifact, report)
}

/// Runs `config` with an [`AttribProbe`] (attribution stamping armed)
/// and returns its latency-attribution fold alongside the
/// (probe-invariant) report. Every completion passes the fold's
/// exact-sum gate on the way in, so a fold that comes back at all
/// certifies the decomposition.
///
/// # Panics
///
/// As [`probed_run`], or if any request's stage breakdown fails to sum
/// to its end-to-end latency.
pub fn attrib_run(config: &LoadgenConfig, tick: Time, cap: usize) -> (LoadReport, AttribFold) {
    let (report, probe) = run_probed(config, AttribProbe::new(tick, cap));
    (report, probe.attrib().clone())
}

/// The mix's tenant labels in class order, for naming attribution
/// artifacts.
pub fn tenant_labels(config: &LoadgenConfig) -> Vec<String> {
    config.mix.classes.iter().map(|c| c.name.clone()).collect()
}

/// Runs `config` probed and renders the text profile report.
///
/// # Panics
///
/// As [`probed_run`].
pub fn profile_run(
    scenario: &str,
    config: &LoadgenConfig,
    tick: Time,
    cap: usize,
) -> (String, LoadReport, RecordingProbe) {
    let (report, probe) = probed_run(config, tick, cap);
    let text = render_profile(scenario, &probe, &EVENT_KIND_LABELS);
    (text, report, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::tenants::TenantMix;

    fn small(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            requests: 3_000,
            ..LoadgenConfig::new(seed, TenantMix::web_frontend())
        }
    }

    #[test]
    fn probed_report_matches_the_noop_report() {
        let config = small(19);
        let plain = engine::run(&config);
        let (probed, probe) = probed_run(&config, Time::from_ms(5), 512);
        assert_eq!(plain, probed, "probe perturbed the run");
        assert!(probe.total_events() > 0);
        assert!(
            !probe.series().is_empty(),
            "no samples over a 3k-request run"
        );
        assert!(probe.queue_stats().pops() > 0);
    }

    #[test]
    fn attrib_fold_accounts_for_every_completion() {
        let config = small(19);
        let (report, fold) = attrib_run(&config, Time::from_ms(5), 512);
        assert_eq!(fold.requests(), report.completed);
        // Per-tenant counts reconcile with the report's ledger.
        for (t, tenant) in report.tenants.iter().enumerate() {
            let count = fold.tenant_summary(t as u16).map(|s| s.count).unwrap_or(0);
            assert_eq!(count, tenant.completed, "{}", tenant.tenant);
        }
    }

    #[test]
    fn artifact_is_stable_across_reruns() {
        let config = small(23);
        let (a, _) = artifact_run("unit", &config, Time::from_ms(5), 512);
        let (b, _) = artifact_run("unit", &config, Time::from_ms(5), 512);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"kind\":\"header\""));
        assert!(a.lines().last().unwrap().starts_with("{\"kind\":\"end\""));
    }
}
