//! Telemetry over engine runs: probe presets for the [`Run`] builder
//! and the `venice-telemetry-v2` artifact.
//!
//! The engine's probe hooks ([`Run::probe`]) are generic plumbing; this
//! module binds them to concrete observability: the event-kind labels
//! for the engine's event enum, [`Run::recording`] / [`Run::attrib`]
//! presets that arm the two stock probes, and [`RunOutput`] renderers
//! for the JSONL artifact and the text profile the `venice-bench`
//! `profile` bin (and the determinism tests) consume. Everything here
//! inherits the engine's determinism: same config, same artifact, byte
//! for byte.

use venice_sim::Time;
use venice_telemetry::{
    export_jsonl, render_profile, AttribFold, AttribProbe, NoopProbe, RecordingProbe,
};

use crate::engine::{LoadgenConfig, Run, RunOutput};
use crate::report::LoadReport;

/// Human labels for the engine's probe event-kind slots, indexed by the
/// engine event enum's probe slot (kept in step with
/// `EngineEvent::kind` in the engine).
pub const EVENT_KIND_LABELS: [&str; 8] = [
    "arrival",
    "session-next",
    "replay-next",
    "finish",
    "lease-tick",
    "lease-established",
    "revoke-torndown",
    "fault-tick",
];

impl<'c, 't> Run<'c, 't, NoopProbe> {
    /// Arms a [`RecordingProbe`] sampling every `tick` and retaining
    /// `cap` rows — the preset behind the telemetry artifact and the
    /// text profile ([`RunOutput::artifact_jsonl`],
    /// [`RunOutput::profile_text`]).
    ///
    /// # Panics
    ///
    /// Panics if `tick` or `cap` is zero.
    pub fn recording(self, tick: Time, cap: usize) -> Run<'c, 't, RecordingProbe> {
        self.probe(RecordingProbe::new(tick, cap))
    }

    /// Arms an [`AttribProbe`] (per-request latency attribution
    /// stamping) sampling every `tick` and retaining `cap` rows; fold
    /// the result with [`RunOutput::attrib_fold`].
    ///
    /// # Panics
    ///
    /// Panics if `tick` or `cap` is zero.
    pub fn attrib(self, tick: Time, cap: usize) -> Run<'c, 't, AttribProbe> {
        self.probe(AttribProbe::new(tick, cap))
    }
}

impl RunOutput<RecordingProbe> {
    /// Renders the run's `venice-telemetry-v2` JSONL artifact named
    /// `scenario`.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` needs JSON escaping.
    pub fn artifact_jsonl(&self, scenario: &str) -> String {
        export_jsonl(scenario, self.report.seed, &self.probe, &EVENT_KIND_LABELS)
    }

    /// Renders the run's human-readable text profile named `scenario`.
    pub fn profile_text(&self, scenario: &str) -> String {
        render_profile(scenario, &self.probe, &EVENT_KIND_LABELS)
    }
}

impl RunOutput<AttribProbe> {
    /// The run's latency-attribution fold. Every completion passed the
    /// fold's exact-sum gate on the way in, so a fold that comes back
    /// at all certifies the decomposition.
    pub fn attrib_fold(&self) -> AttribFold {
        self.probe.attrib().clone()
    }
}

/// Runs `config` with a [`RecordingProbe`] sampling every `tick` and
/// retaining `cap` rows; returns the (probe-invariant) report and the
/// filled probe.
///
/// # Panics
///
/// As [`Run::execute`], or if `tick`/`cap` are zero.
#[deprecated(note = "use `Run::new(config).recording(tick, cap).execute()`")]
pub fn probed_run(config: &LoadgenConfig, tick: Time, cap: usize) -> (LoadReport, RecordingProbe) {
    let out = Run::new(config).recording(tick, cap).execute();
    (out.report, out.probe)
}

/// Runs `config` probed and renders the `venice-telemetry-v2` JSONL
/// artifact named `scenario`, alongside the run's report.
///
/// # Panics
///
/// As [`Run::execute`], or if `tick`/`cap` are zero.
#[deprecated(
    note = "use `Run::new(config).recording(tick, cap).execute().artifact_jsonl(scenario)`"
)]
pub fn artifact_run(
    scenario: &str,
    config: &LoadgenConfig,
    tick: Time,
    cap: usize,
) -> (String, LoadReport) {
    let out = Run::new(config).recording(tick, cap).execute();
    (out.artifact_jsonl(scenario), out.report)
}

/// Runs `config` with an [`AttribProbe`] and returns its
/// latency-attribution fold alongside the (probe-invariant) report.
///
/// # Panics
///
/// As [`Run::execute`], or if any request's stage breakdown fails to
/// sum to its end-to-end latency.
#[deprecated(note = "use `Run::new(config).attrib(tick, cap).execute().attrib_fold()`")]
pub fn attrib_run(config: &LoadgenConfig, tick: Time, cap: usize) -> (LoadReport, AttribFold) {
    let out = Run::new(config).attrib(tick, cap).execute();
    let fold = out.attrib_fold();
    (out.report, fold)
}

/// The mix's tenant labels in class order, for naming attribution
/// artifacts.
pub fn tenant_labels(config: &LoadgenConfig) -> Vec<String> {
    config.mix.classes.iter().map(|c| c.name.clone()).collect()
}

/// Runs `config` probed and renders the text profile report.
///
/// # Panics
///
/// As [`Run::execute`], or if `tick`/`cap` are zero.
#[deprecated(note = "use `Run::new(config).recording(tick, cap).execute().profile_text(scenario)`")]
pub fn profile_run(
    scenario: &str,
    config: &LoadgenConfig,
    tick: Time,
    cap: usize,
) -> (String, LoadReport, RecordingProbe) {
    let out = Run::new(config).recording(tick, cap).execute();
    let text = out.profile_text(scenario);
    (text, out.report, out.probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenants::TenantMix;

    fn small(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            requests: 3_000,
            ..LoadgenConfig::new(seed, TenantMix::web_frontend())
        }
    }

    #[test]
    fn probed_report_matches_the_noop_report() {
        let config = small(19);
        let plain = Run::new(&config).execute().report;
        let probed = Run::new(&config).recording(Time::from_ms(5), 512).execute();
        assert_eq!(plain, probed.report, "probe perturbed the run");
        assert!(probed.probe.total_events() > 0);
        assert!(
            !probed.probe.series().is_empty(),
            "no samples over a 3k-request run"
        );
        assert!(probed.probe.queue_stats().pops() > 0);
    }

    #[test]
    fn attrib_fold_accounts_for_every_completion() {
        let config = small(19);
        let out = Run::new(&config).attrib(Time::from_ms(5), 512).execute();
        let fold = out.attrib_fold();
        assert_eq!(fold.requests(), out.report.completed);
        // Per-tenant counts reconcile with the report's ledger.
        for (t, tenant) in out.report.tenants.iter().enumerate() {
            let count = fold.tenant_summary(t as u16).map(|s| s.count).unwrap_or(0);
            assert_eq!(count, tenant.completed, "{}", tenant.tenant);
        }
    }

    #[test]
    fn artifact_is_stable_across_reruns() {
        let config = small(23);
        let a = Run::new(&config)
            .recording(Time::from_ms(5), 512)
            .execute()
            .artifact_jsonl("unit");
        let b = Run::new(&config)
            .recording(Time::from_ms(5), 512)
            .execute()
            .artifact_jsonl("unit");
        assert_eq!(a, b);
        assert!(a.starts_with("{\"kind\":\"header\""));
        assert!(a.lines().last().unwrap().starts_with("{\"kind\":\"end\""));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_helpers_match_the_presets() {
        let config = small(29);
        let (a_art, a_report) = artifact_run("unit", &config, Time::from_ms(5), 256);
        let out = Run::new(&config).recording(Time::from_ms(5), 256).execute();
        assert_eq!(a_art, out.artifact_jsonl("unit"));
        assert_eq!(a_report, out.report);
    }
}
