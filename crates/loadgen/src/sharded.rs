//! The sharded parallel driver: per-node-group sub-kernels on rayon
//! workers, synchronizing at conservative lookahead barriers.
//!
//! # How a run shards
//!
//! Nodes interact with one another only through a handful of
//! mechanisms: elastic lease ticks (grants move bytes between arbitrary
//! donor/recipient pairs), the modeled congested fabric (every dispatch
//! reads shared per-link utilization windows), fault re-routing (a
//! crashed node's sessions bounce to survivors), and closed-loop /
//! replay arrival processes (one global arrival cursor). Each mechanism
//! contributes its minimum cross-shard latency to a
//! [`Lookahead`](venice_sim::shard::Lookahead) window; a configuration
//! that arms **none** of them derives [`Lookahead::Unbounded`] — its
//! node groups are provably independent for the whole run, which is
//! exactly the committed `storm` benchmark family (open-loop arrivals,
//! static provisioning, scalar remote model, no faults).
//!
//! For such a run the driver splits the work in two phases:
//!
//! 1. **Front-end (sequential):** the arrival stream is drawn exactly
//!    as the sequential engine draws it — same two insulated RNG
//!    streams, same draw order (class, user, service, gap per arrival)
//!    — and each request is binned to the shard owning its home node
//!    (`user % nodes`, the static-scalar routing rule).
//! 2. **Workers (parallel):** each shard replays its slice of the
//!    stream through an exact mirror of the sequential engine's
//!    admission/dispatch/finish path on its own
//!    [`Kernel`](venice_sim::Kernel). Per-node state (admission,
//!    QPair credits, service slots, backlog) lives wholly inside one
//!    shard, so every per-node event sequence is identical to the
//!    sequential run's.
//!
//! The merge is deterministic by construction: servers reassemble in
//! node order, per-class stats merge through commutative histogram and
//! counter sums, the trace concatenates and re-sorts by sequence
//! number, and the report goes through the same
//! [`assemble_report`](crate::engine) the sequential engine uses. The
//! result is **byte-identical** to the single-shard run at any shard
//! count and any thread count.
//!
//! # When the optimism fails
//!
//! Two events falsify the independence argument mid-run, and either one
//! aborts the parallel attempt (a shared flag; every handler bails
//! cheaply) and re-runs the whole configuration sequentially:
//!
//! * **An admission shed.** The front-end pre-draws service times under
//!   an all-admitted assumption; the sequential engine skips the
//!   service draw for a shed request, so one shed desynchronizes every
//!   later draw. Because admission state is per-node and deterministic
//!   in that node's arrival/completion sequence, a worker reproduces
//!   the sequential engine's *first* shed exactly — there are no
//!   spurious aborts, and the committed benchmark families shed
//!   nothing. (Backlog-overflow drops happen after the service draw and
//!   are *not* violations.)
//! * **A same-node arrival/finish timestamp tie.** The sequential
//!   engine breaks the tie by global insertion order, which a shard
//!   cannot reconstruct; per-node stamps detect the tie in either
//!   firing order.
//!
//! Configurations that derive a bounded window run sequentially today
//! (their cross-shard traffic is not yet exchanged at barriers), but
//! the barrier machinery itself — bounded lookahead fusion plus
//! repeated `run_until` rounds — is exercised by forcing a window over
//! an independent world, where it must change nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rayon::prelude::*;
use venice_lease::Priority;
use venice_sim::{partition, Kernel, Lookahead, QueueStats, Scheduler, SimEvent, SimRng, Time};

use crate::admission::{AdmissionControl, Decision};
use crate::arrival::{exponential, ArrivalProcess};
use crate::engine::{
    assemble_report, build_servers, build_transport, provision_static, run_full,
    static_lease_summary, EngineMetrics, LoadgenConfig, Request, RequestSlab, Server, Stats,
    Transport,
};
use crate::faults::FaultPlan;
use crate::remote::{RemoteModelCfg, ScalarCrma};
use crate::report::LoadReport;
use crate::trace::{RequestOutcome, RequestRecord, Trace};

/// One pre-drawn arrival, produced by the sequential front-end and
/// consumed by the shard owning its node.
#[derive(Debug, Clone, Copy)]
struct PreRequest {
    seq: u64,
    at: Time,
    class: u32,
    user: u64,
    node: u16,
    /// Service time pre-drawn from the insulated service stream under
    /// the all-admitted assumption (any admission shed aborts the run).
    service: Time,
}

/// Derives the run's conservative lookahead window from every
/// cross-shard interaction mechanism the configuration arms.
///
/// Elastic leases interact at the manager's tick period; the congested
/// fabric couples shards instantaneously (each dispatch reads shared
/// link windows), which collapses the window to zero — no safe parallel
/// progress. A configuration arming neither is unbounded: its shards
/// never interact.
pub(crate) fn derived_lookahead(config: &LoadgenConfig) -> Lookahead {
    let lease_tick = config.lease.as_ref().map(|l| l.tick_interval);
    let fabric = matches!(config.remote_model, RemoteModelCfg::Congested(_)).then_some(Time::ZERO);
    Lookahead::from_interactions([lease_tick, fabric])
}

/// Entry point behind [`Run::shards`](crate::engine::Run::shards):
/// attempts the parallel driver when the configuration admits it, and
/// otherwise (or on a mid-run violation) produces the output through
/// the sequential engine — so the builder's output is byte-identical
/// either way.
pub(crate) fn run_sharded_or_sequential<P: venice_telemetry::Probe>(
    config: &LoadgenConfig,
    replay_trace: Option<&Trace>,
    capture: bool,
    probe: P,
    faults: Option<FaultPlan>,
    shards: usize,
) -> (LoadReport, Option<Trace>, EngineMetrics, P) {
    let open_loop = matches!(
        config.arrival,
        ArrivalProcess::OpenPoisson { .. } | ArrivalProcess::Bursty { .. }
    );
    // Replay and closed-loop runs drive arrivals through one global
    // cursor, probes observe the global event stream, and fault plans
    // re-route sessions across node groups: all are zero-lookahead
    // couplings, on top of whatever window the config itself derives.
    let eligible = open_loop
        && replay_trace.is_none()
        && faults.is_none()
        && !P::ENABLED
        && !P::ATTRIB
        && derived_lookahead(config) == Lookahead::Unbounded;
    if eligible && shards > 1 {
        if let Some((report, trace, metrics)) = run_sharded(config, capture, shards, None) {
            return (report, trace, metrics, probe);
        }
    }
    run_full(config, replay_trace, capture, probe, faults)
}

/// Runs the parallel driver proper. Returns `None` when the run cannot
/// be (or could not stay) parallel: a single-node mesh, a zero
/// lookahead window, or a mid-run violation (admission shed /
/// same-node timestamp tie) — the caller then re-runs sequentially.
///
/// `lookahead` overrides the derived window; tests force a bounded
/// window here to exercise the barrier rounds, which must not change a
/// single output byte.
pub(crate) fn run_sharded(
    config: &LoadgenConfig,
    capture: bool,
    shards: usize,
    lookahead: Option<Lookahead>,
) -> Option<(LoadReport, Option<Trace>, EngineMetrics)> {
    assert!(config.requests > 0, "need at least one request");
    assert!(config.per_node_concurrency > 0, "need at least one slot");
    config.arrival.validate();
    assert!(config.nodes() > 0, "mesh must be non-empty");
    let lookahead = lookahead.unwrap_or_else(|| derived_lookahead(config));
    if !lookahead.admits_parallelism() {
        return None;
    }

    // Setup: identical to the sequential engine's steps 1–4, through
    // the same extracted helpers.
    let Transport {
        mut cluster,
        neighbors: _,
        qps,
        qpair_lat,
        msg_lat,
    } = build_transport(config);
    let n = cluster.len();
    let ranges = partition(n as u16, shards);
    if ranges.len() < 2 {
        return None;
    }
    let mut remote = ScalarCrma;
    let (models, remote_leases, borrow_failures) =
        provision_static(config, &mut cluster, &qpair_lat, &mut remote);
    let servers = build_servers(config, qps, &models, msg_lat, false);

    // Phase A — sequential front-end: replay the engine's exact draw
    // order (class, user, service, gap per arrival; two insulated
    // streams) and bin each request to the shard owning its home node.
    let mut rng = SimRng::seed(config.seed);
    let mut engine_rng = rng.fork(0x10AD);
    let mut service_rng = rng.fork(0x5E41);
    let weights = config.mix.weights();
    let weight_total: f64 = weights.iter().sum();
    let zipf = config.mix.user_sampler();
    let open_gaps = match config.arrival {
        ArrivalProcess::OpenPoisson { rate_rps } => {
            let gap = Time::from_secs_f64(1.0 / rate_rps);
            (gap, gap)
        }
        ArrivalProcess::Bursty {
            base_rps,
            burst_rps,
            ..
        } => (
            Time::from_secs_f64(1.0 / base_rps),
            Time::from_secs_f64(1.0 / burst_rps),
        ),
        ArrivalProcess::ClosedLoop { .. } => unreachable!("caller checked open loop"),
    };
    let mut shard_of = vec![0usize; n];
    for (i, r) in ranges.iter().enumerate() {
        for node in r.clone() {
            shard_of[node as usize] = i;
        }
    }
    let target = config.requests;
    let mut pre: Vec<Vec<PreRequest>> = vec![Vec::new(); ranges.len()];
    let mut now = Time::ZERO;
    let mut issued = 0u64;
    loop {
        let class = engine_rng.weighted_index_with_total(&weights, weight_total);
        let user = if let ArrivalProcess::Bursty {
            crowd_users,
            crowd_share,
            ..
        } = config.arrival
        {
            if crowd_users > 0 && config.arrival.in_burst(now) && engine_rng.chance(crowd_share) {
                engine_rng.gen_range(0..crowd_users)
            } else {
                zipf.sample(&mut engine_rng)
            }
        } else {
            zipf.sample(&mut engine_rng)
        };
        // Static scalar routing: always the home node.
        let node = (user % n as u64) as u16;
        let (service, _is_miss) =
            servers[node as usize].service_by_class[class].sample_split(&mut service_rng);
        pre[shard_of[node as usize]].push(PreRequest {
            seq: issued,
            at: now,
            class: class as u32,
            user,
            node,
            service,
        });
        issued += 1;
        if issued >= target {
            break;
        }
        let (base, burst) = open_gaps;
        let mean = if config.arrival.in_burst(now) {
            burst
        } else {
            base
        };
        let gap = exponential(&mut engine_rng, mean);
        now = now.checked_add(gap).expect("simulated time overflow");
    }

    // Phase B — parallel workers: one sub-kernel per shard, each an
    // exact mirror of the sequential per-node event path.
    let abort = Arc::new(AtomicBool::new(false));
    let priorities: Vec<Priority> = config.mix.classes.iter().map(|c| c.priority).collect();
    let req_bytes: Vec<u64> = config
        .mix
        .classes
        .iter()
        .map(|c| c.profile.request_bytes())
        .collect();
    let resp_bytes: Vec<u64> = config
        .mix
        .classes
        .iter()
        .map(|c| c.profile.response_bytes())
        .collect();
    let mut server_chunks = servers.into_iter();
    let mut kernels: Vec<Kernel<ShardWorld, ShardEvent>> = Vec::with_capacity(ranges.len());
    for (range, pre_slice) in ranges.iter().zip(pre) {
        let len = (range.end - range.start) as usize;
        let world = ShardWorld {
            base: range.start,
            next: 0,
            servers: server_chunks.by_ref().take(len).collect(),
            admissions: (0..len)
                .map(|_| AdmissionControl::per_node(config.admission, n as u32))
                .collect(),
            requests: RequestSlab::new(),
            stats: (0..config.mix.classes.len())
                .map(|_| Stats::new())
                .collect(),
            priorities: priorities.clone(),
            req_bytes_by_class: req_bytes.clone(),
            resp_bytes_by_class: resp_bytes.clone(),
            backlog_cap: config.admission.backlog_per_node,
            completed: 0,
            end: Time::ZERO,
            fused: 0,
            trace: capture.then(Vec::new),
            last_arrival: vec![None; len],
            last_finish: vec![None; len],
            barrier: Time::MAX,
            abort: Arc::clone(&abort),
            pre: pre_slice,
        };
        let limit = (world.pre.len() as u64).saturating_mul(8) + 500_000;
        let mut kernel = Kernel::new(world).with_event_limit(limit);
        if let Some(first) = kernel.state().pre.first() {
            let at = first.at;
            kernel.schedule_event_at(at, ShardEvent::Arrival);
        }
        kernels.push(kernel);
    }

    match lookahead {
        Lookahead::Unbounded => {
            // Independent shards synchronize once, at the end.
            kernels = kernels
                .into_par_iter()
                .map(|mut k| {
                    k.state_mut().barrier = Time::MAX;
                    k.run();
                    k
                })
                .collect();
        }
        Lookahead::Window(window) => {
            // Barrier rounds: every shard runs to the shared horizon,
            // then the horizon advances by the window. (Repeated fork/
            // join instead of an in-round barrier primitive, so the
            // round count — and the output — is independent of how many
            // worker threads actually run.)
            let mut horizon = window;
            loop {
                kernels = kernels
                    .into_par_iter()
                    .map(|mut k| {
                        k.state_mut().barrier = horizon;
                        k.run_until(horizon);
                        k
                    })
                    .collect();
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let live = kernels
                    .iter()
                    .any(|k| k.pending() > 0 || k.state().next < k.state().pre.len());
                if !live {
                    break;
                }
                horizon = horizon
                    .checked_add(window)
                    .expect("barrier horizon overflow");
            }
        }
    }
    if abort.load(Ordering::Relaxed) {
        return None;
    }

    // Deterministic merge, in fixed shard (= node) order.
    let mut servers_all: Vec<Server> = Vec::with_capacity(n);
    let mut stats_all: Vec<Stats> = (0..config.mix.classes.len())
        .map(|_| Stats::new())
        .collect();
    let mut completed = 0u64;
    let mut end = Time::ZERO;
    let mut records: Option<Vec<RequestRecord>> = capture.then(Vec::new);
    let mut events = 0u64;
    let mut fused = 0u64;
    let mut peak = 0usize;
    let mut queue = QueueStats::default();
    let mut slab = (0usize, 0usize);
    for kernel in kernels {
        events += kernel.executed();
        peak = peak.max(kernel.peak_pending());
        queue.absorb(kernel.queue_stats());
        let (live, cap) = kernel.slab_occupancy();
        slab.0 += live;
        slab.1 += cap;
        let w = kernel.into_state();
        events += w.fused;
        fused += w.fused;
        completed += w.completed;
        end = end.max(w.end);
        for (acc, st) in stats_all.iter_mut().zip(&w.stats) {
            acc.hist.merge(&st.hist);
            acc.bytes += st.bytes;
            acc.admitted += st.admitted;
            acc.shed_rate += st.shed_rate;
            acc.shed_overload += st.shed_overload;
            acc.shed_backpressure += st.shed_backpressure;
            acc.shed_crash += st.shed_crash;
        }
        if let Some(out) = &mut records {
            out.extend(w.trace.expect("capture was requested on every shard"));
        }
        servers_all.extend(w.servers);
    }
    let credit_waits = servers_all.iter().map(|s| s.credit_waits).sum();
    let lease = static_lease_summary(config, &servers_all, borrow_failures);
    let report = assemble_report(
        config,
        n as u16,
        end,
        target,
        completed,
        credit_waits,
        remote_leases,
        borrow_failures,
        lease,
        &config.mix.classes,
        &stats_all,
    );
    let trace = records.map(|mut records| {
        records.sort_by_key(|r| r.seq);
        Trace { records }
    });
    let metrics = EngineMetrics {
        events,
        fused_arrivals: fused,
        peak_queue_depth: peak,
        queue,
        slab,
    };
    Some((report, trace, metrics))
}

/// One shard's world: the nodes in `base..base + servers.len()`, their
/// slice of the pre-drawn arrival stream, and mirrors of every
/// per-node accumulator the sequential engine keeps.
struct ShardWorld {
    /// First global node id owned by this shard.
    base: u16,
    /// This shard's slice of the arrival stream, ascending by `seq`
    /// (and therefore by time).
    pre: Vec<PreRequest>,
    /// Cursor into `pre`.
    next: usize,
    servers: Vec<Server>,
    admissions: Vec<AdmissionControl>,
    requests: RequestSlab,
    stats: Vec<Stats>,
    priorities: Vec<Priority>,
    req_bytes_by_class: Vec<u64>,
    resp_bytes_by_class: Vec<u64>,
    backlog_cap: usize,
    completed: u64,
    end: Time,
    /// Arrivals absorbed by lookahead fusion instead of the queue.
    fused: u64,
    trace: Option<Vec<RequestRecord>>,
    /// Per-local-node stamp of the most recent arrival, for tie
    /// detection against a same-time finish.
    last_arrival: Vec<Option<Time>>,
    /// Per-local-node stamp of the most recent finish, for the
    /// opposite firing order of the same tie.
    last_finish: Vec<Option<Time>>,
    /// Fusion bound: the arrival chain never advances the clock past
    /// this instant ([`Time::MAX`] when the lookahead is unbounded,
    /// making the chain instruction-equal to the sequential engine's).
    barrier: Time,
    /// Shared violation flag; once set, every handler bails and the
    /// whole parallel attempt is discarded.
    abort: Arc<AtomicBool>,
}

impl ShardWorld {
    fn violated(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    fn violate(&mut self) {
        self.abort.store(true, Ordering::Relaxed);
    }
}

/// Shard-local events: the two hot-path event kinds of the sequential
/// engine. (Lease, replay, session, and fault events never arise — the
/// eligibility gate excludes the configurations that schedule them.)
enum ShardEvent {
    /// Process the next pre-drawn arrival (chained, with bounded
    /// lookahead fusion).
    Arrival,
    /// A dispatched request finishes service; payload is its
    /// [`RequestSlab`] slot.
    Finish(u32),
}

type ShardSched = Scheduler<ShardWorld, ShardEvent>;

impl SimEvent<ShardWorld> for ShardEvent {
    fn fire(self, w: &mut ShardWorld, s: &mut ShardSched) {
        match self {
            ShardEvent::Arrival => arrival_chain(w, s),
            ShardEvent::Finish(slot) => finish(w, s, slot),
        }
    }
}

/// Mirrors [`open_arrival`](crate::engine)'s fusion loop over the
/// pre-drawn slice: consecutive arrivals that precede every pending
/// event (and the barrier) are processed in place; otherwise the next
/// one is scheduled and the chain resumes when it fires.
fn arrival_chain(w: &mut ShardWorld, s: &mut ShardSched) {
    if w.violated() {
        return;
    }
    loop {
        let pr = w.pre[w.next];
        w.next += 1;
        admit(w, s, pr);
        let Some(next_pr) = w.pre.get(w.next) else {
            return;
        };
        let at = next_pr.at;
        // Same fusion discipline as the sequential engine (ties go
        // through the queue), additionally bounded by the barrier so a
        // windowed round can never run past its horizon. The bound
        // changes queue traffic only — fusing and scheduling perform
        // identical state transitions.
        match s.next_event_time() {
            Some(next) if at >= next => {
                s.schedule_event_at(at, ShardEvent::Arrival);
                return;
            }
            _ if at > w.barrier => {
                s.schedule_event_at(at, ShardEvent::Arrival);
                return;
            }
            _ => {
                s.advance_to(at);
                w.fused += 1;
            }
        }
        if w.violated() {
            return;
        }
    }
}

/// Mirrors the sequential `issue_with` for a pre-drawn request: the
/// same admission call, the same slab insert, the same dispatch — with
/// the service time already drawn by the front-end.
fn admit(w: &mut ShardWorld, s: &mut ShardSched, pr: PreRequest) {
    let local = (pr.node - w.base) as usize;
    // A finish on this node at this exact instant: the sequential
    // engine orders the tie by global insertion history, which no
    // shard can reconstruct.
    if w.last_finish[local] == Some(pr.at) {
        w.violate();
        return;
    }
    w.last_arrival[local] = Some(pr.at);
    let class = pr.class as usize;
    match w.admissions[local].on_arrival(pr.at, w.priorities[class], false) {
        Decision::Shed(_) => {
            // The front-end drew this request's service time; the
            // sequential engine would not have. Every later service
            // draw is now misaligned — abort and re-run sequentially.
            w.violate();
        }
        Decision::Admit => {
            w.stats[class].admitted += 1;
            let slot = w.requests.insert(Request {
                seq: pr.seq,
                class: pr.class,
                user: pr.user,
                node: pr.node,
                arrival: pr.at,
                service: pr.service,
                generation: 0,
            });
            dispatch(w, s, slot);
        }
    }
}

/// Appends a trace record if tracing is on. Static runs have no lease
/// generations, so the field is always zero — as in the sequential
/// engine, whose `newest_generation` returns 0 without an elastic tier.
#[allow(clippy::too_many_arguments)]
fn record(
    w: &mut ShardWorld,
    seq: u64,
    at: Time,
    class: u32,
    user: u64,
    node: u16,
    outcome: RequestOutcome,
    latency: Time,
) {
    if let Some(trace) = &mut w.trace {
        trace.push(RequestRecord {
            seq,
            at_ns: at.as_ns(),
            tenant: class,
            user,
            node,
            outcome,
            latency_ns: latency.as_ns(),
            lease_generation: 0,
        });
    }
}

/// Mirrors the sequential `dispatch`: post toward the node's QPair, or
/// park under backpressure (dropping past the backlog bound).
fn dispatch(w: &mut ShardWorld, s: &mut ShardSched, slot: u32) {
    let now = s.now();
    let req = *w.requests.get(slot);
    let local = (req.node - w.base) as usize;
    let class = req.class as usize;
    let srv = &mut w.servers[local];
    match srv.qp.post_send(w.req_bytes_by_class[class]) {
        Ok(()) => {
            let deliver = now + srv.msg_lat_by_class[class];
            let best_slot = {
                let slots = &srv.slots;
                let mut best = 0;
                for (i, &t) in slots.iter().enumerate() {
                    if t < slots[best] {
                        best = i;
                    }
                }
                best
            };
            let start = deliver.max(srv.slots[best_slot]);
            let comp = start + req.service;
            srv.slots[best_slot] = comp;
            srv.inflight_by_class[class] += 1;
            s.schedule_event_at(comp, ShardEvent::Finish(slot));
        }
        Err(venice_transport::qpair::QpairError::NoCredit)
        | Err(venice_transport::qpair::QpairError::QueueFull) => {
            srv.credit_waits += 1;
            if srv.backlog.len() < w.backlog_cap {
                srv.backlog.push_back(slot);
            } else {
                let req = w.requests.take(slot);
                w.stats[class].shed_backpressure += 1;
                w.admissions[local].on_completion();
                record(
                    w,
                    req.seq,
                    req.arrival,
                    req.class,
                    req.user,
                    req.node,
                    RequestOutcome::ShedBackpressure,
                    Time::ZERO,
                );
            }
        }
        Err(e) => unreachable!("unexpected qpair error: {e:?}"),
    }
}

/// Mirrors the sequential `finish`: account the request, return the
/// credit, and drain the node's backlog.
fn finish(w: &mut ShardWorld, s: &mut ShardSched, slot: u32) {
    if w.violated() {
        return;
    }
    let now = s.now();
    let req = w.requests.take(slot);
    let local = (req.node - w.base) as usize;
    // An arrival on this node at this exact instant — the mirror-image
    // tie of the one `admit` detects.
    if w.last_arrival[local] == Some(now) {
        w.violate();
        return;
    }
    w.last_finish[local] = Some(now);
    let class = req.class as usize;
    let latency = now - req.arrival;
    w.stats[class].on_complete(
        latency,
        w.req_bytes_by_class[class] + w.resp_bytes_by_class[class],
    );
    w.completed += 1;
    if now > w.end {
        w.end = now;
    }
    w.admissions[local].on_completion();
    w.servers[local].inflight_by_class[class] -= 1;
    record(
        w,
        req.seq,
        req.arrival,
        req.class,
        req.user,
        req.node,
        RequestOutcome::Completed,
        latency,
    );
    let srv = &mut w.servers[local];
    srv.qp.drain_one();
    srv.qp.credit_update(1);
    if let Some(next) = srv.backlog.pop_front() {
        dispatch(w, s, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::engine::Run;
    use crate::tenants::TenantMix;

    // The storm family's shape (16-node mesh, 120 krps open loop) at a
    // test-sized request count: enough headroom that admission never
    // sheds, so the optimistic parallel path actually runs.
    fn storm_like(seed: u64, requests: u64) -> LoadgenConfig {
        LoadgenConfig {
            mesh: (4, 2, 2),
            arrival: ArrivalProcess::OpenPoisson {
                rate_rps: 120_000.0,
            },
            requests,
            ..LoadgenConfig::new(seed, TenantMix::web_frontend())
        }
    }

    fn bytes(report: &LoadReport, trace: &Option<Trace>) -> (String, String) {
        (
            serde_json::to_string(report).expect("report serializes"),
            trace.as_ref().map(Trace::to_jsonl).unwrap_or_default(),
        )
    }

    #[test]
    fn sharded_run_is_byte_identical_to_sequential() {
        let config = storm_like(0x51AB, 6_000);
        let seq = Run::new(&config).traced().execute();
        for shards in [2usize, 4, 8] {
            assert!(
                run_sharded(&config, false, shards, None).is_some(),
                "the parallel path must actually run, not fall back"
            );
            let out = Run::new(&config).traced().shards(shards).execute();
            assert_eq!(
                bytes(&out.report, &out.trace),
                bytes(&seq.report, &seq.trace),
                "{shards} shards diverged"
            );
            assert_eq!(
                out.metrics.events, seq.metrics.events,
                "merged event count must equal the sequential count"
            );
        }
    }

    #[test]
    fn forced_barrier_window_changes_nothing() {
        let config = storm_like(0xBA44, 5_000);
        let seq = Run::new(&config).traced().execute();
        // A bounded window forces round-based execution: the fusion
        // bound and repeated run_until rounds must be invisible in the
        // output.
        for window in [Time::from_us(50), Time::from_ms(5)] {
            let (report, trace, metrics) =
                run_sharded(&config, true, 4, Some(Lookahead::Window(window)))
                    .expect("independent world stays parallel under a forced window");
            assert_eq!(bytes(&report, &trace), bytes(&seq.report, &seq.trace));
            assert_eq!(metrics.events, seq.metrics.events);
        }
    }

    #[test]
    fn zero_window_refuses_parallelism() {
        let config = storm_like(0x0, 1_000);
        assert!(run_sharded(&config, false, 4, Some(Lookahead::Window(Time::ZERO))).is_none());
    }

    #[test]
    fn admission_pressure_falls_back_to_sequential_identically() {
        // A tiny in-flight cap forces admission sheds, which violate
        // the front-end's all-admitted assumption: the builder must
        // fall back to the sequential engine and still match it byte
        // for byte.
        let config = LoadgenConfig {
            admission: AdmissionConfig {
                max_inflight: 8,
                ..AdmissionConfig::default()
            },
            ..storm_like(0xFA11, 4_000)
        };
        assert!(
            run_sharded(&config, false, 4, None).is_none(),
            "sheds must abort the optimistic parallel attempt"
        );
        let seq = Run::new(&config).traced().execute();
        assert!(seq.report.shed_overload > 0, "config must actually shed");
        let out = Run::new(&config).traced().shards(4).execute();
        assert_eq!(
            bytes(&out.report, &out.trace),
            bytes(&seq.report, &seq.trace)
        );
    }

    #[test]
    fn ineligible_configs_run_sequentially_through_the_builder() {
        // Elastic leases derive a bounded window (the tick period);
        // the builder collapses to the sequential engine and output is
        // unchanged.
        let config = LoadgenConfig {
            lease: Some(venice_lease::LeaseConfig::default()),
            ..storm_like(0xE1A5, 3_000)
        };
        assert_eq!(
            derived_lookahead(&config),
            Lookahead::Window(venice_lease::LeaseConfig::default().tick_interval)
        );
        let seq = Run::new(&config).traced().execute();
        let out = Run::new(&config).traced().shards(8).execute();
        assert_eq!(
            bytes(&out.report, &out.trace),
            bytes(&seq.report, &seq.trace)
        );
    }

    #[test]
    fn shards_clamp_to_the_mesh() {
        // A 1-node mesh cannot split; the builder quietly runs the
        // sequential engine.
        let config = LoadgenConfig {
            mesh: (1, 1, 1),
            ..storm_like(0xC1A3, 2_000)
        };
        let seq = Run::new(&config).execute();
        let out = Run::new(&config).shards(8).execute();
        assert_eq!(
            serde_json::to_string(&out.report).unwrap(),
            serde_json::to_string(&seq.report).unwrap()
        );
    }
}
