//! The `loadgen-elastic` figure family: static vs elastic provisioning
//! under a bursty flash-crowd arrival process.
//!
//! The scenario every capacity planner knows: traffic idles at a base
//! rate, then a flash crowd slams a few nodes for a fraction of each
//! cycle. **Static** provisioning must size every node for the worst
//! case and hold that memory for the whole run; **elastic** leases start
//! every node at a small floor, let the hot nodes borrow up beyond the
//! static level while the crowd lasts, and release back between bursts.
//! The figures compare the two Venice modes against the
//! `venice-baselines` stacks (soNUMA-style messaging, swap-to-remote)
//! under the *identical* arrival stream — same seed, same per-tenant
//! arrival split, only the remote tier swapped out.
//!
//! The headline property (pinned by `tests/elastic.rs`): the elastic run
//! holds a strictly lower peak of provisioned remote memory than the
//! static run *and* a p99 no worse, because capacity follows the crowd
//! instead of being spread uniformly.

use rayon::prelude::*;
use venice::{Figure, Series};
use venice_lease::LeaseConfig;
use venice_sim::Time;

use crate::engine::{self, LoadgenConfig};
use crate::report::LoadReport;
use crate::stacks::RemoteStack;
use crate::tenants::TenantMix;
use crate::ArrivalProcess;

/// Base seed of the published elastic figures.
pub const ELASTIC_SEED: u64 = 0xE1A57C;

/// The flash-crowd arrival process: 6 krps base load spiking to 90 krps
/// for 200 ms of every 500 ms cycle, with 85 % of in-burst arrivals
/// coming from a 4-user crowd (concentrating on 4 of the 8 nodes).
pub fn bursty_arrival() -> ArrivalProcess {
    ArrivalProcess::Bursty {
        base_rps: 6_000.0,
        burst_rps: 90_000.0,
        period: Time::from_ms(500),
        burst_len: Time::from_ms(200),
        crowd_users: 4,
        crowd_share: 0.85,
    }
}

/// The lease policy of the elastic run: 64 MB chunks between a 1-chunk
/// floor and a 6-chunk (384 MB) ceiling — hot nodes may grow *past* the
/// 256 MB static level, paid for by the cold nodes staying at the floor.
///
/// The establish flow costs ~33 ms per chunk (measured from the Fig 2
/// model), so the policy is tuned to ramp **once**: the release
/// cooldown (250 ticks) fits a 300 ms burst gap exactly once, meaning a
/// hot node sheds a single chunk between bursts and re-enters the next
/// burst still above the static level — it never pays the full ramp
/// again after the first burst identifies it. The high watermark (10)
/// sits far above the cold nodes' burst-time occupancy (~2.5), so
/// spillover traffic cannot ratchet cold nodes up over many cycles.
pub fn lease_policy() -> LeaseConfig {
    LeaseConfig {
        chunk_bytes: 64 << 20,
        min_chunks: 1,
        max_chunks: 6,
        high_watermark: 10,
        low_watermark: 3,
        grow_cooldown_ticks: 2,
        release_cooldown_ticks: 250,
        tick_interval: Time::from_ms(1),
        ..LeaseConfig::default()
    }
}

/// Requests per comparison run. Sized so the one cold-start ramp (the
/// ~35 ms window before the first burst's grows land, ~2.7 k affected
/// requests) stays well under 1 % of the run — the p99 then reflects
/// steady elastic behavior, not the unavoidable first identification
/// of the hot set.
const REQUESTS: u64 = 400_000;

/// A statically provisioned run (256 MB per node, held for the whole
/// run) on the given remote stack.
pub fn static_config(seed: u64, stack: RemoteStack) -> LoadgenConfig {
    LoadgenConfig {
        arrival: bursty_arrival(),
        requests: REQUESTS,
        stack,
        ..LoadgenConfig::new(seed, TenantMix::web_frontend())
    }
}

/// The elastic Venice run under the same traffic.
pub fn elastic_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        lease: Some(lease_policy()),
        ..static_config(seed, RemoteStack::VeniceCrma)
    }
}

/// The comparison set, in figure order.
pub fn comparison_configs(seed: u64) -> Vec<(String, LoadgenConfig)> {
    vec![
        (
            "venice-static".to_string(),
            static_config(seed, RemoteStack::VeniceCrma),
        ),
        ("venice-elastic".to_string(), elastic_config(seed)),
        (
            "sonuma".to_string(),
            static_config(seed, RemoteStack::Sonuma),
        ),
        (
            "swap-ib".to_string(),
            static_config(seed, RemoteStack::SwapInfiniband),
        ),
        (
            "swap-eth".to_string(),
            static_config(seed, RemoteStack::SwapEthernet),
        ),
    ]
}

/// Runs the full comparison in parallel; results in figure order.
pub fn comparison_reports(seed: u64) -> Vec<(String, LoadReport)> {
    comparison_reports_scaled(seed, REQUESTS)
}

/// As [`comparison_reports`] but at a custom request count (the
/// thread-count-independence tests use a small one: rayon determinism
/// does not depend on run length).
pub fn comparison_reports_scaled(seed: u64, requests: u64) -> Vec<(String, LoadReport)> {
    comparison_configs(seed)
        .into_par_iter()
        .map(|(label, mut config)| {
            config.requests = requests;
            let report = engine::Run::new(&config).execute().report;
            (label, report)
        })
        .collect()
}

/// The *minimum* cluster-wide borrowed memory (MB) within each of
/// `buckets` equal segments of the run, reconstructed from the lease
/// event timeline (static runs are flat at their provisioning level).
/// A minimum, not a point sample: the elastic tier's release dips are
/// short relative to the burst cycle, and point samples at bucket
/// boundaries can alias onto the re-grown phase and miss every dip.
fn provisioning_curve(report: &LoadReport, buckets: usize) -> Vec<f64> {
    let end = report.duration;
    let mut out = Vec::with_capacity(buckets);
    if report.lease.events.is_empty() {
        // Static: constant at the provisioned level.
        return vec![(report.lease.peak_bytes >> 20) as f64; buckets];
    }
    let mut idx = 0usize;
    let mut current = 0u64;
    // Setup-time (t = 0) bootstrap events establish the starting level;
    // they are provisioning, not mid-run movement.
    while idx < report.lease.events.len() && report.lease.events[idx].at == Time::ZERO {
        current = report.lease.events[idx].total_bytes_after;
        idx += 1;
    }
    for b in 1..=buckets {
        let t = end.scale(b as f64 / buckets as f64);
        let mut low = current;
        while idx < report.lease.events.len() && report.lease.events[idx].at <= t {
            current = report.lease.events[idx].total_bytes_after;
            low = low.min(current);
            idx += 1;
        }
        out.push((low >> 20) as f64);
    }
    out
}

/// The `loadgen-elastic` figures: a summary table and the provisioning
/// timeline showing capacity following the flash crowd mid-run.
pub fn figures(seed: u64) -> Vec<Figure> {
    let reports = comparison_reports(seed);
    let mut summary = Figure::new(
        "loadgen-elastic-8n",
        "Static vs elastic provisioning under a flash crowd, 8-node mesh",
        "per-config summary: latency, provisioned remote memory, lease activity",
    )
    .with_columns(vec![
        "p50 ms".to_string(),
        "p99 ms".to_string(),
        "peak MB".to_string(),
        "mean MB".to_string(),
        "grows".to_string(),
        "shrinks".to_string(),
        "shed %".to_string(),
    ]);
    for (label, r) in &reports {
        summary.add_measured(Series::new(
            label.clone(),
            vec![
                r.total.p50_us / 1_000.0,
                r.total.p99_us / 1_000.0,
                (r.lease.peak_bytes >> 20) as f64,
                (r.lease.mean_bytes >> 20) as f64,
                r.lease.grows as f64,
                r.lease.shrinks as f64,
                100.0 * r.shed_total() as f64 / r.issued.max(1) as f64,
            ],
        ));
    }
    summary.notes = "elastic leases follow the flash crowd: lower peak memory than static \
                     provisioning at a no-worse tail (no published reference)"
        .to_string();

    const BUCKETS: usize = 16;
    let mut timeline = Figure::new(
        "loadgen-elastic-timeline-8n",
        "Borrowed remote memory over the run (flash-crowd traffic)",
        "minimum cluster-wide borrowed MB within each of 16 equal run segments",
    )
    .with_columns((1..=BUCKETS).map(|b| format!("t{b}")).collect::<Vec<_>>());
    for (label, r) in &reports {
        if label.starts_with("venice") {
            timeline.add_measured(Series::new(label.clone(), provisioning_curve(r, BUCKETS)));
        }
    }
    timeline.notes = "each segment's minimum sits below the elastic peak (the summary figure's \
                      'peak MB' column): hot nodes grow on each burst and release between \
                      bursts, while the static series never moves (no published reference)"
        .to_string();
    vec![summary, timeline]
}

/// The published figures at the canonical seed.
pub fn all() -> Vec<Figure> {
    figures(ELASTIC_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_stacks_and_modes() {
        let configs = comparison_configs(1);
        assert_eq!(configs.len(), 5);
        assert_eq!(
            configs.iter().filter(|(_, c)| c.lease.is_some()).count(),
            1,
            "exactly one elastic config"
        );
        let labels: Vec<&str> = configs.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"venice-static"));
        assert!(labels.contains(&"venice-elastic"));
        assert!(labels.contains(&"sonuma"));
    }

    #[test]
    fn provisioning_curve_tracks_events() {
        use venice_lease::{LeaseEvent, LeaseEventKind, Priority, NO_NODE, NO_TENANT};
        use venice_sim::Time;
        let mut r = engine_stub();
        r.duration = Time::from_ms(100);
        r.lease.events = vec![
            LeaseEvent {
                at: Time::from_ms(10),
                node: 0,
                donor: NO_NODE,
                kind: LeaseEventKind::Grew,
                chunks_after: 1,
                generation: 1,
                total_bytes_after: 128 << 20,
                tenant: NO_TENANT,
                tenant_bytes_after: 128 << 20,
                lessor: NO_TENANT,
                priority: Priority::Normal,
            },
            LeaseEvent {
                at: Time::from_ms(60),
                node: 0,
                donor: NO_NODE,
                kind: LeaseEventKind::Shrank,
                chunks_after: 0,
                generation: 1,
                total_bytes_after: 64 << 20,
                tenant: NO_TENANT,
                tenant_bytes_after: 64 << 20,
                lessor: NO_TENANT,
                priority: Priority::Normal,
            },
        ];
        let curve = provisioning_curve(&r, 10);
        // Bucket minima: the run starts empty (no setup events in this
        // synthetic timeline), holds 128 MB after the grow lands, and
        // dips to 64 MB in the bucket containing the release.
        assert_eq!(curve[0], 0.0); // (0,10ms]: entered empty
        assert_eq!(curve[1], 128.0); // held
        assert_eq!(curve[4], 128.0); // still held
        assert_eq!(curve[5], 64.0); // (50,60ms]: released
        assert_eq!(curve[9], 64.0);
    }

    fn engine_stub() -> LoadReport {
        let config = LoadgenConfig {
            requests: 200,
            ..LoadgenConfig::new(1, TenantMix::messaging())
        };
        engine::Run::new(&config).execute().report
    }
}
