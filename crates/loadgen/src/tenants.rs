//! Tenant mixes: who sends traffic and what each request costs.
//!
//! A [`TenantMix`] composes weighted [`TenantClass`]es — each wrapping one
//! of the calibrated `venice-workloads` request models — over a Zipf-skewed
//! population of simulated users. Populations scale to millions without
//! materializing per-user state: a user is a rank drawn from a
//! [`ZipfSampler`], and the rank determines both activity skew and home
//! node placement.

use venice_lease::Priority;
use venice_sim::{SimRng, Time};
use venice_workloads::kv::CacheMemory;
use venice_workloads::{KvCache, OltpWorkload, PageRank, ZipfSampler};

/// Memory context of the node serving a request: remote-tier latency
/// measured from the real cluster, plus how much remote capacity the node
/// holds *right now*. With elastic leases this changes mid-run — the
/// model is continuous in `remote_bytes`, so every borrowed chunk buys a
/// proportional capacity/locality benefit instead of a binary flip.
///
/// The model also carries the node's **donor side**: how much of its
/// lendable pool is currently granted out (`lent_bytes` of
/// `lendable_bytes`). With `lent_slowdown > 0` the service-time model
/// degrades continuously in the lent fraction — lending costs the donor
/// spare capacity it would otherwise use itself — and recovers as
/// revokes and releases land. At the default `lent_slowdown == 0.0`
/// lending is modeled as free and every service time is bit-identical
/// to the pre-pressure model (the frozen-baseline guarantee).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeModel {
    /// Local DRAM miss service latency.
    pub local_miss: Time,
    /// Measured CRMA read latency to this node's borrowed windows (only
    /// meaningful while `remote_bytes > 0`).
    pub remote_miss: Time,
    /// Borrowed remote-tier bytes currently held.
    pub remote_bytes: u64,
    /// The fully provisioned reference level (what a static setup would
    /// borrow); `remote_bytes / full_bytes` is the tier's fill fraction.
    pub full_bytes: u64,
    /// Bytes this node currently has lent out to other nodes (mirrors
    /// the cluster's donor-side ledger; maintained by the engine).
    pub lent_bytes: u64,
    /// The node's full lendable pool; `lent_bytes / lendable_bytes` is
    /// the donor-pressure fraction.
    pub lendable_bytes: u64,
    /// Maximum fractional service-time slowdown at full pool
    /// consumption ([`venice_lease::LeaseConfig::donor_pressure_slowdown`]);
    /// `0.0` disables the pressure term entirely.
    pub lent_slowdown: f64,
}

impl NodeModel {
    /// A node that failed to borrow (local tier only).
    pub fn local_only(local_miss: Time) -> Self {
        NodeModel {
            local_miss,
            remote_miss: Time::ZERO,
            remote_bytes: 0,
            full_bytes: 0,
            lent_bytes: 0,
            lendable_bytes: 0,
            lent_slowdown: 0.0,
        }
    }

    /// Whether the node holds any borrowed remote memory.
    pub fn has_remote(&self) -> bool {
        self.remote_bytes > 0
    }

    /// Fraction of the lendable pool currently granted out, in `[0, 1]`
    /// (0 when the node has no pool). This is the donor-benefit signal
    /// the engine feeds to [`venice_lease::NodeSignal::lent_pressure`].
    pub fn lent_pressure(&self) -> f64 {
        if self.lendable_bytes == 0 {
            0.0
        } else {
            (self.lent_bytes as f64 / self.lendable_bytes as f64).min(1.0)
        }
    }

    /// The service-time multiplier the donor pays for lending right now:
    /// `1 + lent_slowdown * lent_pressure`. Exactly `1.0` — and the hot
    /// path skips the multiply entirely — while the pressure term is
    /// disabled or nothing is lent, preserving bit-identity with the
    /// pressure-free model.
    pub fn lent_factor(&self) -> f64 {
        if self.lent_slowdown > 0.0 && self.lent_bytes > 0 {
            1.0 + self.lent_slowdown * self.lent_pressure()
        } else {
            1.0
        }
    }

    /// Fraction of the full provisioning level currently held, in
    /// `[0, 1]`.
    pub fn fill(&self) -> f64 {
        if self.full_bytes == 0 {
            if self.remote_bytes > 0 {
                1.0
            } else {
                0.0
            }
        } else {
            (self.remote_bytes as f64 / self.full_bytes as f64).min(1.0)
        }
    }
}

/// Per-request cost model of one tenant class.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestProfile {
    /// Redis-style cache lookup in front of a slow backend. Cache capacity
    /// beyond the node's local tier lives in borrowed remote memory.
    Kv {
        /// The cache model (footprint, hit/miss costs).
        cache: KvCache,
        /// Cache capacity provisioned per node.
        capacity_bytes: u64,
    },
    /// BerkeleyDB-style transaction: dependent index walks, 5 queries per
    /// transaction.
    Oltp {
        /// The OLTP model.
        workload: OltpWorkload,
        /// Fraction of data-tier misses served by the remote tier when the
        /// node holds a lease.
        remote_fraction: f64,
    },
    /// A slice of PageRank edge work (latency-tolerant batch analytics).
    PageRank {
        /// The kernel cost model.
        kernel: PageRank,
        /// Edges traversed per request.
        edges_per_request: u64,
        /// Graph footprint backing the memory profile.
        footprint_bytes: u64,
        /// Remote-tier fraction when a lease is held.
        remote_fraction: f64,
    },
    /// iperf-style messaging: the cost is transport-dominated; the server
    /// only pays a small per-message CPU charge.
    Iperf {
        /// Payload bytes per message.
        message_bytes: u64,
        /// Per-message server CPU.
        server_cpu: Time,
    },
}

impl RequestProfile {
    /// Request payload carried over the QPair from the edge gateway.
    pub fn request_bytes(&self) -> u64 {
        match self {
            RequestProfile::Kv { .. } => 128,
            RequestProfile::Oltp { .. } => 256,
            RequestProfile::PageRank { .. } => 64,
            RequestProfile::Iperf { message_bytes, .. } => *message_bytes,
        }
    }

    /// Approximate response payload (for goodput accounting).
    pub fn response_bytes(&self) -> u64 {
        match self {
            RequestProfile::Kv { cache, .. } => cache.value_bytes,
            RequestProfile::Oltp { workload, .. } => workload.record_bytes * 4,
            RequestProfile::PageRank { .. } => 64,
            RequestProfile::Iperf { .. } => 4,
        }
    }

    /// Bytes one request moves over the *fabric* when its node serves
    /// it from a borrowed remote tier — the per-class wire footprint
    /// the congested-fabric model charges against the node→donor path.
    /// A class constant (like [`RequestProfile::request_bytes`]), so
    /// the charge stays a table lookup on the dispatch path: the KV
    /// value walked out of the borrowed window, the OLTP records
    /// fetched per transaction, the PageRank edge partition touched per
    /// kernel step; iperf never touches the remote tier.
    pub fn remote_wire_bytes(&self) -> u64 {
        match self {
            RequestProfile::Kv { cache, .. } => cache.value_bytes,
            RequestProfile::Oltp { workload, .. } => workload.record_bytes * 4,
            RequestProfile::PageRank {
                edges_per_request, ..
            } => edges_per_request * 16,
            RequestProfile::Iperf { .. } => 0,
        }
    }

    /// Server-side service time of one request on a node described by
    /// `node`. Stochastic elements (cache hit/miss, service jitter) draw
    /// from `rng`.
    pub fn service_time(&self, rng: &mut SimRng, node: &NodeModel) -> Time {
        let base = match self {
            RequestProfile::Kv {
                cache,
                capacity_bytes,
            } => {
                let memory = if node.has_remote() {
                    CacheMemory::RemoteCrma(node.remote_miss)
                } else {
                    CacheMemory::Local
                };
                // The cache holds its local floor plus whatever remote
                // capacity the node has actually borrowed, capped at the
                // tenant's provisioned size — shrink the lease and the
                // miss rate climbs, grow it and the tail recovers.
                let capacity = (cache.local_floor_bytes + node.remote_bytes).min(*capacity_bytes);
                if rng.chance(cache.miss_rate(capacity)) {
                    cache.backend_cost
                } else {
                    cache.hit_time(capacity, memory)
                }
            }
            RequestProfile::Oltp {
                workload,
                remote_fraction,
            } => {
                let f = *remote_fraction * node.fill();
                workload
                    .profile()
                    .op_time_split(f, node.remote_miss, node.local_miss)
                    * OltpWorkload::QUERIES_PER_TXN
            }
            RequestProfile::PageRank {
                kernel,
                edges_per_request,
                footprint_bytes,
                remote_fraction,
            } => {
                let f = *remote_fraction * node.fill();
                kernel
                    .profile(*footprint_bytes)
                    .op_time_split(f, node.remote_miss, node.local_miss)
                    .scale(*edges_per_request as f64)
            }
            RequestProfile::Iperf { server_cpu, .. } => *server_cpu,
        };
        // Donor pressure: a lending node serves slower in proportion to
        // how much of its pool is out. The factor is exactly 1.0 (and
        // the scale is skipped) when the term is disabled, so untouched
        // configurations stay bit-identical.
        let factor = node.lent_factor();
        let base = if factor != 1.0 {
            base.scale(factor)
        } else {
            base
        };
        // ±10 % service jitter: dispersion that keeps the tail honest
        // without changing means materially.
        base.scale(0.9 + 0.2 * rng.unit())
    }

    /// Compiles this profile against a fixed [`NodeModel`] into a
    /// [`CompiledService`] whose [`sample`](CompiledService::sample) is
    /// **bit-identical** to [`service_time`](Self::service_time) — same
    /// RNG draw sequence, same float expressions, hoisted once instead
    /// of re-derived per request.
    ///
    /// The node model only changes on lease events (grow/shrink/revoke
    /// land), so the typed engine compiles per (node, class) at setup
    /// and recompiles the affected node when its tier moves; the
    /// per-request path collapses to at most one Bernoulli draw plus the
    /// jitter draw. The equivalence is pinned by a property test and by
    /// the engine-level typed-vs-legacy differential gates.
    pub fn compile(&self, node: &NodeModel) -> CompiledService {
        let compiled = match self {
            RequestProfile::Kv {
                cache,
                capacity_bytes,
            } => {
                let memory = if node.has_remote() {
                    CacheMemory::RemoteCrma(node.remote_miss)
                } else {
                    CacheMemory::Local
                };
                let capacity = (cache.local_floor_bytes + node.remote_bytes).min(*capacity_bytes);
                CompiledService::Coin {
                    miss_rate: cache.miss_rate(capacity),
                    miss: cache.backend_cost,
                    hit: cache.hit_time(capacity, memory),
                }
            }
            RequestProfile::Oltp {
                workload,
                remote_fraction,
            } => {
                let f = *remote_fraction * node.fill();
                CompiledService::Fixed(
                    workload
                        .profile()
                        .op_time_split(f, node.remote_miss, node.local_miss)
                        * OltpWorkload::QUERIES_PER_TXN,
                )
            }
            RequestProfile::PageRank {
                kernel,
                edges_per_request,
                footprint_bytes,
                remote_fraction,
            } => {
                let f = *remote_fraction * node.fill();
                CompiledService::Fixed(
                    kernel
                        .profile(*footprint_bytes)
                        .op_time_split(f, node.remote_miss, node.local_miss)
                        .scale(*edges_per_request as f64),
                )
            }
            RequestProfile::Iperf { server_cpu, .. } => CompiledService::Fixed(*server_cpu),
        };
        // Bake the donor-pressure factor into the compiled costs with
        // the *same* `Time::scale` call the interpreted path applies, so
        // compiled and interpreted stay bit-identical draw for draw.
        let factor = node.lent_factor();
        if factor == 1.0 {
            return compiled;
        }
        match compiled {
            CompiledService::Fixed(t) => CompiledService::Fixed(t.scale(factor)),
            CompiledService::Coin {
                miss_rate,
                miss,
                hit,
            } => CompiledService::Coin {
                miss_rate,
                miss: miss.scale(factor),
                hit: hit.scale(factor),
            },
        }
    }
}

/// A [`RequestProfile`] pre-evaluated against one [`NodeModel`]: the
/// node-state-dependent constants of the service-time model, hoisted off
/// the per-request path. Produced by [`RequestProfile::compile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompiledService {
    /// Deterministic base cost (OLTP, PageRank, iperf) — only the jitter
    /// draw remains per request.
    Fixed(Time),
    /// KV cache: one Bernoulli miss draw selects between two
    /// precomputed costs.
    Coin {
        /// Miss probability at the node's current cache capacity.
        miss_rate: f64,
        /// Cost of a miss (backend query).
        miss: Time,
        /// Cost of a hit at the node's current capacity/memory.
        hit: Time,
    },
}

impl CompiledService {
    /// Draws one service time; bit-identical to
    /// [`RequestProfile::service_time`] on the node this was compiled
    /// against (same draws from `rng`, same arithmetic).
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> Time {
        self.sample_split(rng).0
    }

    /// [`sample`](Self::sample) plus which branch the draw took: `true`
    /// when a [`Coin`](CompiledService::Coin) landed on the miss cost
    /// (`false` always for [`Fixed`](CompiledService::Fixed)). The
    /// attribution path needs the branch to pick the right
    /// [`CompiledAttrib`] remote share; the draw sequence is exactly
    /// `sample`'s.
    #[inline]
    pub fn sample_split(&self, rng: &mut SimRng) -> (Time, bool) {
        let (base, is_miss) = match self {
            CompiledService::Fixed(t) => (*t, false),
            CompiledService::Coin {
                miss_rate,
                miss,
                hit,
            } => {
                if rng.chance(*miss_rate) {
                    (*miss, true)
                } else {
                    (*hit, false)
                }
            }
        };
        (base.scale(0.9 + 0.2 * rng.unit()), is_miss)
    }
}

/// The remote-CRMA share of a compiled service time, in per-mille, per
/// coin branch. Produced by [`RequestProfile::compile_attrib`] against
/// the same [`NodeModel`] as the matching [`CompiledService`].
///
/// The share is a *ratio* of the pre-jitter cost, and both the ±10 %
/// jitter and the donor-pressure factor scale the whole sample, so the
/// ratio survives them exactly: `sampled_ps * pm / 1000` is the remote
/// picoseconds of any sample drawn from the matching compiled service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompiledAttrib {
    /// Remote share of the hit branch (and of every [`Fixed`]
    /// sample), per-mille.
    ///
    /// [`Fixed`]: CompiledService::Fixed
    pub hit_remote_pm: u32,
    /// Remote share of the miss branch, per-mille (zero for KV: a miss
    /// is a backend query, not a memory walk).
    pub miss_remote_pm: u32,
}

impl CompiledAttrib {
    /// Remote picoseconds of a sampled service time, given which branch
    /// [`CompiledService::sample_split`] took. Integer arithmetic; the
    /// result is `<= service.as_ps()` because the share is `<= 1000`.
    #[inline]
    pub fn remote_ps(&self, service: Time, is_miss: bool) -> u64 {
        let pm = if is_miss {
            self.miss_remote_pm
        } else {
            self.hit_remote_pm
        };
        service.as_ps() * u64::from(pm) / 1000
    }
}

/// `(with - without) * 1000 / with` clamped to `[0, 1000]`.
fn share_pm(with: Time, without: Time) -> u32 {
    let with_ps = with.as_ps();
    let delta = with_ps.saturating_sub(without.as_ps());
    (delta * 1000).checked_div(with_ps).unwrap_or(0).min(1000) as u32
}

impl RequestProfile {
    /// Compiles the remote-CRMA share of this profile's service time on
    /// `node`: what fraction of a sampled cost is time spent walking
    /// borrowed remote memory rather than local DRAM or CPU. Computed by
    /// differencing the cost model against itself with the remote term
    /// zeroed, so it stays consistent with [`compile`](Self::compile) by
    /// construction.
    pub fn compile_attrib(&self, node: &NodeModel) -> CompiledAttrib {
        match self {
            RequestProfile::Kv {
                cache,
                capacity_bytes,
            } => {
                if !node.has_remote() {
                    return CompiledAttrib::default();
                }
                let capacity = (cache.local_floor_bytes + node.remote_bytes).min(*capacity_bytes);
                CompiledAttrib {
                    hit_remote_pm: share_pm(
                        cache.hit_time(capacity, CacheMemory::RemoteCrma(node.remote_miss)),
                        cache.hit_time(capacity, CacheMemory::Local),
                    ),
                    // A miss pays the backend, not the borrowed tier.
                    miss_remote_pm: 0,
                }
            }
            RequestProfile::Oltp {
                workload,
                remote_fraction,
            } => {
                let f = *remote_fraction * node.fill();
                let p = workload.profile();
                let pm = share_pm(
                    p.op_time_split(f, node.remote_miss, node.local_miss),
                    p.op_time_split(f, Time::ZERO, node.local_miss),
                );
                CompiledAttrib {
                    hit_remote_pm: pm,
                    miss_remote_pm: pm,
                }
            }
            RequestProfile::PageRank {
                kernel,
                edges_per_request,
                footprint_bytes,
                remote_fraction,
            } => {
                let f = *remote_fraction * node.fill();
                let p = kernel.profile(*footprint_bytes);
                let scale = *edges_per_request as f64;
                let pm = share_pm(
                    p.op_time_split(f, node.remote_miss, node.local_miss)
                        .scale(scale),
                    p.op_time_split(f, Time::ZERO, node.local_miss).scale(scale),
                );
                CompiledAttrib {
                    hit_remote_pm: pm,
                    miss_remote_pm: pm,
                }
            }
            RequestProfile::Iperf { .. } => CompiledAttrib::default(),
        }
    }
}

/// One tenant class: a named request profile with a traffic weight, a
/// shedding priority, and an elastic-lease byte quota.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Tenant name (figure label).
    pub name: String,
    /// Request cost model.
    pub profile: RequestProfile,
    /// Relative traffic share (weights need not sum to 1).
    pub weight: f64,
    /// Admission priority: under contention, lower priorities are shed
    /// first (see [`Priority::capacity_share`]).
    pub priority: Priority,
    /// Elastic-lease byte quota: the most borrowed remote memory the
    /// lease manager may attribute to this tenant at once. Grows past it
    /// are refused locally, and while the tenant sits at its quota the
    /// admission layer clamps its in-flight share (over-quota tenants
    /// shed first). `u64::MAX` (the default) is effectively unlimited.
    pub quota_bytes: u64,
}

impl TenantClass {
    /// Creates a class at [`Priority::Normal`] with an unlimited quota.
    pub fn new(name: impl Into<String>, profile: RequestProfile, weight: f64) -> Self {
        TenantClass {
            name: name.into(),
            profile,
            weight,
            priority: Priority::Normal,
            quota_bytes: u64::MAX,
        }
    }

    /// Sets the class priority (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the elastic-lease byte quota (builder style).
    pub fn with_quota(mut self, quota_bytes: u64) -> Self {
        self.quota_bytes = quota_bytes;
        self
    }
}

/// A complete traffic mix: weighted tenant classes over a skewed user
/// population.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    /// Mix name (figure label).
    pub name: String,
    /// The tenant classes.
    pub classes: Vec<TenantClass>,
    /// Simulated user population (user ids are ranks in `[0, users)`).
    pub users: u64,
    /// Zipf skew of user activity in `[0, 1)`; 0.9 ≈ heavy-tailed web
    /// traffic.
    pub skew: f64,
}

impl TenantMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, any weight is non-positive, `users`
    /// is zero, or `skew` is outside `[0, 1)`.
    pub fn new(name: impl Into<String>, classes: Vec<TenantClass>, users: u64, skew: f64) -> Self {
        assert!(!classes.is_empty(), "mix needs at least one tenant class");
        assert!(
            classes.iter().all(|c| c.weight > 0.0),
            "weights must be positive"
        );
        assert!(users > 0, "population must be non-empty");
        assert!((0.0..1.0).contains(&skew), "skew must be in [0,1)");
        TenantMix {
            name: name.into(),
            classes,
            users,
            skew,
        }
    }

    /// The per-class weights, in class order.
    pub fn weights(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.weight).collect()
    }

    /// The per-class lease quotas, in class order (what the engine hands
    /// to [`venice_lease::LeaseManager::with_quotas`]).
    pub fn quotas(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.quota_bytes).collect()
    }

    /// The user-activity sampler for this population.
    pub fn user_sampler(&self) -> ZipfSampler {
        ZipfSampler::new(self.users, self.skew)
    }

    /// A loadgen-scaled KV cache: millisecond-class backend misses and
    /// tens-of-microseconds hits, so sustained-rate runs complete in
    /// simulated seconds (the paper's Fig 14 parameters model a one-shot
    /// batch query run and are 100x slower).
    fn service_kv() -> KvCache {
        KvCache {
            value_bytes: 16 << 10,
            key_count: 40_000, // 640 MB footprint: needs the remote tier
            hit_cpu: Time::from_us(25),
            backend_cost: Time::from_ms(2),
            local_floor_bytes: 128 << 20,
            crma_overlap: 4.0,
        }
    }

    /// Web front-end mix: cache-heavy with transactional writes behind it.
    pub fn web_frontend() -> Self {
        TenantMix::new(
            "web-frontend",
            vec![
                TenantClass::new(
                    "kv-cache",
                    RequestProfile::Kv {
                        cache: Self::service_kv(),
                        capacity_bytes: 512 << 20,
                    },
                    0.70,
                )
                .with_priority(Priority::High),
                TenantClass::new(
                    "oltp",
                    RequestProfile::Oltp {
                        workload: OltpWorkload::fig5(),
                        remote_fraction: 0.5,
                    },
                    0.25,
                ),
                TenantClass::new(
                    "telemetry",
                    RequestProfile::Iperf {
                        message_bytes: 256,
                        server_cpu: Time::from_us(2),
                    },
                    0.05,
                )
                .with_priority(Priority::Low),
            ],
            2_000_000,
            0.9,
        )
    }

    /// Analytics mix: edge-dominated batch work with a metadata store.
    pub fn analytics() -> Self {
        TenantMix::new(
            "analytics",
            vec![
                TenantClass::new(
                    "pagerank",
                    RequestProfile::PageRank {
                        kernel: PageRank::new(),
                        edges_per_request: 64,
                        footprint_bytes: 1 << 30,
                        remote_fraction: 0.7,
                    },
                    0.60,
                )
                .with_priority(Priority::Low),
                TenantClass::new(
                    "oltp-metadata",
                    RequestProfile::Oltp {
                        workload: OltpWorkload::fig5(),
                        remote_fraction: 0.3,
                    },
                    0.20,
                ),
                TenantClass::new(
                    "kv-results",
                    RequestProfile::Kv {
                        cache: Self::service_kv(),
                        capacity_bytes: 256 << 20,
                    },
                    0.20,
                ),
            ],
            500_000,
            0.8,
        )
    }

    /// Messaging mix: tiny-packet dominated, latency-critical.
    pub fn messaging() -> Self {
        TenantMix::new(
            "messaging",
            vec![
                TenantClass::new(
                    "fanout",
                    RequestProfile::Iperf {
                        message_bytes: 64,
                        server_cpu: Time::from_us(4),
                    },
                    0.65,
                )
                .with_priority(Priority::High),
                TenantClass::new(
                    "inbox-kv",
                    RequestProfile::Kv {
                        cache: Self::service_kv(),
                        capacity_bytes: 384 << 20,
                    },
                    0.35,
                ),
            ],
            4_000_000,
            0.95,
        )
    }

    /// The three canonical mixes the scenarios sweep.
    pub fn presets() -> Vec<TenantMix> {
        vec![Self::web_frontend(), Self::analytics(), Self::messaging()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeModel {
        NodeModel {
            local_miss: Time::from_ns(100),
            remote_miss: Time::from_us(3),
            remote_bytes: 384 << 20,
            full_bytes: 384 << 20,
            lent_bytes: 0,
            lendable_bytes: 0,
            lent_slowdown: 0.0,
        }
    }

    #[test]
    fn presets_are_well_formed() {
        for mix in TenantMix::presets() {
            assert!(!mix.classes.is_empty());
            assert!(mix.users >= 500_000);
            let z = mix.user_sampler();
            let mut rng = SimRng::seed(1);
            for _ in 0..100 {
                assert!(z.sample(&mut rng) < mix.users);
            }
        }
    }

    #[test]
    fn service_times_are_positive_and_seeded() {
        let n = node();
        for mix in TenantMix::presets() {
            for class in &mix.classes {
                let mut a = SimRng::seed(5);
                let mut b = SimRng::seed(5);
                let ta = class.profile.service_time(&mut a, &n);
                let tb = class.profile.service_time(&mut b, &n);
                assert_eq!(ta, tb, "{} not deterministic", class.name);
                assert!(ta > Time::ZERO, "{} zero service", class.name);
            }
        }
    }

    #[test]
    fn kv_miss_rate_drives_tail() {
        let kv = RequestProfile::Kv {
            cache: TenantMix::service_kv(),
            capacity_bytes: 512 << 20,
        };
        let with_remote = node();
        let without = NodeModel::local_only(Time::from_ns(100));
        let mut rng = SimRng::seed(9);
        let avg = |rng: &mut SimRng, n: &NodeModel| -> f64 {
            let total: Time = (0..2000).map(|_| kv.service_time(rng, n)).sum();
            total.as_us_f64() / 2000.0
        };
        let hot = avg(&mut rng, &with_remote);
        let cold = avg(&mut rng, &without);
        // Without the borrowed tier the cache shrinks to its local floor
        // and misses to the slow backend dominate.
        assert!(cold > hot * 2.0, "cold {cold}us vs hot {hot}us");
    }

    #[test]
    fn lent_pressure_degrades_continuously_and_recovers() {
        let mut n = node();
        n.lendable_bytes = 512 << 20;
        n.lent_slowdown = 0.5;
        assert_eq!(n.lent_factor(), 1.0, "nothing lent: no pressure");
        let base = |n: &NodeModel| {
            let mut rng = SimRng::seed(3);
            let kv = RequestProfile::Kv {
                cache: TenantMix::service_kv(),
                capacity_bytes: 512 << 20,
            };
            let total: Time = (0..500).map(|_| kv.service_time(&mut rng, n)).sum();
            total
        };
        let unlent = base(&n);
        // Half the pool out: factor 1.25, service times strictly slower.
        n.lent_bytes = 256 << 20;
        assert!((n.lent_factor() - 1.25).abs() < 1e-12);
        let half = base(&n);
        assert!(half > unlent, "lending did not slow the donor");
        // The whole pool out: factor 1.5, slower still (continuous, not
        // a binary flip).
        n.lent_bytes = 512 << 20;
        assert!((n.lent_factor() - 1.5).abs() < 1e-12);
        let full = base(&n);
        assert!(full > half);
        // Revoke lands: the pool returns and so does the service time,
        // bit for bit.
        n.lent_bytes = 0;
        assert_eq!(base(&n), unlent, "recovery must be exact");
        // Disabled term: lent bytes are free, bit-identical to unlent.
        let mut disabled = n;
        disabled.lent_bytes = 512 << 20;
        disabled.lent_slowdown = 0.0;
        assert_eq!(base(&disabled), unlent);
    }

    #[test]
    #[should_panic]
    fn empty_mix_rejected() {
        TenantMix::new("x", vec![], 10, 0.5);
    }

    #[test]
    fn sample_split_matches_sample_draw_for_draw() {
        let n = node();
        for mix in TenantMix::presets() {
            for class in &mix.classes {
                let compiled = class.profile.compile(&n);
                let mut a = SimRng::seed(0xAB);
                let mut b = SimRng::seed(0xAB);
                for _ in 0..1_000 {
                    let plain = compiled.sample(&mut a);
                    let (split, is_miss) = compiled.sample_split(&mut b);
                    assert_eq!(plain, split);
                    if matches!(compiled, CompiledService::Fixed(_)) {
                        assert!(!is_miss);
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_attrib_shares_are_sane() {
        let with_remote = node();
        let without = NodeModel::local_only(Time::from_ns(100));
        for mix in TenantMix::presets() {
            for class in &mix.classes {
                let hot = class.profile.compile_attrib(&with_remote);
                let cold = class.profile.compile_attrib(&without);
                assert!(hot.hit_remote_pm <= 1000 && hot.miss_remote_pm <= 1000);
                // No borrowed tier, no remote time.
                assert_eq!(cold, CompiledAttrib::default(), "{}", class.name);
                match &class.profile {
                    RequestProfile::Iperf { .. } => {
                        assert_eq!(hot, CompiledAttrib::default())
                    }
                    RequestProfile::Kv { .. } => {
                        assert!(hot.hit_remote_pm > 0, "remote hits walk CRMA");
                        assert_eq!(hot.miss_remote_pm, 0, "misses pay the backend");
                    }
                    _ => assert!(hot.hit_remote_pm > 0, "{}", class.name),
                }
                // The share bounds the attributed remote picoseconds by
                // the sample itself.
                let compiled = class.profile.compile(&with_remote);
                let mut rng = SimRng::seed(11);
                for _ in 0..200 {
                    let (t, is_miss) = compiled.sample_split(&mut rng);
                    assert!(hot.remote_ps(t, is_miss) <= t.as_ps());
                }
            }
        }
    }

    #[test]
    fn compiled_service_is_bit_identical_to_interpreted() {
        // The typed engine's hot path relies on compile()+sample()
        // replaying service_time() exactly: same rng draw count, same
        // bits out, across every preset profile and node state.
        let nodes = [
            NodeModel::local_only(Time::from_ns(100)),
            NodeModel {
                local_miss: Time::from_ns(100),
                remote_miss: Time::from_us(3),
                remote_bytes: 256 << 20,
                full_bytes: 256 << 20,
                lent_bytes: 0,
                lendable_bytes: 0,
                lent_slowdown: 0.0,
            },
            NodeModel {
                local_miss: Time::from_ns(100),
                remote_miss: Time::from_us(7),
                remote_bytes: 64 << 20,
                full_bytes: 512 << 20,
                lent_bytes: 0,
                lendable_bytes: 0,
                lent_slowdown: 0.0,
            },
            // A pressured donor: half its pool lent at a 60 % max
            // slowdown — the pressure term must stay bit-identical
            // between the interpreted and compiled paths too.
            NodeModel {
                local_miss: Time::from_ns(100),
                remote_miss: Time::from_us(3),
                remote_bytes: 128 << 20,
                full_bytes: 256 << 20,
                lent_bytes: 256 << 20,
                lendable_bytes: 512 << 20,
                lent_slowdown: 0.6,
            },
        ];
        for mix in TenantMix::presets() {
            for class in &mix.classes {
                for node in &nodes {
                    let compiled = class.profile.compile(node);
                    let mut a = SimRng::seed(0xC0FFEE);
                    let mut b = SimRng::seed(0xC0FFEE);
                    for i in 0..2_000 {
                        let interp = class.profile.service_time(&mut a, node);
                        let fast = compiled.sample(&mut b);
                        assert_eq!(
                            interp.as_ps(),
                            fast.as_ps(),
                            "{} sample {i} diverged",
                            class.name
                        );
                    }
                }
            }
        }
    }
}
