//! The lease-economy v3 figure families: donor-benefit modeling and the
//! cross-tenant quota market.
//!
//! Two questions the v2 controller could not answer, two figures:
//!
//! * **`loadgen-donor-benefit-8n`** — *is a revoke worth it, and when?*
//!   Earlier controllers treated lending as free for the donor: a
//!   revoke fired only when the donor's own queue depth crossed a
//!   watermark, however much of its pool was out. With the lent-memory
//!   pressure term armed ([`venice_lease::LeaseConfig::donor_pressure_slowdown`])
//!   a donor's service time degrades continuously as its lendable pool
//!   is consumed — so the figure compares the *watermark-only* revoke
//!   trigger against the *pressure-aware* one
//!   ([`venice_lease::LeaseConfig::donor_pressure_weight`]), which adds
//!   lent-pressure depth-equivalents and reclaims before the raw
//!   watermark trips. Same seed, same donor-pressure storm; the delta
//!   in donor-side p99 is pure revoke policy.
//! * **`loadgen-quota-market-8n`** — *what does trading headroom buy
//!   over hard quota walls?* The kv tenant carries a deliberately tight
//!   byte quota under a flash crowd that wants far more; the oltp
//!   tenant holds a large, mostly idle quota. Hard quotas refuse every
//!   over-quota grow outright; the sublease market
//!   ([`venice_lease::LeaseConfig::sublease_market`]) matches refusals
//!   against the idle headroom, charging the lessor's quota and
//!   conserving every byte on both the manager's ledger and the
//!   cluster's sublease chains. The figure pins the conversion rate and
//!   what the capped tenant's tail gains.
//!
//! Both families share the elastic/v2 seed so every row is comparable
//! with the previously published elastic figures.

use rayon::prelude::*;
use venice::{Figure, Series};
use venice_lease::{LeaseConfig, LeaseEventKind, NO_TENANT};

use crate::elastic;
use crate::elastic_v2;
use crate::engine::{self, LoadgenConfig};
use crate::report::LoadReport;
use crate::tenants::TenantMix;
use crate::trace::{RequestOutcome, Trace};

/// The shared seed of the economy figures (the elastic/v2 flash-crowd
/// seed, for row-to-row comparability).
pub const ECONOMY_SEED: u64 = elastic_v2::V2_SEED;

/// Maximum fractional service-time slowdown a fully lent donor pays in
/// the donor-benefit runs: 150 % — lending the whole 512 MB pool cuts
/// the donor's service rate to 40 %, which is what makes the revoke
/// decision a real tradeoff instead of a free lunch.
pub const DONOR_SLOWDOWN: f64 = 1.5;

/// Donor watermark of both donor-benefit rows. Deliberately *above*
/// v2's 14: raw queue depth alone should rarely justify a reclaim in
/// this storm, so the two rows separate cleanly — watermark-only donors
/// keep paying the lending tax, pressure-aware donors shed it.
pub const DONOR_WATERMARK: u32 = 20;

/// Depth-equivalents of revoke pressure at full pool consumption for
/// the pressure-aware row: 24 against the donor watermark of 20 — a
/// fully lent donor reclaims on *any* demand signal, a half-lent one
/// once its depth reaches 8. Chosen from a measured sweep: this is the
/// strongest setting that still improves the cluster-wide tail
/// alongside the donors' own (heavier weights with shorter revoke
/// cooldowns push donor p99 lower still, but starve the crowd nodes
/// mid-burst and blow up cluster p99 and shed).
pub const DONOR_PRESSURE_WEIGHT: f64 = 24.0;

/// The v3 donor-benefit storm: a two-user flash crowd (home nodes 0–1)
/// over a zero-floor lease policy, so the roles separate structurally —
/// the two crowd nodes borrow up to 8 chunks each while the other six
/// serve their own base traffic and *lend*. Cold donors never hold
/// borrowed chunks of their own, so a revoke can only reclaim from the
/// crowd nodes, and the donors' latency isolates the lending tax.
pub fn donor_benefit_arrival() -> crate::ArrivalProcess {
    crate::ArrivalProcess::Bursty {
        base_rps: 8_000.0,
        burst_rps: 40_000.0,
        period: venice_sim::Time::from_ms(500),
        burst_len: venice_sim::Time::from_ms(200),
        crowd_users: 2,
        crowd_share: 0.6,
    }
}

/// The watermark-only donor policy *with the pressure term modeled*:
/// zero-floor elastic leasing, donors degraded by lending, revokes
/// fired purely on the donor's raw queue depth.
pub fn watermark_only_policy() -> LeaseConfig {
    LeaseConfig {
        min_chunks: 0,
        max_chunks: 8,
        donor_high_watermark: DONOR_WATERMARK,
        revoke_cooldown_ticks: 40,
        donor_pressure_slowdown: DONOR_SLOWDOWN,
        ..elastic_v2::predictive_policy()
    }
}

/// The pressure-aware donor policy: identical modeling, but the revoke
/// trigger reads the lent-pressure signal.
pub fn pressure_aware_policy() -> LeaseConfig {
    LeaseConfig {
        donor_pressure_weight: DONOR_PRESSURE_WEIGHT,
        ..watermark_only_policy()
    }
}

/// The watermark-only donor-benefit run.
pub fn watermark_only_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        arrival: donor_benefit_arrival(),
        lease: Some(watermark_only_policy()),
        ..elastic::elastic_config(seed)
    }
}

/// The pressure-aware run: identical traffic and modeling, cost-aware
/// revoke trigger.
pub fn pressure_aware_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        lease: Some(pressure_aware_policy()),
        ..watermark_only_config(seed)
    }
}

/// The donor-benefit rows, in figure order.
pub fn donor_benefit_configs(seed: u64) -> Vec<(String, LoadgenConfig)> {
    vec![
        ("watermark-only".to_string(), watermark_only_config(seed)),
        ("pressure-aware".to_string(), pressure_aware_config(seed)),
    ]
}

/// The quota-market tenant mix: web-frontend with the kv tenant capped
/// at 384 MB (six 64 MB chunks — far below what the flash crowd wants)
/// and the oltp tenant holding a 2 GB quota it barely uses. The idle
/// oltp headroom is exactly what the market lets the kv tenant sublease.
pub fn market_mix() -> TenantMix {
    let mut mix = TenantMix::web_frontend();
    for class in &mut mix.classes {
        match class.name.as_str() {
            "kv-cache" => class.quota_bytes = 384 << 20,
            "oltp" => class.quota_bytes = 2 << 30,
            _ => {}
        }
    }
    mix
}

/// The hard-quota control: the elastic flash crowd over [`market_mix`],
/// market disarmed — every over-quota grow is refused outright.
pub fn hard_quota_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        mix: market_mix(),
        lease: Some(LeaseConfig {
            sublease_market: false,
            ..elastic::lease_policy()
        }),
        ..elastic::elastic_config(seed)
    }
}

/// The market run: identical traffic and quotas, sublease market armed.
pub fn market_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        lease: Some(LeaseConfig {
            sublease_market: true,
            ..elastic::lease_policy()
        }),
        ..hard_quota_config(seed)
    }
}

/// The quota-market rows, in figure order.
pub fn market_configs(seed: u64) -> Vec<(String, LoadgenConfig)> {
    vec![
        ("hard-quota".to_string(), hard_quota_config(seed)),
        ("market".to_string(), market_config(seed)),
    ]
}

/// Runs every economy row (both families) in parallel at a custom
/// request count; results in figure order. The determinism gate runs
/// this scaled down — rayon determinism does not depend on run length.
pub fn comparison_reports_scaled(seed: u64, requests: u64) -> Vec<(String, LoadReport)> {
    donor_benefit_configs(seed)
        .into_iter()
        .chain(market_configs(seed))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(label, mut config)| {
            config.requests = requests;
            let report = engine::Run::new(&config).execute().report;
            (label, report)
        })
        .collect()
}

/// The *pure donors* of a run: nodes that lent memory but never held
/// more than one borrowed chunk themselves. Under the donor-benefit
/// storm the flash crowd's home nodes both borrow heavily and lend
/// opportunistically, so a raw "ever lent" set would mix the lending
/// tax with the borrowing benefit; the pure donors' latency isolates
/// what lending costs them. The figure and its acceptance test both
/// evaluate over the union of this set across the compared rows.
pub fn pure_donor_nodes(report: &LoadReport) -> Vec<u16> {
    let mut peak = vec![0u32; report.nodes as usize];
    for e in &report.lease.events {
        if e.node != u16::MAX {
            let p = &mut peak[e.node as usize];
            *p = (*p).max(e.chunks_after);
        }
    }
    report
        .lease
        .donor_nodes
        .iter()
        .copied()
        .filter(|&n| peak[n as usize] <= 1)
        .collect()
}

/// Exact latency quantile (µs) over the completed requests served by
/// `nodes` — the donor-side tail the summary histograms cannot isolate,
/// computed offline from the trace.
pub fn node_quantile_us(trace: &Trace, nodes: &[u16], q: f64) -> f64 {
    let mut lat: Vec<u64> = trace
        .records
        .iter()
        .filter(|r| r.outcome == RequestOutcome::Completed && nodes.contains(&r.node))
        .map(|r| r.latency_ns)
        .collect();
    if lat.is_empty() {
        return 0.0;
    }
    lat.sort_unstable();
    let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
    lat[idx.min(lat.len() - 1)] as f64 / 1_000.0
}

/// Reconstructs the subleased-bytes ledger trajectory from the event
/// timeline: the value at the end of each of `buckets` equal run
/// segments, in MB. `chunk` is the lease policy's chunk size (every
/// sublease moves exactly one chunk).
fn sublease_curve(report: &LoadReport, buckets: usize, chunk: u64) -> Vec<f64> {
    let end = report.duration;
    let mut out = Vec::with_capacity(buckets);
    let mut idx = 0usize;
    let mut current = 0i64;
    let chunk = chunk as i64;
    for b in 1..=buckets {
        let t = end.scale(b as f64 / buckets as f64);
        while idx < report.lease.events.len() && report.lease.events[idx].at <= t {
            let e = &report.lease.events[idx];
            match e.kind {
                LeaseEventKind::Subleased => current += chunk,
                LeaseEventKind::SubleaseReturned => current -= chunk,
                LeaseEventKind::Revoked if e.lessor != NO_TENANT => current -= chunk,
                _ => {}
            }
            idx += 1;
        }
        out.push((current >> 20) as f64);
    }
    out
}

/// The donor-benefit figure at `seed`. Runs both rows traced (rayon) —
/// the donor-side quantiles come from the per-request records, over the
/// union of the two rows' donor sets so both rows are judged on the
/// same nodes.
pub fn donor_benefit_figure(seed: u64) -> Figure {
    let runs: Vec<(String, LoadReport, Trace)> = donor_benefit_configs(seed)
        .into_par_iter()
        .map(|(label, config)| {
            let out = engine::Run::new(&config).traced().execute();
            let trace = out.trace.expect("traced run captures a trace");
            (label, out.report, trace)
        })
        .collect();
    // The evaluated donor set: the union of both rows' pure donors, so
    // each row is judged on the same nodes.
    let mut donors: Vec<u16> = runs
        .iter()
        .flat_map(|(_, r, _)| pure_donor_nodes(r))
        .collect();
    donors.sort_unstable();
    donors.dedup();

    let mut fig = Figure::new(
        "loadgen-donor-benefit-8n",
        "Pressure-aware vs watermark-only revoke under the donor-pressure storm, 8-node mesh",
        "donor-side latency over the shared donor set; lent-memory pressure term armed in both rows",
    )
    .with_columns(
        [
            "donor p50 us",
            "donor p99 us",
            "all p99 ms",
            "revokes",
            "revoke denied",
            "donor nodes",
            "shed %",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    for (label, r, trace) in &runs {
        fig.add_measured(Series::new(
            label.clone(),
            vec![
                node_quantile_us(trace, &donors, 0.50),
                node_quantile_us(trace, &donors, 0.99),
                r.total.p99_us / 1_000.0,
                r.lease.revokes as f64,
                r.lease.revoke_denials as f64,
                donors.len() as f64,
                100.0 * r.shed_total() as f64 / r.issued.max(1) as f64,
            ],
        ));
    }
    fig.notes = format!(
        "both rows pay the lent-memory pressure term (donors up to {:.0}% slower at full \
         pool consumption); the pressure-aware trigger adds {} depth-equivalents of lent \
         pressure and reclaims before the raw watermark trips, so the donors' own tail \
         recovers sooner — strictly lower donor p99 on the identical arrival stream \
         (no published reference)",
        DONOR_SLOWDOWN * 100.0,
        DONOR_PRESSURE_WEIGHT,
    );
    fig
}

/// The quota-market figure at `seed`: hard quotas vs the sublease
/// market under identical traffic.
pub fn quota_market_figure(seed: u64) -> Figure {
    let reports: Vec<(String, LoadReport)> = market_configs(seed)
        .into_par_iter()
        .map(|(label, config)| {
            let report = engine::Run::new(&config).execute().report;
            (label, report)
        })
        .collect();
    let kv_idx = market_mix()
        .classes
        .iter()
        .position(|c| c.name == "kv-cache")
        .expect("market mix has the kv tenant");

    let mut fig = Figure::new(
        "loadgen-quota-market-8n",
        "Hard quotas vs the cross-tenant sublease market under a flash crowd, 8-node mesh",
        "the kv tenant is capped at 384 MB; the market converts its refusals into \
         subleases of the oltp tenant's idle 2 GB headroom",
    )
    .with_columns(
        [
            "kv p99 ms",
            "all p99 ms",
            "quota denials",
            "subleases",
            "converted %",
            "peak MB",
            "kv MB",
            "kv charged MB",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    for (label, r) in &reports {
        let denied = r.lease.quota_denials;
        let converted = r.lease.subleases;
        let conversion = if converted + denied > 0 {
            100.0 * converted as f64 / (converted + denied) as f64
        } else {
            0.0
        };
        fig.add_measured(Series::new(
            label.clone(),
            vec![
                r.tenants[kv_idx].p99_us / 1_000.0,
                r.total.p99_us / 1_000.0,
                denied as f64,
                converted as f64,
                conversion,
                (r.lease.peak_bytes >> 20) as f64,
                (r.lease.tenant_bytes[kv_idx] >> 20) as f64,
                (r.lease.charged_bytes[kv_idx] >> 20) as f64,
            ],
        ));
    }
    let market = &reports
        .iter()
        .find(|(l, _)| l == "market")
        .expect("market row ran")
        .1;
    let chunk = market_config(seed)
        .lease
        .expect("market rows are elastic")
        .chunk_bytes;
    let curve = sublease_curve(market, 8, chunk);
    fig.notes = format!(
        "over half of the hard-quota refusals convert into subleases charged against the \
         oltp tenant's idle headroom, with conservation held on both the manager ledger \
         and the cluster's sublease chains; subleased MB at each run eighth: {curve:?} \
         (no published reference)"
    );
    fig
}

/// The economy figures at `seed`, in registration order.
pub fn figures(seed: u64) -> Vec<Figure> {
    vec![donor_benefit_figure(seed), quota_market_figure(seed)]
}

/// The published economy figures at the canonical seed.
pub fn all() -> Vec<Figure> {
    figures(ECONOMY_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn donor_rows_differ_only_in_the_revoke_trigger() {
        let (_, watermark) = &donor_benefit_configs(1)[0];
        let (_, aware) = &donor_benefit_configs(1)[1];
        assert_eq!(watermark.arrival, aware.arrival);
        assert_eq!(watermark.mix, aware.mix);
        let w = watermark.lease.unwrap();
        let a = aware.lease.unwrap();
        assert_eq!(w.donor_pressure_slowdown, DONOR_SLOWDOWN);
        assert_eq!(a.donor_pressure_slowdown, DONOR_SLOWDOWN);
        assert_eq!(w.donor_pressure_weight, 0.0);
        assert_eq!(a.donor_pressure_weight, DONOR_PRESSURE_WEIGHT);
        assert_eq!(
            LeaseConfig {
                donor_pressure_weight: 0.0,
                ..a
            },
            w
        );
    }

    #[test]
    fn market_rows_differ_only_in_the_market_switch() {
        let (_, hard) = &market_configs(1)[0];
        let (_, market) = &market_configs(1)[1];
        assert_eq!(hard.arrival, market.arrival);
        assert_eq!(hard.mix, market.mix);
        assert!(!hard.lease.unwrap().sublease_market);
        assert!(market.lease.unwrap().sublease_market);
        let kv = hard.mix.classes.iter().find(|c| c.name == "kv-cache");
        assert_eq!(kv.unwrap().quota_bytes, 384 << 20);
        let oltp = hard.mix.classes.iter().find(|c| c.name == "oltp");
        assert_eq!(oltp.unwrap().quota_bytes, 2 << 30);
    }

    #[test]
    fn node_quantiles_read_the_trace_exactly() {
        use crate::trace::RequestRecord;
        let rec = |node: u16, latency_ns: u64, outcome| RequestRecord {
            seq: 0,
            at_ns: 0,
            tenant: 0,
            user: 0,
            node,
            outcome,
            latency_ns,
            lease_generation: 0,
        };
        let trace = Trace {
            records: vec![
                rec(0, 1_000, RequestOutcome::Completed),
                rec(0, 3_000, RequestOutcome::Completed),
                rec(0, 9_000, RequestOutcome::ShedRate), // sheds excluded
                rec(1, 50_000, RequestOutcome::Completed), // off-set node
                rec(0, 2_000, RequestOutcome::Completed),
            ],
        };
        // Node 0's completed latencies: 1, 2, 3 µs.
        assert_eq!(node_quantile_us(&trace, &[0], 0.50), 2.0);
        assert_eq!(node_quantile_us(&trace, &[0], 1.0), 3.0);
        assert_eq!(node_quantile_us(&trace, &[0, 1], 1.0), 50.0);
        assert_eq!(node_quantile_us(&trace, &[7], 0.99), 0.0, "empty set");
    }
}
