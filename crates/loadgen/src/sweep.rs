//! Parallel configuration sweeps.
//!
//! A [`SweepSpec`] spans a grid of (mesh size × tenant mix × arrival
//! rate × remote stack); [`run_sweep`] fans the grid over rayon and
//! returns one [`SweepPoint`] per cell. Determinism at any thread count
//! comes from two properties: every point derives its own seed purely
//! from the spec seed and the point's grid index, and results are
//! collected in grid order — never in completion order.

use rayon::prelude::*;
use venice::{Figure, Series};

use crate::engine::{self, LoadgenConfig};
use crate::report::LoadReport;
use crate::stacks::RemoteStack;
use crate::tenants::TenantMix;
use crate::ArrivalProcess;

/// A grid of loadgen configurations.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Base seed; each point derives an independent stream from it.
    pub seed: u64,
    /// Mesh dimensions to sweep.
    pub meshes: Vec<(u16, u16, u16)>,
    /// Tenant mixes to sweep.
    pub mixes: Vec<TenantMix>,
    /// Open-loop arrival rates to sweep (requests per second).
    pub rates_rps: Vec<f64>,
    /// Remote-memory stacks to sweep (Venice vs the `venice-baselines`
    /// comparison systems, under identical traffic).
    pub stacks: Vec<RemoteStack>,
    /// Requests generated per grid point.
    pub requests_per_point: u64,
}

impl SweepSpec {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.meshes.len() * self.mixes.len() * self.rates_rps.len() * self.stacks.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into per-point configurations, in grid order
    /// (mesh-major, then mix, then rate, then stack). Every stack in one
    /// (mesh, mix, rate) cell shares that cell's seed, so stack-vs-stack
    /// series really do run the identical arrival stream — the seed is
    /// derived from the *traffic* cell, never the stack dimension.
    pub fn configs(&self) -> Vec<LoadgenConfig> {
        let mut out = Vec::with_capacity(self.len());
        let mut cell = 0u64;
        for &mesh in &self.meshes {
            for mix in &self.mixes {
                for &rate_rps in &self.rates_rps {
                    let seed = point_seed(self.seed, cell);
                    cell += 1;
                    for &stack in &self.stacks {
                        out.push(LoadgenConfig {
                            mesh,
                            arrival: ArrivalProcess::OpenPoisson { rate_rps },
                            requests: self.requests_per_point,
                            stack,
                            ..LoadgenConfig::new(seed, mix.clone())
                        });
                    }
                }
            }
        }
        out
    }
}

/// SplitMix64-style derivation of a point seed from the spec seed and the
/// point's grid index — independent of execution order.
fn point_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        ^ index
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0xD1B54A32D192ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One completed grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Mesh dimensions of the cell.
    pub mesh: (u16, u16, u16),
    /// Mix name.
    pub mix: String,
    /// Offered rate.
    pub rate_rps: f64,
    /// Remote stack of the cell.
    pub stack: RemoteStack,
    /// The run's report.
    pub report: LoadReport,
}

/// Runs every grid point in parallel; the result vector is in grid order.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepPoint> {
    spec.configs()
        .into_par_iter()
        .map(|config| {
            let ArrivalProcess::OpenPoisson { rate_rps } = config.arrival else {
                unreachable!("sweep configs are open-loop");
            };
            SweepPoint {
                mesh: config.mesh,
                mix: config.mix.name.clone(),
                rate_rps,
                stack: config.stack,
                report: engine::Run::new(&config).execute().report,
            }
        })
        .collect()
}

/// Runs the sweep and renders it as `Figure`s: for every mesh size, a p99
/// figure and a goodput figure over the rate axis, one series per
/// (mix × stack) combination (the stack suffix is dropped when the sweep
/// covers only one stack).
pub fn figures(spec: &SweepSpec) -> Vec<Figure> {
    let points = run_sweep(spec);
    let columns: Vec<String> = spec
        .rates_rps
        .iter()
        .map(|r| format!("{:.0}k rps", r / 1_000.0))
        .collect();
    let label = |mix: &TenantMix, stack: RemoteStack| {
        if spec.stacks.len() == 1 {
            mix.name.clone()
        } else {
            format!("{} ({})", mix.name, stack.label())
        }
    };
    let mut out = Vec::new();
    for &mesh in &spec.meshes {
        let n = mesh.0 as u32 * mesh.1 as u32 * mesh.2 as u32;
        let mut p99 = Figure::new(
            format!("loadgen-p99-{n}n"),
            format!("Tail latency under sustained load, {n}-node mesh"),
            "p99 end-to-end latency (ms) vs offered open-loop rate",
        )
        .with_columns(columns.clone());
        let mut tput = Figure::new(
            format!("loadgen-tput-{n}n"),
            format!("Achieved throughput, {n}-node mesh"),
            "completed requests per second vs offered open-loop rate",
        )
        .with_columns(columns.clone());
        for mix in &spec.mixes {
            for &stack in &spec.stacks {
                let rows: Vec<&SweepPoint> = points
                    .iter()
                    .filter(|p| p.mesh == mesh && p.mix == mix.name && p.stack == stack)
                    .collect();
                p99.add_measured(Series::new(
                    label(mix, stack),
                    rows.iter()
                        .map(|p| p.report.total.p99_us / 1_000.0)
                        .collect(),
                ));
                tput.add_measured(Series::new(
                    label(mix, stack),
                    rows.iter().map(|p| p.report.total.throughput_rps).collect(),
                ));
            }
        }
        p99.notes = "loadgen scenario family: beyond the paper's figures (no published reference)"
            .to_string();
        tput.notes = p99.notes.clone();
        out.push(p99);
        out.push(tput);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            seed: 99,
            meshes: vec![(2, 2, 1)],
            mixes: vec![TenantMix::web_frontend(), TenantMix::messaging()],
            rates_rps: vec![5_000.0, 50_000.0],
            stacks: vec![RemoteStack::VeniceCrma],
            requests_per_point: 800,
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let a = run_sweep(&tiny_spec());
        let b = run_sweep(&tiny_spec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn point_seeds_are_index_stable() {
        // Reordering the grid must not change a given cell's result: the
        // seed depends only on (spec seed, index).
        assert_ne!(point_seed(1, 0), point_seed(1, 1));
        assert_eq!(point_seed(7, 3), point_seed(7, 3));
    }

    #[test]
    fn figures_have_grid_shape() {
        let figs = figures(&tiny_spec());
        assert_eq!(figs.len(), 2); // p99 + tput for the single mesh
        for f in &figs {
            assert_eq!(f.columns.len(), 2);
            assert_eq!(f.measured.len(), 2);
            for s in &f.measured {
                assert!(s.values.iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
    }

    #[test]
    fn multi_stack_sweeps_label_series_per_stack() {
        let spec = SweepSpec {
            mixes: vec![TenantMix::messaging()],
            rates_rps: vec![10_000.0],
            stacks: vec![RemoteStack::VeniceCrma, RemoteStack::SwapEthernet],
            requests_per_point: 400,
            ..tiny_spec()
        };
        assert_eq!(spec.len(), 2);
        // Both stacks of one traffic cell share the cell seed, so they
        // run the identical arrival stream.
        let configs = spec.configs();
        assert_eq!(configs[0].seed, configs[1].seed);
        let points = run_sweep(&spec);
        assert_eq!(points[0].report.issued, points[1].report.issued);
        let figs = figures(&spec);
        let labels: Vec<&str> = figs[0].measured.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["messaging (venice)", "messaging (swap-eth)"]);
    }
}
