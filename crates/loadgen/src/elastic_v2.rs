//! The `loadgen-elastic-v2` figure families: what the second-generation
//! lease controller buys over PR 2's reactive loop.
//!
//! Two questions, two figures, one flash-crowd seed shared with the
//! [`crate::elastic`] family so every number is comparable:
//!
//! * **`loadgen-elastic-v2-8n`** — *predictive vs reactive growth.* The
//!   reactive controller grows only after a node's queue depth crosses
//!   the high watermark, so every burst's first chunks arrive one full
//!   establish flow (~33 ms per 64 MB) after the pressure did. The
//!   predictive controller tracks an EWMA of the depth slope and grows
//!   when the *projected* depth crosses the watermark within one
//!   establish horizon — the borrowed capacity lands as the crowd
//!   peaks, not after it. Same seed, same arrival stream, same chunk
//!   range: the p99 difference is pure controller.
//! * **`loadgen-donor-pressure-8n`** — *donor-side reclaim.* With a
//!   donor watermark armed, a lending node whose own queue depth climbs
//!   demands its newest lent chunk back through the real Monitor–Node
//!   teardown path (modeled teardown latency included; the recipient
//!   keeps serving until the unmap lands). The figure compares a
//!   donor-passive run against a donor-armed run under traffic whose
//!   burst spillover loads the donors themselves, and pins that loaded
//!   donors really do reclaim chunks mid-run.
//!
//! The per-tenant quota machinery rides through both families: the
//! donor-pressure run also caps the kv tenant's lease budget, so the
//! figure's quota column shows grows refused locally (and the tenant
//! clamped at admission) once its ledger fills.

use rayon::prelude::*;
use venice::{Figure, Series};
use venice_lease::{LeaseConfig, LeaseEventKind};

use crate::elastic::{self, ELASTIC_SEED};
use crate::engine::{self, LoadgenConfig};
use crate::report::LoadReport;
use crate::tenants::TenantMix;

/// The flash-crowd seed shared with the `loadgen-elastic` family: the
/// v2 rows are directly comparable with PR 2's published reactive row.
pub const V2_SEED: u64 = ELASTIC_SEED;

/// The predictive lease policy: PR 2's elastic policy with the slope
/// predictor armed. The horizon matches the measured establish latency
/// of one 64 MB chunk (~33 ms) over the 1 ms tick, so a predicted grow
/// decided now lands roughly when the projected depth would have
/// crossed the watermark.
pub fn predictive_policy() -> LeaseConfig {
    LeaseConfig {
        predict_horizon_ticks: 33,
        slope_alpha: 0.35,
        ..elastic::lease_policy()
    }
}

/// The donor-armed policy: prediction plus donor-side reclaim. The
/// donor watermark sits above the high watermark — a donor starts
/// pulling memory back only once it is *more* pressured than a node
/// merely wanting to grow — and the revoke cooldown spaces reclaims at
/// least 60 ticks apart per donor.
pub fn donor_policy() -> LeaseConfig {
    LeaseConfig {
        donor_high_watermark: 14,
        revoke_cooldown_ticks: 60,
        ..predictive_policy()
    }
}

/// PR 2's reactive elastic run (the baseline row, re-measured).
pub fn reactive_config(seed: u64) -> LoadgenConfig {
    elastic::elastic_config(seed)
}

/// The predictive run: identical traffic, predictor armed.
pub fn predictive_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        lease: Some(predictive_policy()),
        ..elastic::elastic_config(seed)
    }
}

/// The donor-pressure run: the flash crowd's spillover load is heavy
/// enough to pressure the lending nodes themselves (higher burst rate,
/// less crowd concentration than the base scenario), donors are armed
/// to reclaim, and the kv tenant carries a 1 GB cluster-wide lease
/// quota so the quota path shows up in the same figure.
pub fn donor_config(seed: u64) -> LoadgenConfig {
    let mut mix = TenantMix::web_frontend();
    for class in &mut mix.classes {
        if class.name == "kv-cache" {
            class.quota_bytes = 1 << 30;
        }
    }
    LoadgenConfig {
        arrival: crate::ArrivalProcess::Bursty {
            base_rps: 6_000.0,
            burst_rps: 110_000.0,
            period: venice_sim::Time::from_ms(500),
            burst_len: venice_sim::Time::from_ms(200),
            crowd_users: 4,
            crowd_share: 0.70,
        },
        mix,
        lease: Some(donor_policy()),
        ..elastic::elastic_config(seed)
    }
}

/// The donor-passive control: identical traffic and quota, donor
/// reclaim disarmed — the delta against [`donor_config`] isolates what
/// revocation does.
pub fn donor_passive_config(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        lease: Some(LeaseConfig {
            donor_high_watermark: 0,
            ..donor_policy()
        }),
        ..donor_config(seed)
    }
}

/// The four v2 runs, in figure order.
///
/// The reactive row deliberately re-runs the elastic family's
/// `venice-elastic` configuration instead of borrowing its report: every
/// figure family must be regenerable on its own through the `figures`
/// binary's id filter, so cross-family sharing would trade a sub-second
/// duplicate simulation for a family that cannot stand alone.
pub fn comparison_configs(seed: u64) -> Vec<(String, LoadgenConfig)> {
    vec![
        ("venice-reactive".to_string(), reactive_config(seed)),
        ("venice-predictive".to_string(), predictive_config(seed)),
        ("donor-passive".to_string(), donor_passive_config(seed)),
        ("donor-reclaim".to_string(), donor_config(seed)),
    ]
}

/// Runs the full v2 comparison in parallel; results in figure order.
pub fn comparison_reports(seed: u64) -> Vec<(String, LoadReport)> {
    comparison_reports_scaled(seed, 400_000)
}

/// As [`comparison_reports`] but at a custom request count (the
/// determinism gate uses a small one; rayon determinism does not depend
/// on run length).
pub fn comparison_reports_scaled(seed: u64, requests: u64) -> Vec<(String, LoadReport)> {
    comparison_configs(seed)
        .into_par_iter()
        .map(|(label, mut config)| {
            config.requests = requests;
            let report = engine::Run::new(&config).execute().report;
            (label, report)
        })
        .collect()
}

/// One summary row per run: latency, provisioning, and the v2 controller
/// counters (predictive grows, revokes, quota refusals).
fn summary_row(r: &LoadReport) -> Vec<f64> {
    vec![
        r.total.p50_us / 1_000.0,
        r.total.p99_us / 1_000.0,
        (r.lease.peak_bytes >> 20) as f64,
        (r.lease.mean_bytes >> 20) as f64,
        r.lease.grows as f64,
        r.lease.predictive_grows as f64,
        r.lease.revokes as f64,
        r.lease.quota_denials as f64,
        100.0 * r.shed_total() as f64 / r.issued.max(1) as f64,
    ]
}

fn summary_columns() -> Vec<String> {
    [
        "p50 ms",
        "p99 ms",
        "peak MB",
        "mean MB",
        "grows",
        "predict grows",
        "revokes",
        "quota denials",
        "shed %",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The v2 figures at `seed`.
pub fn figures(seed: u64) -> Vec<Figure> {
    let reports = comparison_reports(seed);
    let get = |label: &str| {
        &reports
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing {label}"))
            .1
    };

    let mut v2 = Figure::new(
        "loadgen-elastic-v2-8n",
        "Predictive vs reactive elastic leasing under a flash crowd, 8-node mesh",
        "per-controller summary: latency, provisioned remote memory, lease activity",
    )
    .with_columns(summary_columns());
    for label in ["venice-reactive", "venice-predictive"] {
        v2.add_measured(Series::new(label, summary_row(get(label))));
    }
    v2.notes = "the slope predictor grows before the watermark trips, so flash-crowd \
                chunks land one establish flow earlier: strictly lower p99 than the \
                reactive controller on the identical arrival stream (no published \
                reference)"
        .to_string();

    let mut donor = Figure::new(
        "loadgen-donor-pressure-8n",
        "Donor-side reclaim under spillover pressure, 8-node mesh",
        "donor-passive vs donor-armed summary under identical traffic and quotas",
    )
    .with_columns(summary_columns());
    for label in ["donor-passive", "donor-reclaim"] {
        donor.add_measured(Series::new(label, summary_row(get(label))));
    }
    let reclaim = get("donor-reclaim");
    let mid_run_revokes = reclaim
        .lease
        .events
        .iter()
        .filter(|e| e.kind == LeaseEventKind::Revoked && e.at.as_ns() > 0)
        .count();
    donor.notes = format!(
        "loaded donors demand lent chunks back mid-run ({mid_run_revokes} revoked \
         events, each through the Monitor-Node teardown path with modeled latency); \
         the kv tenant's 1 GB quota caps its ledger and surfaces as quota denials \
         (no published reference)"
    );
    vec![v2, donor]
}

/// The published v2 figures at the canonical seed.
pub fn all() -> Vec<Figure> {
    figures(V2_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_controllers() {
        let configs = comparison_configs(1);
        assert_eq!(configs.len(), 4);
        // Reactive: no predictor, no donor arming.
        let reactive = &configs[0].1.lease.unwrap();
        assert_eq!(reactive.predict_horizon_ticks, 0);
        assert_eq!(reactive.donor_high_watermark, 0);
        // Predictive: predictor armed, donors passive.
        let predictive = &configs[1].1.lease.unwrap();
        assert!(predictive.predict_horizon_ticks > 0);
        assert_eq!(predictive.donor_high_watermark, 0);
        // Donor rows differ only in the donor watermark.
        let passive = &configs[2].1;
        let armed = &configs[3].1;
        assert_eq!(passive.arrival, armed.arrival);
        assert_eq!(passive.mix, armed.mix);
        assert_eq!(passive.lease.unwrap().donor_high_watermark, 0);
        assert!(armed.lease.unwrap().donor_high_watermark > 0);
        // The kv tenant carries the quota in both donor rows.
        let kv = armed
            .mix
            .classes
            .iter()
            .find(|c| c.name == "kv-cache")
            .unwrap();
        assert_eq!(kv.quota_bytes, 1 << 30);
    }

    #[test]
    fn v2_rows_share_the_elastic_family_seed() {
        assert_eq!(V2_SEED, ELASTIC_SEED);
        let reactive = reactive_config(V2_SEED);
        let elastic = elastic::elastic_config(ELASTIC_SEED);
        assert_eq!(reactive.seed, elastic.seed);
        assert_eq!(reactive.arrival, elastic.arrival);
    }
}
