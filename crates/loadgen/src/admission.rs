//! Admission control at the front door.
//!
//! Two mechanisms guard the cluster, applied in order on every arrival:
//!
//! 1. a **token-bucket rate policer** (requests per second with a burst
//!    allowance) — overload beyond the configured ceiling is shed
//!    immediately, which keeps open-loop storms from growing unbounded
//!    queues;
//! 2. an **in-flight cap** — a global concurrency bound modeling edge
//!    connection limits.
//!
//! A third, *transport-level* backpressure mechanism lives in the engine:
//! each node's QPair has finite receiver credits, and requests that find
//! no credit wait in a bounded per-node backlog (or are shed when it
//! overflows).

use venice_sim::Time;

/// Admission-control parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Rate ceiling in requests/second; `f64::INFINITY` disables policing.
    pub rate_limit_rps: f64,
    /// Token-bucket burst (requests).
    pub burst: u32,
    /// Global in-flight cap (requests admitted but not yet completed).
    pub max_inflight: u32,
    /// Per-node backlog bound while waiting for QPair credits.
    pub backlog_per_node: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_limit_rps: f64::INFINITY,
            burst: 256,
            max_inflight: 4096,
            backlog_per_node: 512,
        }
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Token bucket empty: offered rate exceeds the policed ceiling.
    RateLimit,
    /// Too many requests in flight.
    Overload,
    /// The target node's credit backlog is full.
    Backpressure,
}

/// Admission decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let the request in.
    Admit,
    /// Turn it away.
    Shed(ShedReason),
}

/// Stateful admission controller (deterministic: a pure function of the
/// arrival sequence).
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    config: AdmissionConfig,
    tokens: f64,
    last_refill: Time,
    inflight: u32,
}

impl AdmissionControl {
    /// Creates a controller with a full bucket.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionControl {
            tokens: config.burst as f64,
            config,
            last_refill: Time::ZERO,
            inflight: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Judges an arrival at simulated time `now`.
    pub fn on_arrival(&mut self, now: Time) -> Decision {
        if self.config.rate_limit_rps.is_finite() {
            let elapsed = now.saturating_sub(self.last_refill).as_secs_f64();
            self.tokens =
                (self.tokens + elapsed * self.config.rate_limit_rps).min(self.config.burst as f64);
            self.last_refill = now;
            if self.tokens < 1.0 {
                return Decision::Shed(ShedReason::RateLimit);
            }
        }
        if self.inflight >= self.config.max_inflight {
            return Decision::Shed(ShedReason::Overload);
        }
        if self.config.rate_limit_rps.is_finite() {
            self.tokens -= 1.0;
        }
        self.inflight += 1;
        Decision::Admit
    }

    /// Records a completion (frees one in-flight slot).
    ///
    /// # Panics
    ///
    /// Panics if there is nothing in flight (accounting bug).
    pub fn on_completion(&mut self) {
        assert!(self.inflight > 0, "completion without admission");
        self.inflight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_config_admits_until_inflight_cap() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            max_inflight: 3,
            ..AdmissionConfig::default()
        });
        let t = Time::from_us(1);
        assert_eq!(ac.on_arrival(t), Decision::Admit);
        assert_eq!(ac.on_arrival(t), Decision::Admit);
        assert_eq!(ac.on_arrival(t), Decision::Admit);
        assert_eq!(ac.on_arrival(t), Decision::Shed(ShedReason::Overload));
        ac.on_completion();
        assert_eq!(ac.on_arrival(t), Decision::Admit);
    }

    #[test]
    fn rate_policer_enforces_ceiling() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            rate_limit_rps: 1000.0,
            burst: 10,
            ..AdmissionConfig::default()
        });
        // 100 arrivals in one millisecond: bucket (10) + refill (~1)
        // admits a handful, the rest shed.
        let mut admitted = 0;
        for i in 0..100u64 {
            let t = Time::from_us(10 * i);
            if ac.on_arrival(t) == Decision::Admit {
                admitted += 1;
                ac.on_completion();
            }
        }
        assert!((10..=13).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            rate_limit_rps: 100.0,
            burst: 1,
            ..AdmissionConfig::default()
        });
        assert_eq!(ac.on_arrival(Time::ZERO), Decision::Admit);
        ac.on_completion();
        assert_eq!(
            ac.on_arrival(Time::from_us(100)),
            Decision::Shed(ShedReason::RateLimit)
        );
        // 10 ms at 100 rps buys one token back.
        assert_eq!(ac.on_arrival(Time::from_ms(10)), Decision::Admit);
    }
}
