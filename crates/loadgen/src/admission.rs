//! Admission control at each node's front door.
//!
//! PR 1 guarded the cluster with one *global* token bucket and one global
//! in-flight cap. That model cannot express per-node hotspots (a flash
//! crowd on two nodes starves nobody else) or tenant priorities, so the
//! policer is now **per node**: the engine builds one
//! [`AdmissionControl`] per node from the cluster-wide
//! [`AdmissionConfig`] via [`AdmissionControl::per_node`], and every
//! arrival is judged at the node it routes to. Two mechanisms apply in
//! order:
//!
//! 1. a **token-bucket rate policer** (the cluster-wide ceiling split
//!    evenly across nodes) — overload beyond the ceiling is shed
//!    immediately;
//! 2. a **priority-scaled in-flight cap** — each tenant priority may
//!    consume only its [`Priority::capacity_share`] of the node's
//!    concurrency bound, so as a node saturates, low-priority tenants are
//!    shed first while high-priority traffic still gets through (SLO-style
//!    shedding instead of FIFO). Tenants sitting **at their lease quota**
//!    are clamped harder still ([`OVER_QUOTA_SHARE`]): a tenant that has
//!    exhausted its borrowed-memory budget is the first shed at the front
//!    door too, whatever its nominal priority.
//!
//! A third, *transport-level* backpressure mechanism lives in the engine:
//! each node's QPair has finite receiver credits, and requests that find
//! no credit wait in a bounded per-node backlog (or are shed when it
//! overflows).

use venice_lease::Priority;
use venice_sim::Time;

/// Admission-control parameters, expressed cluster-wide; the engine
/// derives per-node controllers from them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Cluster-wide rate ceiling in requests/second; `f64::INFINITY`
    /// disables policing.
    pub rate_limit_rps: f64,
    /// Cluster-wide token-bucket burst (requests).
    pub burst: u32,
    /// Cluster-wide in-flight cap (requests admitted but not yet
    /// completed).
    pub max_inflight: u32,
    /// Per-node backlog bound while waiting for QPair credits.
    pub backlog_per_node: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_limit_rps: f64::INFINITY,
            burst: 256,
            max_inflight: 4096,
            backlog_per_node: 512,
        }
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Token bucket empty: offered rate exceeds the policed ceiling.
    RateLimit,
    /// The node's (priority-scaled) in-flight cap is exhausted.
    Overload,
    /// The target node's credit backlog is full.
    Backpressure,
}

/// Admission decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let the request in.
    Admit,
    /// Turn it away.
    Shed(ShedReason),
}

/// The in-flight capacity share of a tenant sitting at its lease quota —
/// below even [`Priority::Low`]'s share, so over-quota tenants are shed
/// first under contention regardless of nominal priority.
pub const OVER_QUOTA_SHARE: f64 = 0.35;

/// Stateful per-node admission controller (deterministic: a pure function
/// of the arrival sequence).
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    config: AdmissionConfig,
    tokens: f64,
    last_refill: Time,
    inflight: u32,
}

impl AdmissionControl {
    /// Creates a controller with a full bucket over `config` taken
    /// verbatim (single-node semantics; used by tests and tools).
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionControl {
            tokens: config.burst as f64,
            config,
            last_refill: Time::ZERO,
            inflight: 0,
        }
    }

    /// Creates one node's controller: the cluster-wide rate, burst, and
    /// in-flight budgets split evenly across `nodes` (each floor-divided
    /// share at least 1, so small clusters never round to zero).
    pub fn per_node(config: AdmissionConfig, nodes: u32) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        let share = AdmissionConfig {
            rate_limit_rps: config.rate_limit_rps / nodes as f64,
            burst: (config.burst / nodes).max(1),
            max_inflight: (config.max_inflight / nodes).max(1),
            backlog_per_node: config.backlog_per_node,
        };
        Self::new(share)
    }

    /// The configuration in effect (per-node shares when built via
    /// [`AdmissionControl::per_node`]).
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// The in-flight cap as seen by `priority` (clamped to
    /// [`OVER_QUOTA_SHARE`] when the tenant is at its lease quota).
    fn cap_for(&self, priority: Priority, over_quota: bool) -> u32 {
        let share = if over_quota {
            priority.capacity_share().min(OVER_QUOTA_SHARE)
        } else {
            priority.capacity_share()
        };
        ((self.config.max_inflight as f64 * share).floor() as u32).max(1)
    }

    /// Judges an arrival of a `priority`-class request at simulated time
    /// `now`. `over_quota` marks a tenant sitting at its elastic-lease
    /// byte quota: its effective in-flight share collapses to
    /// [`OVER_QUOTA_SHARE`], so it is shed first as the node fills.
    pub fn on_arrival(&mut self, now: Time, priority: Priority, over_quota: bool) -> Decision {
        if self.config.rate_limit_rps.is_finite() {
            let elapsed = now.saturating_sub(self.last_refill).as_secs_f64();
            self.tokens =
                (self.tokens + elapsed * self.config.rate_limit_rps).min(self.config.burst as f64);
            self.last_refill = now;
            if self.tokens < 1.0 {
                return Decision::Shed(ShedReason::RateLimit);
            }
        }
        if self.inflight >= self.cap_for(priority, over_quota) {
            return Decision::Shed(ShedReason::Overload);
        }
        if self.config.rate_limit_rps.is_finite() {
            self.tokens -= 1.0;
        }
        self.inflight += 1;
        Decision::Admit
    }

    /// Records a completion (frees one in-flight slot).
    ///
    /// # Panics
    ///
    /// Panics if there is nothing in flight (accounting bug).
    pub fn on_completion(&mut self) {
        assert!(self.inflight > 0, "completion without admission");
        self.inflight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_config_admits_until_inflight_cap() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            max_inflight: 3,
            ..AdmissionConfig::default()
        });
        let t = Time::from_us(1);
        assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
        assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
        assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
        assert_eq!(
            ac.on_arrival(t, Priority::High, false),
            Decision::Shed(ShedReason::Overload)
        );
        ac.on_completion();
        assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
    }

    #[test]
    fn low_priority_is_shed_first_as_the_node_fills() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            max_inflight: 10,
            ..AdmissionConfig::default()
        });
        let t = Time::from_us(1);
        // Fill half the node with high-priority work.
        for _ in 0..5 {
            assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
        }
        // Low priority sees a 50% cap (5): already at it, shed.
        assert_eq!(
            ac.on_arrival(t, Priority::Low, false),
            Decision::Shed(ShedReason::Overload)
        );
        // Normal (85% -> 8) and High (100% -> 10) still get through.
        assert_eq!(ac.on_arrival(t, Priority::Normal, false), Decision::Admit);
        assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
        for _ in 0..3 {
            ac.on_arrival(t, Priority::High, false);
        }
        assert_eq!(ac.inflight(), 10);
        // Saturated: even high priority sheds now.
        assert_eq!(
            ac.on_arrival(t, Priority::High, false),
            Decision::Shed(ShedReason::Overload)
        );
    }

    #[test]
    fn over_quota_tenants_are_clamped_below_low_priority() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            max_inflight: 10,
            ..AdmissionConfig::default()
        });
        let t = Time::from_us(1);
        // Fill 3 slots (below the over-quota cap of 3.5 -> 3).
        for _ in 0..3 {
            assert_eq!(ac.on_arrival(t, Priority::High, false), Decision::Admit);
        }
        // An over-quota tenant — even at High priority — sees the 35%
        // cap (3): already at it, shed.
        assert_eq!(
            ac.on_arrival(t, Priority::High, true),
            Decision::Shed(ShedReason::Overload)
        );
        // Low priority within quota (50% -> 5) still gets through.
        assert_eq!(ac.on_arrival(t, Priority::Low, false), Decision::Admit);
        // And once load drains, the over-quota tenant admits again.
        for _ in 0..2 {
            ac.on_completion();
        }
        assert_eq!(ac.on_arrival(t, Priority::High, true), Decision::Admit);
    }

    #[test]
    fn per_node_shares_split_the_cluster_budget() {
        let config = AdmissionConfig {
            rate_limit_rps: 8_000.0,
            burst: 64,
            max_inflight: 4096,
            backlog_per_node: 7,
        };
        let ac = AdmissionControl::per_node(config, 8);
        assert_eq!(ac.config().rate_limit_rps, 1_000.0);
        assert_eq!(ac.config().burst, 8);
        assert_eq!(ac.config().max_inflight, 512);
        assert_eq!(ac.config().backlog_per_node, 7);
        // Tiny budgets never round to zero.
        let tiny = AdmissionControl::per_node(
            AdmissionConfig {
                burst: 2,
                max_inflight: 3,
                ..config
            },
            8,
        );
        assert_eq!(tiny.config().burst, 1);
        assert_eq!(tiny.config().max_inflight, 1);
    }

    #[test]
    fn rate_policer_enforces_ceiling() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            rate_limit_rps: 1000.0,
            burst: 10,
            ..AdmissionConfig::default()
        });
        // 100 arrivals in one millisecond: bucket (10) + refill (~1)
        // admits a handful, the rest shed.
        let mut admitted = 0;
        for i in 0..100u64 {
            let t = Time::from_us(10 * i);
            if ac.on_arrival(t, Priority::Normal, false) == Decision::Admit {
                admitted += 1;
                ac.on_completion();
            }
        }
        assert!((10..=13).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            rate_limit_rps: 100.0,
            burst: 1,
            ..AdmissionConfig::default()
        });
        assert_eq!(
            ac.on_arrival(Time::ZERO, Priority::Normal, false),
            Decision::Admit
        );
        ac.on_completion();
        assert_eq!(
            ac.on_arrival(Time::from_us(100), Priority::Normal, false),
            Decision::Shed(ShedReason::RateLimit)
        );
        // 10 ms at 100 rps buys one token back.
        assert_eq!(
            ac.on_arrival(Time::from_ms(10), Priority::Normal, false),
            Decision::Admit
        );
    }
}
